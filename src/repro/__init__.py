"""repro — reproduction of "An Efficient Framework for Order Optimization".

Neumann & Moerkotte, ICDE 2004.  See README.md for a tour and
docs/ARCHITECTURE.md for the paper-section → module mapping.

The most common entry points are re-exported here:

* the data model and the prepared component —

  >>> from repro import ordering, FDSet, Equation, InterestingOrders, OrderOptimizer

* the service layer (optimize many queries with shared-preparation
  caching; shard across workers for concurrent serving) —

  >>> from repro import OptimizationSession, SessionPool

* the execution engines (run a chosen plan over synthetic tuples:
  ``session.execute(...)`` / ``session.explain_analyze(...)``, or the
  engines directly) —

  >>> from repro import RowEngine, VectorEngine, generate_dataset
"""

# Defined before the subpackage imports: repro.service.artifacts bakes the
# version into artifact schema keys at import time.
__version__ = "1.8.0"

from .core import (
    EMPTY_ORDERING,
    NO_PRUNING,
    Attribute,
    BuilderOptions,
    ConstantBinding,
    Equation,
    FDSet,
    FunctionalDependency,
    Grouping,
    InterestingOrders,
    OrderOptimizer,
    Ordering,
    PreparationFingerprint,
    attr,
    attrs,
    grouping,
    omega,
    ordering,
    preparation_fingerprint,
)
from .exec import (
    ExecutionConfig,
    ExecutionEngine,
    ExecutionResult,
    RowEngine,
    VectorEngine,
    generate_dataset,
    make_engine,
)
from .service import (
    OptimizationSession,
    SessionConfig,
    SessionPool,
    SessionStatistics,
)


__all__ = [
    "Attribute",
    "attr",
    "attrs",
    "Ordering",
    "ordering",
    "EMPTY_ORDERING",
    "FunctionalDependency",
    "Equation",
    "ConstantBinding",
    "FDSet",
    "Grouping",
    "grouping",
    "InterestingOrders",
    "OrderOptimizer",
    "BuilderOptions",
    "NO_PRUNING",
    "PreparationFingerprint",
    "preparation_fingerprint",
    "omega",
    "ExecutionConfig",
    "ExecutionEngine",
    "ExecutionResult",
    "RowEngine",
    "VectorEngine",
    "generate_dataset",
    "make_engine",
    "OptimizationSession",
    "SessionConfig",
    "SessionPool",
    "SessionStatistics",
    "__version__",
]
