"""repro — reproduction of "An Efficient Framework for Order Optimization".

Neumann & Moerkotte, ICDE 2004.  See README.md for a tour and DESIGN.md for
the system inventory and the per-experiment index.

The most common entry points are re-exported here:

>>> from repro import ordering, FDSet, Equation, InterestingOrders, OrderOptimizer
"""

from .core import (
    EMPTY_ORDERING,
    NO_PRUNING,
    Attribute,
    BuilderOptions,
    ConstantBinding,
    Equation,
    FDSet,
    FunctionalDependency,
    Grouping,
    InterestingOrders,
    OrderOptimizer,
    Ordering,
    attr,
    attrs,
    grouping,
    omega,
    ordering,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "attr",
    "attrs",
    "Ordering",
    "ordering",
    "EMPTY_ORDERING",
    "FunctionalDependency",
    "Equation",
    "ConstantBinding",
    "FDSet",
    "Grouping",
    "grouping",
    "InterestingOrders",
    "OrderOptimizer",
    "BuilderOptions",
    "NO_PRUNING",
    "omega",
    "__version__",
]
