"""Query model: predicates, bound query specs, join graphs, and the
interesting-order / FD analyzer of Section 5.2."""

from .analyzer import QueryOrderInfo, analyze
from .joingraph import JoinGraph, iter_bits
from .predicates import (
    EqualsConstant,
    JoinPredicate,
    Predicate,
    RangePredicate,
    SelectionPredicate,
)
from .query import QuerySpec, RelationRef, make_query

__all__ = [
    "JoinPredicate",
    "EqualsConstant",
    "RangePredicate",
    "SelectionPredicate",
    "Predicate",
    "QuerySpec",
    "RelationRef",
    "make_query",
    "JoinGraph",
    "iter_bits",
    "QueryOrderInfo",
    "analyze",
]
