"""Determining the preparation-phase input from a query (Section 5.2).

From a bound :class:`QuerySpec` we extract:

* **produced interesting orders** ``O_P`` — one single-attribute ordering per
  join-predicate side (sorts and clustered index scans can produce them and
  merge joins exploit them), the orderings of available indexes, the
  ``GROUP BY`` ordering, and the ``ORDER BY`` ordering (a sort can produce
  it).  This mirrors the paper's Q8 walkthrough, where "all attributes used
  in joins and group by clauses are added to the set of interesting orders";
* **tested-only interesting orders** ``O_T`` — optionally, the attributes of
  selection predicates ("a selection operator never sorts but might exploit
  ordering", paper Section 6.2);
* **FD sets** ``F`` — one per algebraic operator: an equation per join
  predicate, and one set of constant bindings per relation with equality
  selections (the selection operators are applied at scan level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fd import FDSet, flatten_items
from ..core.interesting import InterestingOrders
from ..core.ordering import Ordering
from .predicates import JoinPredicate
from .query import QuerySpec


@dataclass
class QueryOrderInfo:
    """The preparation-phase input, plus per-operator FD set lookup tables."""

    interesting: InterestingOrders
    fdsets: tuple[FDSet, ...]
    join_fdsets: dict[JoinPredicate, FDSet] = field(default_factory=dict)
    scan_fdsets: dict[str, FDSet] = field(default_factory=dict)

    @property
    def fd_item_count(self) -> int:
        """Total number of distinct FD items (the paper's ``n``)."""
        return len(flatten_items(self.fdsets))


def analyze(
    spec: QuerySpec,
    *,
    include_tested_selections: bool = False,
    include_groupings: bool = False,
) -> QueryOrderInfo:
    """Extract interesting orders and FD sets from a query.

    ``include_groupings`` activates the groupings extension: the
    ``GROUP BY`` attribute set becomes an interesting (tested) grouping so
    streaming aggregation can be recognized.
    """
    produced: list[Ordering] = []
    tested: list[Ordering] = []

    def add_produced(order: Ordering) -> None:
        if len(order) and order not in produced:
            produced.append(order)

    # Join attributes: single-attribute orderings, both sides.
    for join in spec.joins:
        add_produced(Ordering([join.left]))
        add_produced(Ordering([join.right]))

    # Index orderings (clustered indexes produce their key ordering).
    for alias in spec.aliases:
        for index, order in spec.indexes_for(alias):
            if index.clustered:
                add_produced(order)

    # GROUP BY: a sort-based group operator produces/exploits the ordering.
    if spec.group_by:
        add_produced(Ordering(spec.group_by))

    # ORDER BY: demanded by the query, producible by a sort.
    if spec.order_by is not None and len(spec.order_by):
        add_produced(spec.order_by)

    # Selection attributes are tested-only on request (paper Section 6.2).
    if include_tested_selections:
        for selection in spec.selections:
            order = Ordering([selection.attribute])
            if order not in produced and order not in tested:
                tested.append(order)

    # FD sets: one per join operator ...
    join_fdsets: dict[JoinPredicate, FDSet] = {
        join: join.fd_set() for join in spec.joins
    }
    # ... and one per relation whose scan applies equality selections.
    scan_fdsets: dict[str, FDSet] = {}
    for alias in spec.aliases:
        equalities = spec.equality_selections_for(alias)
        if equalities:
            fdset = FDSet(
                frozenset(
                    item
                    for selection in equalities
                    for item in selection.fd_set().items
                )
            )
            scan_fdsets[alias] = fdset

    groupings_tested: list = []
    if include_groupings and spec.group_by:
        from ..core.grouping import Grouping

        groupings_tested.append(Grouping(frozenset(spec.group_by)))

    fdsets = tuple(join_fdsets.values()) + tuple(scan_fdsets.values())
    interesting = InterestingOrders.of(
        produced, tested, groupings_tested=groupings_tested
    )
    return QueryOrderInfo(
        interesting=interesting,
        fdsets=fdsets,
        join_fdsets=join_fdsets,
        scan_fdsets=scan_fdsets,
    )
