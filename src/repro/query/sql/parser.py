"""Recursive-descent parser for the supported SQL subset.

Grammar (conjunctive select-project-join, the shape of every query in the
paper):

    statement   := SELECT [DISTINCT] select_list FROM table_list
                   [WHERE condition (AND condition)*]
                   [GROUP BY column_list] [ORDER BY order_list]
    select_list := '*' | select_item (',' select_item)*
    select_item := column | aggregate
    aggregate   := ('count'|'sum'|'min'|'max'|'avg') '(' ('*' | column) ')'
    table_list  := table [AS? alias] (',' table [AS? alias])*
    condition   := column op (column | literal)
                 | column BETWEEN literal AND literal
    op          := '=' | '<' | '<=' | '>' | '>=' | '<>'
    column      := identifier ['.' identifier]

Clauses are strictly ordered and appear at most once: ``GROUP BY`` must
precede ``ORDER BY``, and a duplicate of either is a :class:`ParseError`
(the aliased :class:`SqlSyntaxError`).  Aggregate function names are *not*
keywords — ``count`` followed by anything but ``(`` stays an ordinary
column reference.
"""

from __future__ import annotations

from .ast import (
    AggregateItem,
    Between,
    ColumnRef,
    Comparison,
    Condition,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from .lexer import SqlSyntaxError, Token, tokenize

#: Parse errors are syntax errors; the alias names the parser-facing side.
ParseError = SqlSyntaxError

AGGREGATE_NAMES = frozenset({"count", "sum", "min", "max", "avg"})


class Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise SqlSyntaxError(
                f"expected {kind}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> SelectStatement:
        statement = self.statement()
        if self.current.kind != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return statement

    def statement(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        select_star = False
        select_items: list[SelectItem] = []
        if self.current.kind == "star":
            self.advance()
            select_star = True
        else:
            select_items.append(self.select_item())
            while self.current.kind == "comma":
                self.advance()
                select_items.append(self.select_item())

        self.expect_keyword("from")
        tables = [self.table_ref()]
        while self.current.kind == "comma":
            self.advance()
            tables.append(self.table_ref())

        conditions: list[Condition] = []
        if self.accept_keyword("where"):
            conditions.append(self.condition())
            while self.accept_keyword("and"):
                conditions.append(self.condition())

        # Strict clause sequence: one optional GROUP BY, then one optional
        # ORDER BY.  Anything else — a duplicate, or GROUP BY after ORDER
        # BY — is rejected here instead of being silently concatenated.
        group_by: list[ColumnRef] = []
        if self.current.is_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            group_by.append(self.column())
            while self.current.kind == "comma":
                self.advance()
                group_by.append(self.column())
        order_by: list[OrderItem] = []
        if self.current.is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            order_by.append(self.order_item())
            while self.current.kind == "comma":
                self.advance()
                order_by.append(self.order_item())
        if self.current.is_keyword("group"):
            message = (
                "duplicate GROUP BY clause"
                if group_by
                else "GROUP BY must precede ORDER BY"
            )
            raise ParseError(message, self.current.position)
        if self.current.is_keyword("order"):
            raise ParseError("duplicate ORDER BY clause", self.current.position)

        return SelectStatement(
            select_star=select_star,
            distinct=distinct,
            select_items=tuple(select_items),
            tables=tuple(tables),
            conditions=tuple(conditions),
            group_by=tuple(group_by),
            order_by=tuple(order_by),
        )

    def select_item(self) -> SelectItem:
        """A plain column, or an aggregate call ``fn(...)``.

        Aggregate names are contextual: only an identifier immediately
        followed by ``(`` parses as a call, so columns named ``count`` etc.
        keep working everywhere else.
        """
        token = self.current
        if (
            token.kind == "identifier"
            and token.value.lower() in AGGREGATE_NAMES
            and self.tokens[self.index + 1].kind == "lparen"
        ):
            function = self.advance().value.lower()
            self.expect_kind("lparen")
            argument: ColumnRef | None
            if self.current.kind == "star":
                if function != "count":
                    raise ParseError(
                        f"{function}(*) is not supported; only count(*)",
                        self.current.position,
                    )
                self.advance()
                argument = None
            else:
                argument = self.column()
            self.expect_kind("rparen")
            return AggregateItem(function, argument)
        return self.column()

    def table_ref(self) -> TableRef:
        name = self.expect_kind("identifier").value
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.expect_kind("identifier").value
        elif self.current.kind == "identifier":
            alias = self.advance().value
        return TableRef(name, alias)

    def column(self) -> ColumnRef:
        first = self.expect_kind("identifier").value
        if self.current.kind == "dot":
            self.advance()
            second = self.expect_kind("identifier").value
            return ColumnRef(second, first)
        return ColumnRef(first)

    def literal(self) -> Literal:
        token = self.current
        if token.kind == "number":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        raise SqlSyntaxError(
            f"expected a literal, found {token.value!r}", token.position
        )

    def condition(self) -> Condition:
        column = self.column()
        if self.accept_keyword("between"):
            low = self.literal()
            self.expect_keyword("and")
            high = self.literal()
            return Between(column, low, high)
        operator_token = self.expect_kind("operator")
        if self.current.kind == "identifier":
            return Comparison(column, operator_token.value, self.column())
        return Comparison(column, operator_token.value, self.literal())

    def order_item(self) -> OrderItem:
        column = self.column()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(column, descending)


def parse_sql(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse()
