"""SQL front end: lexer, parser, and catalog binder for the subset used by
the paper's example queries."""

from .ast import (
    AggregateItem,
    Between,
    ColumnRef,
    Comparison,
    Literal,
    OrderItem,
    SelectStatement,
    TableRef,
)
from .binder import Binder, BindError, sql_to_query
from .lexer import SqlSyntaxError, Token, tokenize
from .parser import ParseError, Parser, parse_sql

__all__ = [
    "tokenize",
    "Token",
    "SqlSyntaxError",
    "ParseError",
    "parse_sql",
    "Parser",
    "SelectStatement",
    "TableRef",
    "ColumnRef",
    "AggregateItem",
    "Literal",
    "Comparison",
    "Between",
    "OrderItem",
    "Binder",
    "BindError",
    "sql_to_query",
]
