"""Binder: resolve a parsed statement against a catalog into a QuerySpec.

Name resolution follows SQL scoping: a qualified column must name a FROM
alias; an unqualified column must be unambiguous across the FROM tables.
Conditions are classified into join predicates (column = column across
relations), constant equalities, and range selections.  ``ORDER BY ... DESC``
is rejected — the paper's framework models undirected orderings.

Grouping and projection: ``SELECT DISTINCT items`` lowers to a grouping
over the projected columns (``DISTINCT *`` groups on every column of every
FROM relation); aggregate select items (``count(*)``, ``sum(col)``, ...)
bind to :class:`~repro.query.query.AggregateSpec` entries and require a
``GROUP BY``.  A grouped query's plain select items must be grouping keys.
``SELECT *`` with ``GROUP BY`` stays accepted for backward compatibility
(the projection is ignored; the grouping drives planning).
"""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...core.attributes import Attribute
from ...core.ordering import Ordering
from ..predicates import EqualsConstant, JoinPredicate, RangePredicate
from ..query import AggregateSpec, QuerySpec, RelationRef
from .ast import (
    AggregateItem,
    Between,
    ColumnRef,
    Comparison,
    Literal,
    SelectStatement,
)
from .parser import parse_sql


class BindError(ValueError):
    """Semantic error while binding a statement."""


class Binder:
    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def bind(self, statement: SelectStatement, name: str = "query") -> QuerySpec:
        relations: list[RelationRef] = []
        for table_ref in statement.tables:
            if table_ref.table not in self.catalog:
                raise BindError(f"unknown table {table_ref.table}")
            relations.append(RelationRef(table_ref.table, table_ref.alias or ""))

        aliases = [r.alias for r in relations]
        if len(set(aliases)) != len(aliases):
            raise BindError("duplicate relation alias in FROM clause")
        self._alias_tables = {
            r.alias: self.catalog.table(r.table) for r in relations
        }

        joins: list[JoinPredicate] = []
        selections: list = []
        for condition in statement.conditions:
            if isinstance(condition, Comparison):
                left = self.resolve(condition.left)
                if isinstance(condition.right, ColumnRef):
                    right = self.resolve(condition.right)
                    if condition.operator != "=":
                        raise BindError(
                            f"only equi-joins are supported, got "
                            f"{condition.operator!r}"
                        )
                    if left.relation == right.relation:
                        raise BindError(
                            f"intra-relation predicate {condition} not supported"
                        )
                    joins.append(JoinPredicate(left, right))
                elif condition.operator == "=":
                    selections.append(EqualsConstant(left, condition.right.value))
                else:
                    selections.append(
                        RangePredicate(left, condition.operator, condition.right.value)
                    )
            elif isinstance(condition, Between):
                attribute = self.resolve(condition.column)
                selections.append(
                    RangePredicate(
                        attribute, "between", condition.low.value, condition.high.value
                    )
                )
            else:  # pragma: no cover
                raise BindError(f"unsupported condition {condition!r}")

        order_by: Ordering | None = None
        if statement.order_by:
            attributes = []
            for item in statement.order_by:
                if item.descending:
                    raise BindError(
                        "ORDER BY ... DESC is not supported (the framework "
                        "models undirected orderings)"
                    )
                attributes.append(self.resolve(item.column))
            order_by = Ordering(attributes)

        group_by = tuple(self.resolve(c) for c in statement.group_by)
        group_by, aggregates = self._bind_projection(
            statement, relations, group_by
        )

        return QuerySpec(
            catalog=self.catalog,
            relations=tuple(relations),
            joins=tuple(joins),
            selections=tuple(selections),
            order_by=order_by,
            group_by=group_by,
            name=name,
            aggregates=aggregates,
        )

    def _bind_projection(
        self,
        statement: SelectStatement,
        relations: list[RelationRef],
        group_by: tuple[Attribute, ...],
    ) -> tuple[tuple[Attribute, ...], tuple[AggregateSpec, ...]]:
        """Lower DISTINCT / aggregate select items onto the grouping."""
        aggregate_items = [
            item
            for item in statement.select_items
            if isinstance(item, AggregateItem)
        ]
        plain_items = [
            item
            for item in statement.select_items
            if isinstance(item, ColumnRef)
        ]
        if statement.distinct:
            if aggregate_items:
                raise BindError(
                    "SELECT DISTINCT with aggregates is not supported"
                )
            if group_by:
                raise BindError(
                    "SELECT DISTINCT cannot be combined with GROUP BY "
                    "(DISTINCT lowers to a grouping itself)"
                )
            if statement.select_star:
                # DISTINCT *: group on every column of every FROM relation,
                # in FROM order then declaration order.
                keys: list[Attribute] = []
                for ref in relations:
                    table = self.catalog.table(ref.table)
                    keys.extend(
                        Attribute(column.name, ref.alias)
                        for column in table.columns
                    )
            else:
                keys = [self.resolve(item) for item in plain_items]
            deduped = tuple(dict.fromkeys(keys))
            return deduped, ()
        if aggregate_items and not group_by:
            raise BindError(
                "aggregate select items require a GROUP BY clause "
                "(scalar aggregation is not supported)"
            )
        aggregates = tuple(
            AggregateSpec(
                item.function,
                None if item.argument is None else self.resolve(item.argument),
            )
            for item in aggregate_items
        )
        if group_by and not statement.select_star:
            key_set = set(group_by)
            for item in plain_items:
                attribute = self.resolve(item)
                if attribute not in key_set:
                    raise BindError(
                        f"select item {attribute} is neither a GROUP BY key "
                        "nor an aggregate"
                    )
        return group_by, aggregates

    def resolve(self, ref: ColumnRef) -> Attribute:
        if ref.qualifier is not None:
            table = self._alias_tables.get(ref.qualifier)
            if table is None:
                raise BindError(f"unknown alias {ref.qualifier}")
            if not table.has_column(ref.column):
                raise BindError(
                    f"table {table.name} (alias {ref.qualifier}) has no "
                    f"column {ref.column}"
                )
            return Attribute(ref.column, ref.qualifier)
        owners = [
            alias
            for alias, table in self._alias_tables.items()
            if table.has_column(ref.column)
        ]
        if not owners:
            raise BindError(f"unknown column {ref.column}")
        if len(owners) > 1:
            raise BindError(
                f"ambiguous column {ref.column} (in {', '.join(sorted(owners))})"
            )
        return Attribute(ref.column, owners[0])


def sql_to_query(text: str, catalog: Catalog, name: str = "query") -> QuerySpec:
    """Parse and bind one SELECT statement."""
    return Binder(catalog).bind(parse_sql(text), name)
