"""AST for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class ColumnRef:
    """``column`` or ``qualifier.column``."""

    column: str
    qualifier: str | None = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Literal:
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` where ``op`` ∈ =, <, <=, >, >=, <>."""

    left: ColumnRef
    operator: str
    right: Union[ColumnRef, Literal]

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high``."""

    column: ColumnRef
    low: Literal
    high: Literal

    def __str__(self) -> str:
        return f"{self.column} between {self.low} and {self.high}"


Condition = Union[Comparison, Between]


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str | None = None

    def __str__(self) -> str:
        return f"{self.table} {self.alias}" if self.alias else self.table


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    descending: bool = False


@dataclass
class SelectStatement:
    """``SELECT ... FROM ... [WHERE ...] [GROUP BY ...] [ORDER BY ...]``."""

    select_star: bool = False
    select_items: tuple[ColumnRef, ...] = ()
    tables: tuple[TableRef, ...] = ()
    conditions: tuple[Condition, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
