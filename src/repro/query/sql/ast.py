"""AST for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class ColumnRef:
    """``column`` or ``qualifier.column``."""

    column: str
    qualifier: str | None = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Literal:
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` where ``op`` ∈ =, <, <=, >, >=, <>."""

    left: ColumnRef
    operator: str
    right: Union[ColumnRef, Literal]

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high``."""

    column: ColumnRef
    low: Literal
    high: Literal

    def __str__(self) -> str:
        return f"{self.column} between {self.low} and {self.high}"


Condition = Union[Comparison, Between]


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str | None = None

    def __str__(self) -> str:
        return f"{self.table} {self.alias}" if self.alias else self.table


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class AggregateItem:
    """``count(*)`` / ``sum(col)`` / ``min``/``max``/``avg`` select item."""

    function: str  # count | sum | min | max | avg
    argument: ColumnRef | None = None  # None only for count(*)

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        return f"{self.function}({inner})"


SelectItem = Union[ColumnRef, AggregateItem]


@dataclass
class SelectStatement:
    """``SELECT [DISTINCT] ... FROM ... [WHERE ...] [GROUP BY ...] [ORDER BY ...]``."""

    select_star: bool = False
    distinct: bool = False
    select_items: tuple[SelectItem, ...] = ()
    tables: tuple[TableRef, ...] = ()
    conditions: tuple[Condition, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
