"""SQL lexer for the subset the paper's examples use.

Tokens: keywords (case-insensitive), identifiers, integer/float literals,
single-quoted string literals, comparison operators, punctuation.  Each
token carries its source position for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "and",
        "group",
        "order",
        "by",
        "asc",
        "desc",
        "between",
        "as",
    }
)

OPERATORS = ("<=", ">=", "<>", "=", "<", ">")
PUNCTUATION = {",": "comma", "(": "lparen", ")": "rparen", ".": "dot", "*": "star"}


class SqlSyntaxError(ValueError):
    """Lexing or parsing error with a source position."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | identifier | number | string | operator | punctuation name | eof
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated string literal", i)
            tokens.append(Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # a dot not followed by a digit belongs to punctuation
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("identifier", word, i))
            i = j
            continue
        matched_operator = False
        for operator in OPERATORS:
            if text.startswith(operator, i):
                tokens.append(Token("operator", operator, i))
                i += len(operator)
                matched_operator = True
                break
        if matched_operator:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(PUNCTUATION[ch], ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens


def iter_token_values(text: str) -> Iterator[str]:
    """Convenience for tests: token values without positions."""
    for token in tokenize(text):
        if token.kind != "eof":
            yield token.value
