"""Query specifications: the input of the plan generator.

A :class:`QuerySpec` is the bound, validated form of a select-project-join
query: relation references (with aliases, so the same table can appear twice
— TPC-R Q8 joins ``nation`` twice), equi-join predicates, selections, and
the optional ``GROUP BY`` / ``ORDER BY`` clauses that make orderings
interesting.  Attributes are always qualified by the *alias*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..catalog.schema import Catalog, Table
from ..core.attributes import Attribute
from ..core.ordering import Ordering
from .predicates import EqualsConstant, JoinPredicate, RangePredicate, SelectionPredicate


@dataclass(frozen=True)
class RelationRef:
    """A relation reference ``table [AS alias]``; alias defaults to the table."""

    table: str
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.alias:
            object.__setattr__(self, "alias", self.table)


AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate select item: ``count(*)``, ``sum(t.a)``, ...

    ``argument`` is ``None`` only for ``count(*)``; every other function
    aggregates a bound column.  The output column of an aggregate is an
    unqualified :class:`Attribute` named after its rendering — parentheses
    keep it from colliding with any real column name.
    """

    function: str
    argument: Attribute | None = None

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"unknown aggregate function {self.function!r}; "
                f"expected one of {', '.join(AGGREGATE_FUNCTIONS)}"
            )
        if self.argument is None and self.function != "count":
            raise ValueError(f"{self.function}(*) is not defined; only count(*)")

    @property
    def output(self) -> Attribute:
        inner = "*" if self.argument is None else str(self.argument)
        return Attribute(f"{self.function}({inner})")

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        return f"{self.function}({inner})"


@dataclass
class QuerySpec:
    """A validated select-project-join query over a catalog."""

    catalog: Catalog
    relations: tuple[RelationRef, ...]
    joins: tuple[JoinPredicate, ...] = ()
    selections: tuple[SelectionPredicate, ...] = ()
    order_by: Ordering | None = None
    group_by: tuple[Attribute, ...] = ()
    name: str = "query"
    join_selectivities: dict[frozenset[Attribute], float] = field(default_factory=dict)
    aggregates: tuple[AggregateSpec, ...] = ()

    def __post_init__(self) -> None:
        aliases = [r.alias for r in self.relations]
        if len(set(aliases)) != len(aliases):
            raise ValueError(f"duplicate relation alias in query {self.name}")
        for ref in self.relations:
            if ref.table not in self.catalog:
                raise ValueError(f"unknown table {ref.table}")
        alias_set = set(aliases)
        for join in self.joins:
            self._check_attribute(join.left, alias_set)
            self._check_attribute(join.right, alias_set)
        for selection in self.selections:
            self._check_attribute(selection.attribute, alias_set)
        if self.order_by is not None:
            for attribute in self.order_by:
                self._check_attribute(attribute, alias_set)
        for attribute in self.group_by:
            self._check_attribute(attribute, alias_set)
        if self.aggregates and not self.group_by:
            raise ValueError(
                f"query {self.name} has aggregates without GROUP BY keys "
                "(scalar aggregation is not supported)"
            )
        for aggregate in self.aggregates:
            if not isinstance(aggregate, AggregateSpec):
                raise TypeError(f"expected AggregateSpec, got {aggregate!r}")
            if aggregate.argument is not None:
                self._check_attribute(aggregate.argument, alias_set)

    def _check_attribute(self, attribute: Attribute, aliases: set[str]) -> None:
        if attribute.relation not in aliases:
            raise ValueError(
                f"attribute {attribute} does not reference a relation of "
                f"query {self.name}"
            )
        table = self.table_of(attribute.relation)
        if not table.has_column(attribute.name):
            raise ValueError(f"table {table.name} has no column {attribute.name}")

    # -- resolution helpers ---------------------------------------------------

    def table_of(self, alias: str | None) -> Table:
        for ref in self.relations:
            if ref.alias == alias:
                return self.catalog.table(ref.table)
        raise KeyError(f"unknown relation alias {alias}")

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(r.alias for r in self.relations)

    def cardinality(self, alias: str) -> int:
        return self.table_of(alias).cardinality

    def distinct_values(self, attribute: Attribute) -> int:
        table = self.table_of(attribute.relation)
        column = table.column(attribute.name)
        if column.distinct_values is not None:
            return max(1, column.distinct_values)
        return max(1, table.cardinality)

    def selections_for(self, alias: str) -> tuple[SelectionPredicate, ...]:
        return tuple(
            s for s in self.selections if s.attribute.relation == alias
        )

    def equality_selections_for(self, alias: str) -> tuple[EqualsConstant, ...]:
        return tuple(
            s
            for s in self.selections_for(alias)
            if isinstance(s, EqualsConstant)
        )

    def indexes_for(self, alias: str) -> tuple:
        """Indexes of the underlying table, with orderings re-qualified by alias."""
        table = self.table_of(alias)
        result = []
        for index in table.indexes:
            result.append(
                (index, Ordering(Attribute(c, alias) for c in index.columns))
            )
        return tuple(result)

    def join_selectivity(self, join: JoinPredicate) -> float:
        override = self.join_selectivities.get(join.attributes)
        if override is not None:
            return override
        return 1.0 / max(
            self.distinct_values(join.left), self.distinct_values(join.right)
        )

    def selection_selectivity(self, selection: SelectionPredicate) -> float:
        if isinstance(selection, EqualsConstant):
            return 1.0 / self.distinct_values(selection.attribute)
        if isinstance(selection, RangePredicate):
            return 0.3
        raise TypeError(f"unknown selection {selection!r}")  # pragma: no cover

    def describe(self) -> str:
        lines = [f"query {self.name}:"]
        froms = ", ".join(
            r.table if r.table == r.alias else f"{r.table} {r.alias}"
            for r in self.relations
        )
        lines.append(f"  from {froms}")
        for join in self.joins:
            lines.append(f"  join {join}")
        for selection in self.selections:
            lines.append(f"  where {selection}")
        if self.aggregates:
            lines.append(f"  select {', '.join(map(str, self.aggregates))}")
        if self.group_by:
            lines.append(f"  group by {', '.join(map(str, self.group_by))}")
        if self.order_by is not None:
            lines.append(f"  order by {self.order_by!r}")
        return "\n".join(lines)


def make_query(
    catalog: Catalog,
    relations: Iterable[str | RelationRef],
    joins: Iterable[JoinPredicate] = (),
    selections: Iterable[SelectionPredicate] = (),
    order_by: Ordering | None = None,
    group_by: Iterable[Attribute] = (),
    name: str = "query",
    aggregates: Iterable[AggregateSpec] = (),
) -> QuerySpec:
    """Convenience constructor accepting bare table names."""
    refs = tuple(
        r if isinstance(r, RelationRef) else RelationRef(r) for r in relations
    )
    return QuerySpec(
        catalog=catalog,
        relations=refs,
        joins=tuple(joins),
        selections=tuple(selections),
        order_by=order_by,
        group_by=tuple(group_by),
        name=name,
        aggregates=tuple(aggregates),
    )
