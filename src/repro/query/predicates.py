"""Query predicates and the FD sets they induce (Section 5.2).

Each predicate knows the FD set its evaluating operator introduces:

* equi-join ``a = b``          -> ``{a = b}`` (an :class:`Equation`),
* selection ``a = const``      -> ``{∅ -> a}`` (a :class:`ConstantBinding`),
* range / inequality selection -> no functional dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.attributes import Attribute
from ..core.fd import ConstantBinding, Equation, FDSet

RANGE_OPERATORS = ("<", "<=", ">", ">=", "<>", "between")


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left = right`` between two relations."""

    left: Attribute
    right: Attribute

    def __post_init__(self) -> None:
        if self.left.relation is None or self.right.relation is None:
            raise ValueError(f"join predicate attributes must be qualified: {self}")
        if self.left.relation == self.right.relation:
            raise ValueError(f"join predicate within one relation: {self}")

    @property
    def relations(self) -> frozenset[str]:
        return frozenset((self.left.relation, self.right.relation))  # type: ignore[arg-type]

    @property
    def attributes(self) -> frozenset[Attribute]:
        return frozenset((self.left, self.right))

    def fd_set(self) -> FDSet:
        return FDSet.of(Equation(self.left, self.right))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class EqualsConstant:
    """A selection predicate ``attribute = value``."""

    attribute: Attribute
    value: object = None

    def __post_init__(self) -> None:
        if self.attribute.relation is None:
            raise ValueError(f"selection attribute must be qualified: {self}")

    @property
    def relations(self) -> frozenset[str]:
        return frozenset((self.attribute.relation,))  # type: ignore[arg-type]

    def fd_set(self) -> FDSet:
        return FDSet.of(ConstantBinding(self.attribute))

    def __str__(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class RangePredicate:
    """A selection ``attribute <op> value`` that induces no FD."""

    attribute: Attribute
    operator: str
    value: object = None
    upper_value: object = None  # for BETWEEN

    def __post_init__(self) -> None:
        if self.attribute.relation is None:
            raise ValueError(f"selection attribute must be qualified: {self}")
        if self.operator not in RANGE_OPERATORS:
            raise ValueError(f"unsupported range operator {self.operator!r}")

    @property
    def relations(self) -> frozenset[str]:
        return frozenset((self.attribute.relation,))  # type: ignore[arg-type]

    def fd_set(self) -> FDSet:
        return FDSet()

    def __str__(self) -> str:
        if self.operator == "between":
            return f"{self.attribute} between {self.value!r} and {self.upper_value!r}"
        return f"{self.attribute} {self.operator} {self.value!r}"


SelectionPredicate = Union[EqualsConstant, RangePredicate]
Predicate = Union[JoinPredicate, EqualsConstant, RangePredicate]
