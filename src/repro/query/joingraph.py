"""The join graph, bitmask-indexed for the join enumerators.

Relations are numbered in query order; a subset of relations is an ``int``
bitmask.  The enumeration strategies (``repro.plangen.enumerate``) rely on
the machinery here:

* **connectivity tests** (:meth:`JoinGraph.connected`), memoized in a plain
  per-instance dict (bounded by the graph's lifetime — no reference cycles,
  unlike a per-instance ``lru_cache``);
* **ordered neighborhoods** (:meth:`JoinGraph.neighbors`, :func:`iter_bits`,
  :func:`iter_bits_desc`) and **min-prefix masks** (:func:`prefix_mask`,
  :func:`min_index`), the ingredients of DPccp's ``EnumerateCsg`` /
  ``EnumerateCmp``;
* **non-materializing connected-subset iteration**
  (:meth:`JoinGraph.connected_subsets`, :meth:`JoinGraph.expand_connected`)
  — a generator visiting each connected subset exactly once, never touching
  the 2^n mask space of disconnected subsets;
* the reference **partition enumeration** (:meth:`JoinGraph.partitions`),
  the naive O(3^n) submask scan kept as the DPsub oracle;
* optional **cross-product edges**: with ``cross_products=True`` a
  disconnected join graph is stitched together with synthesized
  predicate-free edges (one chain over the component representatives), so
  every query plans instead of raising.  Synthetic edges appear in the
  adjacency (connectivity, :meth:`connects`) but never in
  :meth:`edges_between` / :meth:`edges_within` — a pair joined only by a
  synthetic edge is a cross product and carries no predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .predicates import JoinPredicate
from .query import QuerySpec


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_bits_desc(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask``, highest first."""
    while mask:
        high = mask.bit_length() - 1
        yield high
        mask ^= 1 << high


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield the non-empty submasks of ``mask`` in increasing numeric order.

    Increasing order implies every submask is yielded before any of its
    strict supersets — the property DPccp's emission order (and therefore
    DP validity) rests on.
    """
    sub = (-mask) & mask
    while sub:
        yield sub
        sub = (sub - mask) & mask


def min_index(mask: int) -> int:
    """Index of the lowest set bit (the DPccp root of a subset)."""
    return (mask & -mask).bit_length() - 1


def prefix_mask(i: int) -> int:
    """DPccp's ``B_i``: the mask of all vertices with index <= ``i``."""
    return (1 << (i + 1)) - 1


@dataclass
class JoinGraph:
    """Join graph over the relations of one query.

    ``cross_products=True`` synthesizes predicate-free edges between the
    connected components (see the module docstring), making the graph — and
    therefore plan enumeration — total over disconnected queries.
    """

    spec: QuerySpec
    cross_products: bool = False
    cross_edges: tuple[tuple[int, int], ...] = field(init=False, default=())

    def __post_init__(self) -> None:
        self.aliases = self.spec.aliases
        self.index_of = {alias: i for i, alias in enumerate(self.aliases)}
        self.n = len(self.aliases)
        self.edges: tuple[tuple[int, int, JoinPredicate], ...] = tuple(
            (
                self.index_of[join.left.relation],
                self.index_of[join.right.relation],
                join,
            )
            for join in self.spec.joins
        )
        self.adjacency: list[int] = [0] * self.n
        for a, b, _ in self.edges:
            self.adjacency[a] |= 1 << b
            self.adjacency[b] |= 1 << a
        self._connected_cache: dict[int, bool] = {}
        if self.cross_products:
            self.cross_edges = self._synthesize_cross_edges()
            for a, b in self.cross_edges:
                self.adjacency[a] |= 1 << b
                self.adjacency[b] |= 1 << a

    def _synthesize_cross_edges(self) -> tuple[tuple[int, int], ...]:
        """Chain the components' lowest-index representatives together."""
        representatives = [min_index(comp) for comp in self.components()]
        return tuple(zip(representatives, representatives[1:]))

    @property
    def all_mask(self) -> int:
        return (1 << self.n) - 1

    def mask_of(self, aliases: str | tuple[str, ...]) -> int:
        if isinstance(aliases, str):
            aliases = (aliases,)
        mask = 0
        for alias in aliases:
            mask |= 1 << self.index_of[alias]
        return mask

    def aliases_of(self, mask: int) -> tuple[str, ...]:
        return tuple(self.aliases[i] for i in iter_bits(mask))

    def neighbors(self, mask: int) -> int:
        """All relations adjacent to ``mask`` (excluding ``mask`` itself)."""
        result = 0
        for i in iter_bits(mask):
            result |= self.adjacency[i]
        return result & ~mask

    def _reachable(self, start: int, within: int) -> int:
        """All vertices of ``within`` reachable from ``start`` (⊆ within)."""
        frontier = seen = start
        while frontier:
            expand = 0
            for i in iter_bits(frontier):
                expand |= self.adjacency[i]
            frontier = expand & within & ~seen
            seen |= frontier
        return seen

    def connected(self, mask: int) -> bool:
        """Is the induced subgraph on ``mask`` connected?"""
        cached = self._connected_cache.get(mask)
        if cached is None:
            if mask == 0:
                cached = False
            else:
                cached = self._reachable(mask & -mask, mask) == mask
            self._connected_cache[mask] = cached
        return cached

    def connects(self, left: int, right: int) -> bool:
        """Is there any edge — join predicate or synthetic cross-product
        edge — between ``left`` and ``right``?"""
        return bool(self.neighbors(left) & right)

    def components(self) -> list[int]:
        """The connected-component masks, ordered by lowest member index.

        Computed over the current adjacency: with ``cross_products`` the
        synthesized edges make this a single component by construction (they
        are added *after* the components are taken of the raw graph).
        """
        remaining = self.all_mask
        result = []
        while remaining:
            component = self._reachable(remaining & -remaining, remaining)
            result.append(component)
            remaining &= ~component
        return result

    def edges_between(self, left: int, right: int) -> tuple[JoinPredicate, ...]:
        """Join predicates with one side in ``left`` and the other in ``right``.

        Empty for a pair linked only by a synthetic cross-product edge —
        the plan generator turns such a pair into a predicate-free cross
        join.
        """
        result = []
        for a, b, join in self.edges:
            if (left >> a & 1 and right >> b & 1) or (left >> b & 1 and right >> a & 1):
                result.append(join)
        return tuple(result)

    def edges_within(self, mask: int) -> tuple[JoinPredicate, ...]:
        """Join predicates entirely inside ``mask``."""
        return tuple(
            join
            for a, b, join in self.edges
            if mask >> a & 1 and mask >> b & 1
        )

    def expand_connected(self, subgraph: int, exclude: int) -> Iterator[int]:
        """DPccp's ``EnumerateCsgRec``: every connected strict superset of
        ``subgraph`` reachable without touching ``exclude``, exactly once.

        Each yielded set appears after all of its yielded subsets (level
        emissions use :func:`iter_submasks`'s increasing order; recursion
        only ever adds vertices outside the current neighborhood), which is
        what makes the stream consumable by bottom-up DP.
        """
        neighborhood = self.neighbors(subgraph) & ~exclude
        if not neighborhood:
            return
        for grow in iter_submasks(neighborhood):
            yield subgraph | grow
        for grow in iter_submasks(neighborhood):
            yield from self.expand_connected(subgraph | grow, exclude | neighborhood)

    def connected_subsets(self) -> Iterator[int]:
        """Every connected relation subset exactly once, as a true generator.

        DPccp's ``EnumerateCsg``: each subset is rooted at its lowest
        vertex and grown only toward higher indices, so nothing close to
        the 2^n mask space is ever materialized (or even visited) on sparse
        graphs.  Order guarantee — weaker than the old sorted-by-size list
        but exactly what DP needs: every connected subset is yielded after
        all of its connected proper subsets.
        """
        for i in range(self.n - 1, -1, -1):
            yield 1 << i
            yield from self.expand_connected(1 << i, prefix_mask(i))

    def partitions(self, mask: int) -> Iterator[tuple[int, int]]:
        """Unordered partitions (S1, S2) of a connected ``mask`` such that
        S1 and S2 are connected and joined by at least one edge (possibly a
        synthetic cross-product edge).

        Each unordered pair is yielded once (S1 contains the lowest bit).
        This is the naive DPsub scan — every submask of ``mask`` is visited,
        O(3^n) summed over all masks — kept as the reference oracle for the
        DPccp enumerator.
        """
        lowest = mask & -mask
        rest = mask ^ lowest
        # enumerate all subsets of `rest`, each unioned with `lowest`
        sub = rest
        while True:
            left = lowest | sub
            right = mask ^ left
            if (
                right
                and self.connected(left)
                and self.connected(right)
                and self.connects(left, right)
            ):
                yield left, right
            if sub == 0:
                break
            sub = (sub - 1) & rest
