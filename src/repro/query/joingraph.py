"""The join graph, bitmask-indexed for the dynamic-programming enumerator.

Relations are numbered in query order; a subset of relations is an ``int``
bitmask.  The DP plan generator (``repro.plangen.dp``) relies on
connectivity tests and on listing the join predicates crossing a partition,
both provided here with memoization.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from .predicates import JoinPredicate
from .query import QuerySpec


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask``."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass
class JoinGraph:
    """Join graph over the relations of one query."""

    spec: QuerySpec

    def __post_init__(self) -> None:
        self.aliases = self.spec.aliases
        self.index_of = {alias: i for i, alias in enumerate(self.aliases)}
        self.n = len(self.aliases)
        self.edges: tuple[tuple[int, int, JoinPredicate], ...] = tuple(
            (
                self.index_of[join.left.relation],
                self.index_of[join.right.relation],
                join,
            )
            for join in self.spec.joins
        )
        self.adjacency: list[int] = [0] * self.n
        for a, b, _ in self.edges:
            self.adjacency[a] |= 1 << b
            self.adjacency[b] |= 1 << a
        self._connected = lru_cache(maxsize=None)(self._connected_uncached)

    @property
    def all_mask(self) -> int:
        return (1 << self.n) - 1

    def mask_of(self, aliases: str | tuple[str, ...]) -> int:
        if isinstance(aliases, str):
            aliases = (aliases,)
        mask = 0
        for alias in aliases:
            mask |= 1 << self.index_of[alias]
        return mask

    def aliases_of(self, mask: int) -> tuple[str, ...]:
        return tuple(self.aliases[i] for i in iter_bits(mask))

    def neighbors(self, mask: int) -> int:
        """All relations adjacent to ``mask`` (excluding ``mask`` itself)."""
        result = 0
        for i in iter_bits(mask):
            result |= self.adjacency[i]
        return result & ~mask

    def _connected_uncached(self, mask: int) -> bool:
        if mask == 0:
            return False
        start = 1 << next(iter_bits(mask))
        frontier = start
        seen = start
        while frontier:
            expand = 0
            for i in iter_bits(frontier):
                expand |= self.adjacency[i]
            frontier = expand & mask & ~seen
            seen |= frontier
        return seen == mask

    def connected(self, mask: int) -> bool:
        """Is the induced subgraph on ``mask`` connected?"""
        return self._connected(mask)

    def edges_between(self, left: int, right: int) -> tuple[JoinPredicate, ...]:
        """Join predicates with one side in ``left`` and the other in ``right``."""
        result = []
        for a, b, join in self.edges:
            if (left >> a & 1 and right >> b & 1) or (left >> b & 1 and right >> a & 1):
                result.append(join)
        return tuple(result)

    def edges_within(self, mask: int) -> tuple[JoinPredicate, ...]:
        """Join predicates entirely inside ``mask``."""
        return tuple(
            join
            for a, b, join in self.edges
            if mask >> a & 1 and mask >> b & 1
        )

    def connected_subsets(self) -> Iterator[int]:
        """All connected relation subsets, in increasing size order."""
        masks = [
            mask
            for mask in range(1, self.all_mask + 1)
            if self.connected(mask)
        ]
        masks.sort(key=lambda m: (m.bit_count(), m))
        return iter(masks)

    def partitions(self, mask: int) -> Iterator[tuple[int, int]]:
        """Unordered partitions (S1, S2) of a connected ``mask`` such that
        S1 and S2 are connected and joined by at least one edge.

        Each unordered pair is yielded once (S1 contains the lowest bit).
        """
        lowest = mask & -mask
        rest = mask ^ lowest
        # enumerate all subsets of `rest`, each unioned with `lowest`
        sub = rest
        while True:
            left = lowest | sub
            right = mask ^ left
            if right and self.connected(left) and self.connected(right):
                if self.edges_between(left, right):
                    yield left, right
            if sub == 0:
                break
            sub = (sub - 1) & rest
