"""Bottom-up DP plan generator with pluggable order-optimization backends."""

from .backends import FsmBackend, OracleBackend, OrderingBackend, SimmenBackend
from .cost import DEFAULT_COST_MODEL, CostModel
from .dp import PlanGenConfig, PlanGenerator, PlanGenResult, PlanGenStats, generate_plan
from .enumerate import (
    DPSUB_MAX_N,
    ENUMERATORS,
    DPccp,
    DPsub,
    EnumerationStrategy,
    Greedy,
    make_strategy,
    resolve_enumerator,
)
from .plan import (
    HASH_JOIN,
    INDEX_SCAN,
    JOIN_OPS,
    MERGE_JOIN,
    NL_JOIN,
    SCAN,
    SORT,
    PlanNode,
)

__all__ = [
    "OrderingBackend",
    "FsmBackend",
    "SimmenBackend",
    "OracleBackend",
    "EnumerationStrategy",
    "DPsub",
    "DPccp",
    "Greedy",
    "ENUMERATORS",
    "DPSUB_MAX_N",
    "make_strategy",
    "resolve_enumerator",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "PlanGenerator",
    "PlanGenConfig",
    "PlanGenResult",
    "PlanGenStats",
    "generate_plan",
    "PlanNode",
    "SCAN",
    "INDEX_SCAN",
    "SORT",
    "MERGE_JOIN",
    "HASH_JOIN",
    "NL_JOIN",
    "JOIN_OPS",
]
