"""Pluggable join-enumeration strategies for the plan generator.

The DP plan generator (``repro.plangen.dp``) is plan *construction* —
building and pruning join alternatives for (left, right) subset pairs.
Which pairs are worth visiting, and in what order, is a separate concern
with very different asymptotics per query shape; this module makes it a
first-class, pluggable layer behind :class:`EnumerationStrategy`:

* :class:`DPsub` — the naive submask scan (visit every connected subset,
  test every submask split): O(3^n) work even on chain queries.  Kept as
  the executable reference oracle;
* :class:`DPccp` — csg-cmp-pair enumeration via recursive neighborhood
  expansion (Moerkotte & Neumann, VLDB 2006).  Work is proportional to the
  number of *valid* csg-cmp pairs, which is polynomial on sparse shapes
  (chains: Θ(n³)), so chain/cycle/grid queries scale far past the DPsub
  horizon.  The default;
* :class:`Greedy` — greedy operator ordering (GOO): repeatedly merge the
  pair of components with the smallest estimated join cardinality.  Yields
  exactly n-1 pairs — one join tree — for graphs past the size where exact
  DP is infeasible.  The plan generator still considers every operator
  alternative and ordering for each greedy pair, so only the join *shape*
  is heuristic.

The contract of :meth:`EnumerationStrategy.pairs`:

* each yielded ``(left, right)`` is a disjoint pair of non-empty relation
  masks with both sides connected and at least one edge (possibly a
  synthetic cross-product edge) between them;
* each unordered pair is yielded at most once — the plan generator tries
  both orientations itself;
* **DP-valid order**: by the time a pair is yielded, every pair whose
  union equals ``left`` (or ``right``) has been yielded already, so the
  DP tables of both sides are complete.

Strategy selection is threaded through
:class:`~repro.plangen.dp.PlanGenConfig` (``enumerator="auto"`` picks
DPccp up to ``greedy_threshold`` relations, Greedy beyond), the service
layer (recorded in session statistics and the preparation fingerprint) and
the CLI (``plan --enumerator``, ``sweep --topologies``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Iterator

from ..query.joingraph import (
    JoinGraph,
    iter_bits_desc,
    min_index,
    prefix_mask,
)

#: Estimated output cardinality of the plans covering a mask; supplied by
#: the plan generator (memoized there) so strategies never re-derive stats.
CardinalityFn = Callable[[int], float]

#: The sentinel configuration value resolved per query by relation count.
AUTO = "auto"

#: The DPsub oracle horizon: largest relation count at which the naive
#: O(3^n) submask scan is still benchmark-friendly.  Sweeps and benchmarks
#: skip DPsub past it (it need not terminate in reasonable time there —
#: removing that wall is DPccp's whole point).
DPSUB_MAX_N = 10


class EnumerationStrategy(ABC):
    """One way of walking the join graph's (left, right) subset pairs."""

    name: str = "abstract"

    @abstractmethod
    def pairs(
        self, graph: JoinGraph, cardinality: CardinalityFn
    ) -> Iterator[tuple[int, int]]:
        """Yield (left, right) mask pairs in a DP-valid order (see module
        docstring).  ``cardinality`` estimates a mask's output size; exact
        strategies ignore it, heuristic ones steer by it."""


class DPsub(EnumerationStrategy):
    """The reference oracle: naive submask-scan enumeration.

    Visits every connected subset (in DP-valid order) and tests *every*
    submask split of it for validity — the seed system's behavior, O(3^n)
    summed over the masks regardless of graph shape.  Exhaustive and
    obviously correct, which is why DPccp is differentially tested against
    it.
    """

    name = "dpsub"

    def pairs(
        self, graph: JoinGraph, cardinality: CardinalityFn
    ) -> Iterator[tuple[int, int]]:
        for mask in graph.connected_subsets():
            if mask.bit_count() < 2:
                continue
            yield from graph.partitions(mask)


class DPccp(EnumerationStrategy):
    """Csg-cmp-pair enumeration (Moerkotte & Neumann, VLDB 2006).

    ``EnumerateCsg`` grows every connected subgraph (csg) exactly once from
    its lowest vertex; for each csg, ``EnumerateCmp`` grows every connected
    complement (cmp) that is disjoint, adjacent, and rooted at a higher
    vertex — so each unordered pair is emitted exactly once, and only valid
    pairs are ever touched.  Emission order is DP-valid: csgs are emitted
    subsets-before-supersets per root and roots descend, hence both sides
    of a pair are complete when it appears (the property the differential
    oracle in ``tests/plangen/test_enumerate.py`` checks explicitly).
    """

    name = "dpccp"

    def pairs(
        self, graph: JoinGraph, cardinality: CardinalityFn
    ) -> Iterator[tuple[int, int]]:
        for i in range(graph.n - 1, -1, -1):
            root = 1 << i
            yield from self._complements(graph, root)
            for csg in graph.expand_connected(root, prefix_mask(i)):
                yield from self._complements(graph, csg)

    def _complements(
        self, graph: JoinGraph, subgraph: int
    ) -> Iterator[tuple[int, int]]:
        """All csg-cmp pairs ``(subgraph, cmp)`` for one csg."""
        exclude = prefix_mask(min_index(subgraph)) | subgraph
        neighborhood = graph.neighbors(subgraph) & ~exclude
        for v in iter_bits_desc(neighborhood):
            seed = 1 << v
            yield subgraph, seed
            # Lower-indexed neighborhood vertices are excluded from the
            # expansion: a complement containing one is rooted there and
            # will be emitted from that seed instead (no duplicates).
            restricted = exclude | (prefix_mask(v) & neighborhood)
            for cmp_ in graph.expand_connected(seed, restricted):
                yield subgraph, cmp_


class Greedy(EnumerationStrategy):
    """Greedy operator ordering (GOO) for graphs too large for exact DP.

    Starts from singleton components and repeatedly merges the adjacent
    pair whose join output has the smallest estimated cardinality (ties
    broken deterministically by scan order).  Yields exactly n-1 pairs and
    never revisits a shape, so plan generation is polynomial; the price is
    that only one join tree is explored.
    """

    name = "greedy"

    def pairs(
        self, graph: JoinGraph, cardinality: CardinalityFn
    ) -> Iterator[tuple[int, int]]:
        components = [1 << i for i in range(graph.n)]
        while len(components) > 1:
            best_i = best_j = -1
            best_card = math.inf
            for i in range(len(components)):
                for j in range(i + 1, len(components)):
                    if not graph.connects(components[i], components[j]):
                        continue
                    card = cardinality(components[i] | components[j])
                    if card < best_card:
                        best_card, best_i, best_j = card, i, j
            if best_i < 0:  # pragma: no cover - run() pre-checks connectivity
                raise ValueError("join graph is disconnected")
            left, right = components[best_i], components[best_j]
            yield left, right
            components[best_i] = left | right
            del components[best_j]


ENUMERATORS: dict[str, type[EnumerationStrategy]] = {
    DPsub.name: DPsub,
    DPccp.name: DPccp,
    Greedy.name: Greedy,
}


def resolve_enumerator(name: str, n_relations: int, greedy_threshold: int) -> str:
    """Resolve a configured enumerator name for a concrete query.

    ``"auto"`` selects by relation count: DPccp while exact DP is feasible,
    Greedy beyond ``greedy_threshold`` relations.  Explicit names pass
    through (after validation) — benchmarks and the differential oracle
    pin their enumerator regardless of size.
    """
    if name == AUTO:
        return Greedy.name if n_relations > greedy_threshold else DPccp.name
    if name not in ENUMERATORS:
        raise ValueError(
            f"unknown enumerator {name!r}; "
            f"available: {AUTO}, {', '.join(sorted(ENUMERATORS))}"
        )
    return name


def make_strategy(name: str) -> EnumerationStrategy:
    """Instantiate a (resolved, non-``auto``) strategy by name."""
    return ENUMERATORS[name]()
