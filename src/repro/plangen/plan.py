"""Physical plan nodes.

Plan nodes are immutable and deliberately small: besides tree structure and
cost/cardinality they carry exactly one piece of order information — the
opaque ``state`` of the active ordering backend (an ``int`` for the FSM
framework, a ``SimmenState`` for the baseline), which is the point of the
paper's O(1)-space claim.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..core.ordering import Ordering

SCAN = "scan"
INDEX_SCAN = "index_scan"
SORT = "sort"
MERGE_JOIN = "merge_join"
HASH_JOIN = "hash_join"
NL_JOIN = "nl_join"
STREAM_AGGREGATE = "stream_aggregate"
HASH_AGGREGATE = "hash_aggregate"

JOIN_OPS = (MERGE_JOIN, HASH_JOIN, NL_JOIN)
AGGREGATE_OPS = (STREAM_AGGREGATE, HASH_AGGREGATE)


class PlanNode:
    """One physical operator in a plan tree."""

    __slots__ = (
        "op",
        "relations",
        "left",
        "right",
        "state",
        "cost",
        "cardinality",
        "ordering",
        "detail",
        "alias",
        "predicates",
    )

    def __init__(
        self,
        op: str,
        relations: int,
        *,
        state: Any,
        cost: float,
        cardinality: float,
        left: "PlanNode | None" = None,
        right: "PlanNode | None" = None,
        ordering: Ordering | None = None,
        detail: str = "",
        alias: str = "",
        predicates: tuple = (),
    ) -> None:
        self.op = op
        self.relations = relations
        self.left = left
        self.right = right
        self.state = state
        self.cost = cost
        self.cardinality = cardinality
        self.ordering = ordering
        self.detail = detail
        self.alias = alias
        self.predicates = predicates

    def operators(self) -> Iterator["PlanNode"]:
        """Pre-order iteration over the plan tree."""
        yield self
        if self.left is not None:
            yield from self.left.operators()
        if self.right is not None:
            yield from self.right.operators()

    @property
    def operator_count(self) -> int:
        return sum(1 for _ in self.operators())

    def join_ops(self) -> list[str]:
        """The join operators of the plan, outermost first."""
        return [node.op for node in self.operators() if node.op in JOIN_OPS]

    def explain(
        self,
        indent: int = 0,
        annotate: "Callable[[PlanNode], str] | None" = None,
    ) -> str:
        """Human-readable plan tree.

        ``annotate`` appends per-operator text to each node line — the
        execution layer uses it to print *actual* row/batch/sort counters
        next to the estimates (``explain analyze``).  An empty annotation
        leaves the line untouched.
        """
        pad = "  " * indent
        parts = [f"{pad}{self.op}"]
        if self.ordering is not None and len(self.ordering):
            parts.append(f"order={self.ordering!r}")
        if self.detail:
            parts.append(f"[{self.detail}]")
        parts.append(f"cost={self.cost:.1f}")
        parts.append(f"rows={self.cardinality:.0f}")
        if annotate is not None:
            extra = annotate(self)
            if extra:
                parts.append(extra)
        lines = [" ".join(parts)]
        if self.left is not None:
            lines.append(self.left.explain(indent + 1, annotate))
        if self.right is not None:
            lines.append(self.right.explain(indent + 1, annotate))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PlanNode({self.op}, cost={self.cost:.1f})"
