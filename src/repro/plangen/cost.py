"""The cost model of the plan generator.

A classic textbook model in abstract row units.  The constants are chosen so
that the order-related trade-offs of the paper actually arise:

* a merge join on pre-sorted inputs is the cheapest join,
* a hash join beats sort-plus-merge for large unsorted inputs,
* sort-plus-merge beats hash when one side is already sorted or small,
* nested loops win only for very small outer/inner combinations.

Costs are cumulative: every operator adds its own cost to its inputs'.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cost constants (per-row factors)."""

    scan_factor: float = 1.0
    index_scan_factor: float = 1.1  # slight overhead over a plain scan
    sort_factor: float = 0.07  # multiplied by n·log2(n)
    merge_factor: float = 1.0
    hash_factor: float = 1.6  # build + probe overhead per row
    nl_factor: float = 0.02  # per (outer row, inner row) pair

    def scan(self, cardinality: float) -> float:
        return self.scan_factor * cardinality

    def index_scan(self, cardinality: float) -> float:
        return self.index_scan_factor * cardinality

    def sort(self, input_cost: float, cardinality: float) -> float:
        n = max(cardinality, 2.0)
        return input_cost + self.sort_factor * n * math.log2(n)

    def merge_join(
        self, left_cost: float, right_cost: float, left_card: float, right_card: float
    ) -> float:
        return left_cost + right_cost + self.merge_factor * (left_card + right_card)

    def hash_join(
        self, left_cost: float, right_cost: float, left_card: float, right_card: float
    ) -> float:
        return left_cost + right_cost + self.hash_factor * (left_card + right_card)

    def nested_loop_join(
        self, left_cost: float, right_cost: float, left_card: float, right_card: float
    ) -> float:
        return left_cost + right_cost + self.nl_factor * left_card * right_card

    # -- aggregation (groupings extension) ---------------------------------------

    stream_agg_factor: float = 0.5
    hash_agg_factor: float = 1.8

    def stream_aggregate(self, input_cost: float, cardinality: float) -> float:
        """Aggregation over an input already grouped on the keys."""
        return input_cost + self.stream_agg_factor * cardinality

    def hash_aggregate(
        self, input_cost: float, cardinality: float, groups: float
    ) -> float:
        """Hash aggregation: build a table of groups."""
        return input_cost + self.hash_agg_factor * cardinality + groups


DEFAULT_COST_MODEL = CostModel()
