"""The bottom-up dynamic-programming plan generator (Lohman-style).

System-R/Starburst shape, as the paper assumes (Section 2, [3]):

1. **base plans** — per relation: table scan (plus index scans), with the
   relation's equality-selection FD set applied;
2. **joins** — a pluggable enumeration strategy
   (``repro.plangen.enumerate``) yields connected subgraph / connected
   complement pairs of the join graph in a DP-valid order; for each pair of
   sub-plans emit nested loop, hash, and sort-merge joins.  Merge joins
   require both inputs sorted on the join attributes (``contains``); when
   an input is not, a *sort enforcer* is inserted.  Every join applies the
   FD sets of the predicates it evaluates (``inferNewLogicalOrderings``).
   A pair without predicates (synthetic cross-product edge, see
   ``PlanGenConfig.enable_cross_products``) becomes a predicate-free
   nested-loop cross join;
3. **pruning** — within a relation subset, plans are comparable when the
   ordering backend says their states are (FSM: equal DFSM state; Simmen:
   equal physical ordering and FD set).  Comparable plans keep only the
   cheapest.  This is precisely where the FSM framework's smaller state
   space shrinks the search space (paper Section 7);
4. **finalization** — a sort enforcer satisfies ``ORDER BY`` if no plan
   already does.

Instrumentation counts every constructed operator (the paper's ``#Plans``),
retained table entries, the (left, right) pairs the enumerator visited,
and the bytes of order annotations (Figure 14).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.fd import FDSet
from ..core.ordering import Ordering
from ..query.analyzer import QueryOrderInfo, analyze
from ..query.joingraph import JoinGraph, iter_bits
from ..query.predicates import JoinPredicate
from ..query.query import QuerySpec
from .backends import OrderingBackend
from .cost import DEFAULT_COST_MODEL, CostModel
from .enumerate import AUTO, make_strategy, resolve_enumerator
from .plan import (
    HASH_JOIN,
    INDEX_SCAN,
    MERGE_JOIN,
    NL_JOIN,
    SCAN,
    SORT,
    PlanNode,
)


@dataclass(frozen=True)
class PlanGenConfig:
    """Operator toggles and pruning policy."""

    enable_nl_join: bool = True
    enable_hash_join: bool = True
    enable_merge_join: bool = True
    enable_sort_enforcers: bool = True
    enable_index_scans: bool = True
    include_tested_selections: bool = False
    cross_key_dominance: bool = False
    """Extension beyond the paper: prune a plan when a cheaper plan's state
    *dominates* its state (backend-provided simulation preorder), instead of
    requiring equal states.  Optimality-preserving."""

    enable_aggregation: bool = False
    """Groupings extension: plan an aggregation step for ``GROUP BY``.  A
    streaming aggregate is used when the ordering backend proves the input
    grouped on the keys (only the FSM backend can); otherwise a hash
    aggregate.  Off by default so the Simmen-comparison experiments match
    the paper's operator repertoire."""

    enumerator: str = AUTO
    """Join-enumeration strategy (``repro.plangen.enumerate``): ``"auto"``
    resolves per query by relation count (DPccp up to ``greedy_threshold``
    relations, Greedy beyond); ``"dpsub"`` / ``"dpccp"`` / ``"greedy"`` pin
    a strategy regardless of size."""

    greedy_threshold: int = 12
    """Largest relation count ``"auto"`` still plans exactly (DPccp).
    Beyond it, exact DP can be infeasible on dense shapes, so auto falls
    back to greedy construction."""

    enable_cross_products: bool = False
    """Plan disconnected join graphs by synthesizing predicate-free edges
    between the components (see ``JoinGraph.cross_edges``).  A pair linked
    only by a synthetic edge becomes a nested-loop cross join with
    product-of-inputs cardinality.  Off by default: a disconnected graph
    raises, as the paper's workloads assume connectivity."""


@dataclass
class PlanGenStats:
    """The measurements of the Section 7 experiments."""

    plans_created: int = 0
    plans_retained: int = 0
    pairs_visited: int = 0
    """(left, right) subset pairs the enumeration strategy yielded — the
    paper-follow-up's csg-cmp-pair count, comparable across strategies."""
    enumerator: str = ""
    """Resolved strategy name that generated this plan."""
    time_ms: float = 0.0
    prepare_ms: float = 0.0
    state_bytes: int = 0
    shared_bytes: int = 0
    states_materialized: int = 0
    """DFSM states the backend's prepared component holds after this run —
    under lazy preparation, the states plan generation actually touched."""
    states_total: int | None = None
    """Total reachable DFSM states, when the backend knows it (eager
    preparation); ``None`` for lazy components (computing it would defeat
    laziness) and for backends without a state machine."""

    @property
    def total_order_bytes(self) -> int:
        return self.state_bytes + self.shared_bytes

    @property
    def us_per_plan(self) -> float:
        if self.plans_created == 0:
            return 0.0
        return 1000.0 * self.time_ms / self.plans_created


@dataclass
class PlanGenResult:
    best_plan: PlanNode
    stats: PlanGenStats
    info: QueryOrderInfo
    tables: dict[int, dict] = field(default_factory=dict)


class PlanGenerator:
    """Bottom-up plan construction with order-aware pruning, over whatever
    (left, right) subset pairs the configured enumeration strategy yields
    (``repro.plangen.enumerate``)."""

    def __init__(
        self,
        spec: QuerySpec,
        backend: OrderingBackend,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        config: PlanGenConfig = PlanGenConfig(),
        *,
        info: QueryOrderInfo | None = None,
    ) -> None:
        self.spec = spec
        self.backend = backend
        self.cost = cost_model
        self.config = config
        self.graph = JoinGraph(spec, cross_products=config.enable_cross_products)
        self.stats = PlanGenStats()
        self._injected_info = info
        self._card_cache: dict[int, float] = {}
        self._held_cache: dict[int, tuple[FDSet, ...]] = {}

    # -- plumbing -------------------------------------------------------------

    def _make(self, op: str, relations: int, **kwargs) -> PlanNode:
        self.stats.plans_created += 1
        return PlanNode(op, relations, **kwargs)

    def _base_cardinality(self, alias: str) -> float:
        card = float(self.spec.cardinality(alias))
        for selection in self.spec.selections_for(alias):
            card *= self.spec.selection_selectivity(selection)
        return max(card, 1.0)

    def _cardinality(self, mask: int) -> float:
        cached = self._card_cache.get(mask)
        if cached is not None:
            return cached
        card = 1.0
        for i in iter_bits(mask):
            card *= self._base_cardinality(self.graph.aliases[i])
        for join in self.graph.edges_within(mask):
            card *= self.spec.join_selectivity(join)
        card = max(card, 1.0)
        self._card_cache[mask] = card
        return card

    def _held_fdsets(self, mask: int) -> tuple[FDSet, ...]:
        """FD sets that hold for any plan covering ``mask`` (for sorts)."""
        cached = self._held_cache.get(mask)
        if cached is not None:
            return cached
        held: list[FDSet] = []
        for i in iter_bits(mask):
            alias = self.graph.aliases[i]
            fdset = self.info.scan_fdsets.get(alias)
            if fdset is not None:
                held.append(fdset)
        for join in self.graph.edges_within(mask):
            held.append(self.info.join_fdsets[join])
        result = tuple(held)
        self._held_cache[mask] = result
        return result

    # -- DP table maintenance ---------------------------------------------------

    def _emit(self, table: dict, plan: PlanNode) -> None:
        key = self.backend.plan_key(plan.state)
        incumbent = table.get(key)
        if incumbent is not None and incumbent.cost <= plan.cost:
            return
        if self.config.cross_key_dominance:
            dominates = self.backend.dominates
            for other_key, other in table.items():
                if (
                    other_key != key
                    and other.cost <= plan.cost
                    and dominates(other_key, key)
                ):
                    return
            doomed = [
                other_key
                for other_key, other in table.items()
                if other_key != key
                and plan.cost <= other.cost
                and dominates(key, other_key)
            ]
            for other_key in doomed:
                del table[other_key]
        table[key] = plan

    # -- base plans ---------------------------------------------------------------

    def _base_plans(self, i: int) -> dict:
        alias = self.graph.aliases[i]
        mask = 1 << i
        card = self._cardinality(mask)
        raw_card = float(self.spec.cardinality(alias))
        scan_fdset = self.info.scan_fdsets.get(alias)
        table: dict = {}

        state = self.backend.scan_state()
        if scan_fdset is not None:
            state = self.backend.apply(state, scan_fdset)
        table_scan = self._make(
            SCAN,
            mask,
            state=state,
            cost=self.cost.scan(raw_card),
            cardinality=card,
            detail=alias,
            alias=alias,
        )
        self._emit(table, table_scan)

        if self.config.enable_index_scans:
            for index, order in self.spec.indexes_for(alias):
                if not index.clustered:
                    continue
                state = self.backend.produced_state(order)
                if scan_fdset is not None:
                    state = self.backend.apply(state, scan_fdset)
                index_scan = self._make(
                    INDEX_SCAN,
                    mask,
                    state=state,
                    cost=self.cost.index_scan(raw_card),
                    cardinality=card,
                    ordering=order,
                    detail=f"{alias}.{index.name}",
                    alias=alias,
                )
                self._emit(table, index_scan)
        return table

    # -- joins --------------------------------------------------------------------

    def _sorted_input(
        self, plan: PlanNode, order: Ordering, mask: int
    ) -> PlanNode | None:
        """Return ``plan`` if already sorted on ``order``, else a sort on top."""
        if self.backend.satisfies(plan.state, order):
            return plan
        if not self.config.enable_sort_enforcers:
            return None
        state = self.backend.sort_state(order, self._held_fdsets(mask))
        return self._make(
            SORT,
            mask,
            state=state,
            cost=self.cost.sort(plan.cost, plan.cardinality),
            cardinality=plan.cardinality,
            left=plan,
            ordering=order,
        )

    def _join_state(
        self,
        input_state,
        other_mask: int,
        predicates: tuple[JoinPredicate, ...],
    ):
        """Output state of a join: the order-carrying input's state, plus the
        FD sets of the other side (its predicates hold on the join output)
        and of the newly evaluated join predicates."""
        state = input_state
        for fdset in self._held_fdsets(other_mask):
            state = self.backend.apply(state, fdset)
        for join in predicates:
            state = self.backend.apply(state, self.info.join_fdsets[join])
        return state

    def _emit_joins(
        self,
        table: dict,
        mask: int,
        left: PlanNode,
        right: PlanNode,
        predicates: tuple[JoinPredicate, ...],
        out_card: float,
    ) -> None:
        """All join alternatives for one (left, right) plan pair."""
        cost = self.cost

        if not predicates:
            # The pair is linked only by a synthetic cross-product edge.
            # Nested loops is the one implementation of a cross join (there
            # is no key to hash or merge on), so it ignores enable_nl_join.
            self._emit(
                table,
                self._make(
                    NL_JOIN,
                    mask,
                    state=self._join_state(left.state, right.relations, ()),
                    cost=cost.nested_loop_join(
                        left.cost, right.cost, left.cardinality, right.cardinality
                    ),
                    cardinality=out_card,
                    left=left,
                    right=right,
                    detail="cross product",
                    predicates=(),
                ),
            )
            return

        detail = " and ".join(str(p) for p in predicates)

        if self.config.enable_nl_join:
            self._emit(
                table,
                self._make(
                    NL_JOIN,
                    mask,
                    state=self._join_state(left.state, right.relations, predicates),
                    cost=cost.nested_loop_join(
                        left.cost, right.cost, left.cardinality, right.cardinality
                    ),
                    cardinality=out_card,
                    left=left,
                    right=right,
                    detail=detail,
                    predicates=predicates,
                ),
            )

        if self.config.enable_hash_join:
            self._emit(
                table,
                self._make(
                    HASH_JOIN,
                    mask,
                    state=self._join_state(left.state, right.relations, predicates),
                    cost=cost.hash_join(
                        left.cost, right.cost, left.cardinality, right.cardinality
                    ),
                    cardinality=out_card,
                    left=left,
                    right=right,
                    detail=detail,
                    predicates=predicates,
                ),
            )

        if self.config.enable_merge_join:
            # Merge on the first predicate; orient its sides to the inputs.
            join = predicates[0]
            if join.left.relation in self.graph.aliases_of(left.relations):
                left_key, right_key = Ordering([join.left]), Ordering([join.right])
            else:
                left_key, right_key = Ordering([join.right]), Ordering([join.left])
            sorted_left = self._sorted_input(left, left_key, left.relations)
            sorted_right = self._sorted_input(right, right_key, right.relations)
            if sorted_left is not None and sorted_right is not None:
                self._emit(
                    table,
                    self._make(
                        MERGE_JOIN,
                        mask,
                        state=self._join_state(sorted_left.state, right.relations, predicates),
                        cost=cost.merge_join(
                            sorted_left.cost,
                            sorted_right.cost,
                            sorted_left.cardinality,
                            sorted_right.cardinality,
                        ),
                        cardinality=out_card,
                        left=sorted_left,
                        right=sorted_right,
                        detail=detail,
                        predicates=predicates,
                    ),
                )

    # -- driver ---------------------------------------------------------------

    def run(self) -> PlanGenResult:
        """Generate the optimal plan for the query.

        When the caller already analyzed the query (passed ``info`` to the
        constructor — the service layer does, so it can consult its caches
        before spending any plan-generation work), that analysis is reused;
        it must have been produced with the same ``analyze`` flags this
        generator's config implies.
        """
        started = time.perf_counter()
        if self._injected_info is not None:
            self.info = self._injected_info
        else:
            self.info = analyze(
                self.spec,
                include_tested_selections=self.config.include_tested_selections,
                include_groupings=self.config.enable_aggregation,
            )
        self.backend.prepare(self.info)
        self.stats.prepare_ms = (time.perf_counter() - started) * 1000.0

        if not self.graph.connected(self.graph.all_mask):
            raise ValueError(
                f"query {self.spec.name} has a disconnected join graph "
                "(set PlanGenConfig.enable_cross_products to plan it with "
                "cross-product joins)"
            )

        name = resolve_enumerator(
            self.config.enumerator, self.graph.n, self.config.greedy_threshold
        )
        strategy = make_strategy(name)
        self.stats.enumerator = name

        tables: dict[int, dict] = {}
        for i in range(self.graph.n):
            tables[1 << i] = self._base_plans(i)

        # Plan construction is strategy-agnostic: whatever (left, right)
        # pairs the enumerator yields — in DP-valid order, each side's
        # table complete by the time the pair arrives — get every operator
        # alternative, in both orientations, pruned per backend state.
        for s1, s2 in strategy.pairs(self.graph, self._cardinality):
            self.stats.pairs_visited += 1
            mask = s1 | s2
            table = tables.setdefault(mask, {})
            out_card = self._cardinality(mask)
            predicates = self.graph.edges_between(s1, s2)
            for left_mask, right_mask in ((s1, s2), (s2, s1)):
                for left in list(tables[left_mask].values()):
                    for right in list(tables[right_mask].values()):
                        self._emit_joins(
                            table, mask, left, right, predicates, out_card
                        )

        final_table = tables.get(self.graph.all_mask)
        if not final_table:
            raise RuntimeError(
                f"enumerator {name!r} produced no plan covering all "
                f"relations of query {self.spec.name}"
            )
        best = self._finalize(final_table)

        self.stats.time_ms = (time.perf_counter() - started) * 1000.0
        self.stats.plans_retained = sum(len(t) for t in tables.values())
        self.stats.state_bytes = sum(
            self.backend.state_bytes(plan.state)
            for t in tables.values()
            for plan in t.values()
        )
        self.stats.shared_bytes = self.backend.shared_bytes()
        self.stats.states_materialized, self.stats.states_total = (
            self.backend.materialization()
        )
        return PlanGenResult(
            best_plan=best, stats=self.stats, info=self.info, tables=tables
        )

    def _aggregate(self, plan: PlanNode) -> PlanNode:
        """Plan the GROUP BY step (groupings extension, opt-in)."""
        from ..core.grouping import Grouping
        from .plan import HASH_AGGREGATE, STREAM_AGGREGATE

        group_by = self.spec.group_by
        groups = 1.0
        for attribute in group_by:
            groups *= self.spec.distinct_values(attribute)
        groups = min(groups, plan.cardinality)
        keys = Grouping(frozenset(group_by))
        detail = ", ".join(str(a) for a in group_by)
        if self.backend.satisfies_grouping(plan.state, keys):
            # Streaming preserves the *relative* order of its input, but the
            # output rows carry only the grouping keys (plus aggregates), so
            # orderings over non-key attributes no longer hold.  Project the
            # state onto what provably survives: the query's ORDER BY, when
            # it mentions only grouping keys and the input already satisfies
            # it.  Anything else collapses to the unordered scan state —
            # carrying ``plan.state`` through unchanged would let the
            # finalizer skip a required sort on an order the aggregate
            # destroyed.
            order_by = self.spec.order_by
            if (
                order_by is not None
                and len(order_by)
                and order_by.attribute_set <= set(group_by)
                and self.backend.satisfies(plan.state, order_by)
            ):
                state = self.backend.produced_state(order_by)
            else:
                state = self.backend.scan_state()
            return self._make(
                STREAM_AGGREGATE,
                plan.relations,
                state=state,
                cost=self.cost.stream_aggregate(plan.cost, plan.cardinality),
                cardinality=groups,
                left=plan,
                detail=detail,
            )
        return self._make(
            HASH_AGGREGATE,
            plan.relations,
            state=self.backend.scan_state(),  # hashing destroys order
            cost=self.cost.hash_aggregate(plan.cost, plan.cardinality, groups),
            cardinality=groups,
            left=plan,
            detail=detail,
        )

    def _finalize(self, final_table: dict) -> PlanNode:
        order_by = self.spec.order_by
        aggregate = self.config.enable_aggregation and bool(self.spec.group_by)
        if aggregate and order_by is not None and len(order_by):
            missing = [
                a for a in order_by if a not in set(self.spec.group_by)
            ]
            if missing:
                names = ", ".join(str(a) for a in missing)
                raise RuntimeError(
                    f"query {self.spec.name}: ORDER BY attribute(s) {names} "
                    "are not GROUP BY keys; the aggregated output no longer "
                    "carries them, so the ordering cannot be produced"
                )
        candidates: list[PlanNode] = []
        for plan in final_table.values():
            if aggregate:
                plan = self._aggregate(plan)
            if order_by is None or not len(order_by):
                candidates.append(plan)
            elif self.backend.satisfies(plan.state, order_by):
                candidates.append(plan)
            elif self.config.enable_sort_enforcers:
                sorted_plan = self._sorted_input(
                    plan, order_by, self.graph.all_mask
                )
                if sorted_plan is not None:
                    candidates.append(sorted_plan)
        if not candidates:
            raise RuntimeError(
                f"no plan satisfies the ORDER BY of query {self.spec.name}"
            )
        return min(candidates, key=lambda p: p.cost)


def generate_plan(
    spec: QuerySpec,
    backend: OrderingBackend,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    config: PlanGenConfig = PlanGenConfig(),
    *,
    info: QueryOrderInfo | None = None,
) -> PlanGenResult:
    """Convenience wrapper: build a generator and run it."""
    return PlanGenerator(spec, backend, cost_model, config, info=info).run()
