"""Pluggable ordering backends for the plan generator.

The plan generator talks to the order-optimization component through this
small interface, which is exactly the ADT of the paper (constructor,
``contains``, ``inferNewLogicalOrderings``) plus bookkeeping for the
experiments.  Three implementations:

* :class:`FsmBackend` — the paper's contribution; state is one ``int``;
* :class:`SimmenBackend` — the baseline; state is (ordering, FD set);
* :class:`OracleBackend` — explicit ``Ω``-closure sets; hopelessly slow but
  an executable specification, used to validate the other two in tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable, Sequence

from ..baseline.simmen import SimmenOrderOptimizer, SimmenState
from ..core.fd import FDSet
from ..core.inference import omega
from ..core.optimizer import BuilderOptions, OrderOptimizer
from ..core.ordering import EMPTY_ORDERING, Ordering
from ..query.analyzer import QueryOrderInfo

State = Any


class OrderingBackend(ABC):
    """The ADT interface the plan generator consumes."""

    name: str = "abstract"

    @abstractmethod
    def prepare(self, info: QueryOrderInfo) -> None:
        """One-time preparation before plan generation starts."""

    @abstractmethod
    def scan_state(self) -> State:
        """State of an unordered scan."""

    @abstractmethod
    def produced_state(self, order: Ordering) -> State:
        """State of an atomic subplan producing ``order`` (e.g. index scan)."""

    @abstractmethod
    def sort_state(self, order: Ordering, held: Sequence[FDSet]) -> State:
        """State after a mid-plan sort, given the FD sets that already hold."""

    @abstractmethod
    def apply(self, state: State, fdset: FDSet) -> State:
        """``inferNewLogicalOrderings``."""

    @abstractmethod
    def satisfies(self, state: State, order: Ordering) -> bool:
        """``contains``."""

    @abstractmethod
    def plan_key(self, state: State) -> Hashable:
        """Pruning key: plans with equal keys are cost-comparable."""

    @abstractmethod
    def state_bytes(self, state: State) -> int:
        """Per-plan-node storage for the memory experiment (Figure 14)."""

    def shared_bytes(self) -> int:
        """Query-wide storage (e.g. the DFSM tables); 0 for the baseline."""
        return 0

    def dominates(self, key_a: Hashable, key_b: Hashable) -> bool:
        """Does plan-key ``key_a`` provide at least ``key_b``'s order info,
        now and after any FD sequence?  Backends without a dominance
        relation answer False (only equal keys are comparable)."""
        return False

    def materialization(self) -> tuple[int, int | None]:
        """(states materialized, total reachable states) of the prepared
        component.  Backends without a state machine report ``(0, None)``;
        the FSM backend reports its table counters — under lazy preparation
        the total is ``None`` (unknown without forcing the power set)."""
        return (0, None)

    def satisfies_grouping(self, state: State, grouping) -> bool:
        """Groupings extension: is the stream grouped on these attributes?
        Backends without grouping support answer False (they fall back to
        hash aggregation)."""
        return False


class FsmBackend(OrderingBackend):
    """The paper's DFSM-based component (state = one integer).

    With ``use_dominance=True`` (extension beyond the paper) the backend
    precomputes the simulation preorder over DFSM states and offers it to
    the plan generator for cross-state pruning.

    ``preparer`` injects an alternative source of prepared state: a callable
    mapping the query's :class:`QueryOrderInfo` to an :class:`OrderOptimizer`.
    The service layer uses this to serve a cached component (keyed by the
    preparation fingerprint) instead of re-running NFSM/DFSM construction —
    the injected component must have been prepared with equal interesting
    orders, FD sets, and builder options (equal fingerprints guarantee
    this).  When ``preparer`` is ``None`` the backend builds its own
    component with ``self.options``, exactly as before.

    ``prepare_mode`` selects the preparation pipeline's determinization
    strategy (``"eager"`` — the full power set up front — or ``"lazy"`` —
    states materialize as plan generation reaches them).  The backend is
    written against the shared table interface, so the mode changes cost
    profile and :meth:`materialization` counters, never a plan.
    """

    name = "fsm"

    def __init__(
        self,
        options: BuilderOptions | None = None,
        *,
        use_dominance: bool = False,
        preparer: Callable[[QueryOrderInfo], OrderOptimizer] | None = None,
        prepare_mode: str = "eager",
    ) -> None:
        self.options = options or BuilderOptions()
        self.use_dominance = use_dominance
        self.preparer = preparer
        self.prepare_mode = prepare_mode
        self.optimizer: OrderOptimizer | None = None
        self._dominance: tuple[frozenset[int], ...] | None = None

    def prepare(self, info: QueryOrderInfo) -> None:
        if self.preparer is not None:
            self.optimizer = self.preparer(info)
        else:
            self.optimizer = OrderOptimizer.prepare(
                info.interesting, info.fdsets, self.options, mode=self.prepare_mode
            )
        self._fd_handles: dict[FDSet, int] = {}
        self._producer_handles: dict[Ordering, int] = {}
        self._order_handles: dict[Ordering, int] = {}
        if self.use_dominance:
            self._dominance = self.optimizer.simulation_dominance_relation()

    def dominates(self, key_a: int, key_b: int) -> bool:
        """Simulation-preorder test between two DFSM states (see
        :func:`repro.core.dominance.simulation_dominance`); always False
        unless the backend was built with ``use_dominance=True``."""
        if self._dominance is None:
            return False
        return key_b in self._dominance[key_a]

    def _opt(self) -> OrderOptimizer:
        if self.optimizer is None:
            raise RuntimeError("backend not prepared")
        return self.optimizer

    def _fd_handle(self, fdset: FDSet) -> int:
        handle = self._fd_handles.get(fdset)
        if handle is None:
            handle = self._opt().fdset_handle(fdset)
            self._fd_handles[fdset] = handle
        return handle

    def scan_state(self) -> int:
        return self._opt().scan_state()

    def produced_state(self, order: Ordering) -> int:
        opt = self._opt()
        handle = self._producer_handles.get(order)
        if handle is None:
            handle = opt.producer_handle(order)
            self._producer_handles[order] = handle
        return opt.state_for_produced(handle)

    def sort_state(self, order: Ordering, held: Sequence[FDSet]) -> int:
        opt = self._opt()
        handle = self._producer_handles.get(order)
        if handle is None:
            handle = opt.producer_handle(order)
            self._producer_handles[order] = handle
        return opt.state_after_sort(handle, [self._fd_handle(f) for f in held])

    def apply(self, state: int, fdset: FDSet) -> int:
        return self._opt().infer(state, self._fd_handle(fdset))

    def satisfies(self, state: int, order: Ordering) -> bool:
        opt = self._opt()
        handle = self._order_handles.get(order)
        if handle is None:
            if not opt.has_ordering(order):
                return False
            handle = opt.ordering_handle(order)
            self._order_handles[order] = handle
        return opt.contains(state, handle)

    def plan_key(self, state: int) -> int:
        return state

    def satisfies_grouping(self, state: int, grouping) -> bool:
        opt = self._opt()
        if not opt.has_grouping(grouping):
            return False
        return opt.contains(state, opt.grouping_handle(grouping))

    def state_bytes(self, state: int) -> int:
        return 4  # the paper's O(1): one 4-byte integer per plan node

    def shared_bytes(self) -> int:
        # Live table bytes, not the prepare-time snapshot: under lazy
        # preparation the tables grow with use, and the honest memory
        # number is what is resident *now*.
        return self._opt().tables.total_bytes

    def materialization(self) -> tuple[int, int | None]:
        tables = self._opt().tables
        return (tables.states_materialized, tables.states_total)


class SimmenBackend(OrderingBackend):
    """The Simmen et al. baseline (state = physical ordering + FD set)."""

    name = "simmen"

    def __init__(self) -> None:
        self.adt = SimmenOrderOptimizer()

    def prepare(self, info: QueryOrderInfo) -> None:
        # No preparation phase — that is the point of the comparison.
        self.info = info

    def scan_state(self) -> SimmenState:
        return self.adt.scan_state()

    def produced_state(self, order: Ordering) -> SimmenState:
        return self.adt.state_for_produced(order)

    def sort_state(self, order: Ordering, held: Sequence[FDSet]) -> SimmenState:
        items = frozenset(item for fdset in held for item in fdset.items)
        return self.adt.state_after_sort(order, items)

    def apply(self, state: SimmenState, fdset: FDSet) -> SimmenState:
        return self.adt.infer(state, fdset)

    def satisfies(self, state: SimmenState, order: Ordering) -> bool:
        return self.adt.contains(state, order)

    def plan_key(self, state: SimmenState) -> Hashable:
        # The paper: Simmen's framework can only compare plans with the same
        # physical ordering and the same (or subset) FD set.  Within one DP
        # class the FD sets coincide, so the ordering is the key.
        return (state.physical, state.fds)

    def state_bytes(self, state: SimmenState) -> int:
        return state.size_bytes()


class OracleBackend(OrderingBackend):
    """Explicit logical-ordering sets — the executable specification."""

    name = "oracle"

    def prepare(self, info: QueryOrderInfo) -> None:
        self.info = info

    def scan_state(self) -> frozenset[Ordering]:
        # The empty physical ordering: constants can still create orderings
        # (mirrors the FSM's explicit empty-ordering node).
        return frozenset({EMPTY_ORDERING})

    def produced_state(self, order: Ordering) -> frozenset[Ordering]:
        return omega([order], ())

    def sort_state(
        self, order: Ordering, held: Sequence[FDSet]
    ) -> frozenset[Ordering]:
        state = self.produced_state(order)
        for fdset in held:
            state = self.apply(state, fdset)
        return state

    def apply(self, state: frozenset[Ordering], fdset: FDSet) -> frozenset[Ordering]:
        if not fdset.items:
            return state
        return omega(state, [fdset])

    def satisfies(self, state: frozenset[Ordering], order: Ordering) -> bool:
        return order in state

    def plan_key(self, state: frozenset[Ordering]) -> Hashable:
        return state

    def state_bytes(self, state: frozenset[Ordering]) -> int:
        return sum(4 * len(o) for o in state)
