"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``q8``                 — TPC-R Q8: preparation table + Simmen-vs-FSM plan
                           generation summary (Sections 6.2 / 7);
* ``plan --catalog tpch "SELECT ..."``
                         — parse, bind, optimize, and explain a query;
* ``prepare --catalog tpch "SELECT ..."``
                         — show the preparation phase for a query: interesting
                           orders, FD sets, NFSM/DFSM sizes; ``--store DIR``
                           additionally persists the prepared machine as an
                           on-disk artifact for later warm starts;
* ``warm --artifacts DIR``
                         — pre-build the preparation artifacts for a whole
                           workload into a store directory, so later
                           ``batch``/``serve`` runs (any process) start warm;
* ``sweep [--max-n N]``  — a miniature Figure 13 sweep;
* ``run --catalog tpch "SELECT ..."``
                         — optimize **and execute** a query on synthetic
                           catalog-driven data: prints the explain-analyze
                           tree (actual rows/batches and sort markers) and
                           wall time.  ``--engine`` picks the execution
                           engine (``both`` runs the reference row engine
                           and the vectorized engine, ``all`` every engine
                           in the registry — serial and parallel; either
                           checks the results agree and reports the
                           speedups); ``--rows`` / ``--scale`` size the
                           dataset, ``--batch-size`` tunes the pipeline,
                           ``--workers N`` runs morsel-parallel execution;
* ``batch``              — optimize a whole workload and report cache
                           statistics (cold/warm passes via ``--passes``);
                           ``--workers N`` shards it across a
                           :class:`SessionPool`, ``--mode process`` runs the
                           cold batch on a process pool; ``--artifacts DIR``
                           reads/writes the persistent preparation store;
* ``serve``              — serve plans with warm caches.  Without ``--port``:
                           a line-oriented stdin loop (``\\stats`` prints
                           counters, ``\\quit`` exits).  With ``--port P``:
                           an asyncio line-protocol server answering
                           concurrent clients, sharded over ``--workers N``
                           sessions — and with ``--procs N`` routed across N
                           worker *processes* (consistent-hash by template
                           fingerprint).  ``--max-pending`` / ``--quota-*``
                           bound the offered load with structured
                           ``REJECTED(reason)`` replies; SIGINT/SIGTERM
                           drain gracefully;
* ``loadtest``           — drive a serving frontend with Zipf-skewed
                           per-client SQL streams, report p50/p99 latency
                           and plans/sec, journal every request/response
                           as JSONL (``--journal``), and optionally replay
                           the journal bit-for-bit (``--replay-check``).
"""

from __future__ import annotations

import argparse
import sys

from .bench import format_table, timed
from .catalog.schema import Catalog, simple_table
from .exec.engine import ENGINES
from .catalog.tpch import tpch_catalog
from .core.optimizer import NO_PRUNING, BuilderOptions, OrderOptimizer
from .plangen import (
    DPSUB_MAX_N,
    ENUMERATORS,
    FsmBackend,
    PlanGenConfig,
    PlanGenerator,
    SimmenBackend,
)
from .query.analyzer import analyze
from .query.sql import sql_to_query
from .service import (
    AdmissionController,
    OptimizationSession,
    Quota,
    SessionConfig,
    SessionPool,
    make_frontend,
    process_batch,
    run_server,
)
from .workloads import (
    ALL_TPCH_QUERIES,
    GeneratorConfig,
    q8_order_info,
    q8_query,
    random_join_query,
    replay_journal,
    run_load,
    skewed_sql_streams,
    template_workload,
)


def demo_catalog() -> Catalog:
    """The Section 6.1 persons/jobs schema."""
    return (
        Catalog()
        .add(simple_table("persons", ["pid", "name", "jobid"], 50_000))
        .add(simple_table("jobs", ["id", "salary"], 1_000, clustered_on="id"))
    )


CATALOGS = {"tpch": tpch_catalog, "demo": demo_catalog}


def _resolve_catalog(name: str) -> Catalog:
    try:
        return CATALOGS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown catalog {name!r}; available: {', '.join(sorted(CATALOGS))}"
        ) from None


def cmd_q8(_: argparse.Namespace) -> int:
    info = q8_order_info()
    print("Q8 preparation (Section 6.2):")
    for label, options in (("w/o pruning", NO_PRUNING), ("with pruning", BuilderOptions())):
        stats = OrderOptimizer.prepare(info.interesting, info.fdsets, options).stats
        print(
            f"  {label:>13}: NFSM {stats.nfsm_nodes:>3} nodes, DFSM "
            f"{stats.dfsm_states:>3} states, {stats.preparation_ms:7.2f} ms, "
            f"{stats.precomputed_bytes} bytes"
        )
    print("\nQ8 plan generation (Section 7):")
    spec = q8_query()
    for backend in (SimmenBackend(), FsmBackend()):
        result = PlanGenerator(spec, backend).run()
        stats = result.stats
        print(
            f"  {backend.name:>7}: {stats.time_ms:8.1f} ms, "
            f"{stats.plans_created:>6} plans, {stats.us_per_plan:6.2f} us/plan, "
            f"{stats.total_order_bytes / 1024:7.2f} KB, "
            f"cost {result.best_plan.cost:,.0f}"
        )
    return 0


def _materialization_note(stats) -> str:
    """Human-readable states-materialized summary of a plan-gen run."""
    if stats.states_total is not None:
        return f"{stats.states_materialized}/{stats.states_total} DFSM state(s)"
    return f"{stats.states_materialized} DFSM state(s) materialized on demand"


def cmd_plan(args: argparse.Namespace) -> int:
    catalog = _resolve_catalog(args.catalog)
    spec = sql_to_query(args.sql, catalog)
    config = PlanGenConfig(
        enumerator=args.enumerator,
        enable_cross_products=args.cross_products,
        enable_aggregation=True,
    )
    backend = FsmBackend(prepare_mode=args.prepare)
    result = PlanGenerator(spec, backend, config=config).run()
    # Report the mode that actually built the component — a state-cap
    # fallback can turn a requested eager preparation into a lazy one.
    built_mode = backend.optimizer.stats.mode if backend.optimizer else args.prepare
    print(spec.describe())
    print()
    print(result.best_plan.explain())
    print(
        f"\n{result.stats.plans_created} plans generated in "
        f"{result.stats.time_ms:.1f} ms "
        f"({result.stats.enumerator} enumeration, "
        f"{result.stats.pairs_visited} pair(s) visited, "
        f"{built_mode} preparation: {_materialization_note(result.stats)})"
    )
    return 0


def cmd_prepare(args: argparse.Namespace) -> int:
    catalog = _resolve_catalog(args.catalog)
    spec = sql_to_query(args.sql, catalog)
    info = analyze(spec, include_tested_selections=True, include_groupings=True)
    print("interesting orders:")
    for order in info.interesting.produced:
        print(f"  produced: {order!r}")
    for order in info.interesting.tested:
        print(f"  tested:   {order!r}")
    for grouping in info.interesting.groupings_tested:
        print(f"  grouping: {grouping!r}")
    print("FD sets:")
    for fdset in info.fdsets:
        print(f"  {fdset}")
    optimizer = OrderOptimizer.prepare(
        info.interesting, info.fdsets, mode=args.prepare
    )
    stats = optimizer.stats
    print(
        f"\nNFSM {stats.nfsm_nodes} nodes -> DFSM {stats.dfsm_states} states "
        f"({stats.mode} mode), "
        f"{stats.preparation_ms:.2f} ms, {stats.precomputed_bytes} bytes, "
        f"{stats.pruned_fd_items} FD item(s) pruned"
    )
    stages = ", ".join(
        f"{name} {ms:.2f}" for name, ms in stats.stage_ms.items()
    )
    print(f"stage timings (ms): {stages}")
    if args.store:
        from .service import ArtifactStore

        store = ArtifactStore(args.store)
        path = store.save(optimizer)
        if path is None:  # pragma: no cover - needs an unwritable store
            print(f"artifact: save into {store.directory} FAILED")
            return 1
        print(f"artifact: stored {path.name} ({path.stat().st_size} bytes)")
    return 0


def cmd_warm(args: argparse.Namespace) -> int:
    """Pre-pay the one-time preparation cost for a workload, on disk.

    Optimizes every workload query through a session wired to the artifact
    store, so each distinct preparation fingerprint ends up persisted.  A
    later ``batch``/``serve`` (any process) pointed at the same directory
    warm-loads the finished machines instead of determinizing.
    """
    specs = _batch_workload(args)
    session = OptimizationSession(config=SessionConfig(artifact_dir=args.artifacts))
    with timed() as sw:
        session.optimize_batch(specs)
    stats = session.statistics()
    store = session.artifact_store
    print(
        f"warmed {len(specs)} query(ies) ({args.workload}) into "
        f"{store.directory} in {sw.ms:.1f} ms"
    )
    print(
        f"artifacts: {stats.artifact_saves} stored, "
        f"{stats.artifact_hits} already warm; {len(store)} on disk"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .exec import (
        default_worker_count,
        generate_dataset,
        parallel_engine_name,
        render_analyze,
        resolve_engine_name,
        schema_dtype_hints,
    )

    catalog = _resolve_catalog(args.catalog)
    spec = sql_to_query(args.sql, catalog)
    session = OptimizationSession(
        catalog, config=SessionConfig(batch_size=args.batch_size)
    )
    dataset = generate_dataset(
        spec,
        rows_per_table=args.rows,
        scale=args.scale,
        seed=args.seed,
    )
    print(spec.describe())
    print(f"dataset: {dataset.row_count()} row(s) over {len(dataset.tables)} relation(s)")
    # --workers left unset defers to REPRO_EXEC_WORKERS (default 1), so
    # the env knob upgrades the CLI exactly like it does session defaults.
    run_workers = (
        args.workers if args.workers is not None else default_worker_count()
    )
    if args.engine == "both":
        engines = ("row", "vector")
    elif args.engine == "all":
        # Enumerate the ENGINES registry, not a hard-coded list, so new
        # engines join the differential check automatically.
        # resolve_engine_name applies the NumPy fallback, and dict keys
        # dedupe it: without NumPy, "all" is row + vector + parallel-vector.
        engines = tuple(
            dict.fromkeys(resolve_engine_name(name) for name in ENGINES)
        )
    else:
        # --workers above 1 upgrades a serial columnar engine to its
        # morsel-parallel counterpart (row stays the serial oracle).
        engines = (parallel_engine_name(args.engine, run_workers),)
    # Optimize once and warm the dataset's representations up front: every
    # timed block below hits the plan cache and a ready representation, so
    # the per-engine timings (and the speedups) measure execution only.
    session.optimize(spec)
    dataset.rows()
    if any(name.endswith("numpy") for name in engines):
        for alias in dataset.tables:
            dataset.array_batch(alias, hints=schema_dtype_hints(spec, alias))
    timings: dict[str, float] = {}
    results = {}
    for engine in engines:
        # In the differential modes the serial engines stay pinned at one
        # worker: the whole point is comparing them against the parallel
        # engines running with --workers.
        workers = run_workers if engine.startswith("parallel-") else 1
        label = engine if workers <= 1 else f"{engine} workers={workers}"
        with timed() as sw:
            execution = session.execute(
                spec, data=dataset, engine=engine, workers=workers
            )
        timings[engine] = sw.ms
        results[engine] = execution
        print()
        print(render_analyze(execution, header=f"explain analyze ({label}):"))
        print(f"-- {sw.ms:.1f} ms")
    if len(engines) > 1:
        reference = results[engines[0]]
        diverged = [
            name
            for name in engines[1:]
            if results[name].multiset() != reference.multiset()
        ]
        speedups = ", ".join(
            f"{name} speedup "
            + (
                f"{timings[engines[0]] / timings[name]:.1f}x"
                if timings[name] > 0.0
                else "inf"  # this engine's pass was below timer resolution
            )
            for name in engines[1:]
        )
        if diverged:  # pragma: no cover - differential guard
            print(
                f"\nengines DISAGREE ({', '.join(diverged)} diverged from "
                f"{engines[0]}; {reference.row_count} row(s) expected)"
            )
            return 1
        print(
            f"\nengines agree ({reference.row_count} row(s)); {speedups}"
        )
    return 0


def _sweep_topologies(args: argparse.Namespace) -> int:
    """Topology × size × enumerator sweep (the DPccp scaling story)."""
    from .workloads import topology_query

    topologies = [t.strip() for t in args.topologies.split(",") if t.strip()]
    sizes = [int(s) for s in args.sizes.split(",")]
    enumerators = [e.strip() for e in args.enumerators.split(",") if e.strip()]
    print(
        f"{'topology':>8} {'n':>3} {'enumerator':>10} {'ms':>9} "
        f"{'#plans':>8} {'#pairs':>8} {'cost':>14}"
    )
    for topology in topologies:
        for n in sizes:
            if topology == "cycle" and n < 3:
                continue
            spec = topology_query(topology, n, seed=args.seed)
            for enumerator in enumerators:
                if enumerator == "dpsub" and n > DPSUB_MAX_N:
                    print(
                        f"{topology:>8} {n:>3} {enumerator:>10} "
                        f"{'(skipped: n > %d)' % DPSUB_MAX_N:>42}"
                    )
                    continue
                result = PlanGenerator(
                    spec,
                    FsmBackend(),
                    config=PlanGenConfig(enumerator=enumerator),
                ).run()
                stats = result.stats
                # stats.enumerator is the *resolved* name: "auto" rows show
                # which strategy actually ran at this size.
                print(
                    f"{topology:>8} {n:>3} {stats.enumerator:>10} "
                    f"{stats.time_ms:>9.1f} {stats.plans_created:>8} "
                    f"{stats.pairs_visited:>8} {result.best_plan.cost:>14,.0f}"
                )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.topologies:
        return _sweep_topologies(args)
    print(f"{'n':>3} {'edges':>6} {'simmen ms':>10} {'fsm ms':>8} {'%t':>6} {'%plans':>7}")
    for extra, label in ((0, "n-1"), (1, "n+0"), (2, "n+1")):
        for n in range(5, args.max_n + 1):
            s_t = f_t = s_p = f_p = 0.0
            for seed in range(args.seeds):
                spec = random_join_query(
                    GeneratorConfig(n_relations=n, n_edges=n - 1 + extra, seed=seed)
                )
                simmen = PlanGenerator(spec, SimmenBackend()).run()
                fsm = PlanGenerator(spec, FsmBackend()).run()
                s_t += simmen.stats.time_ms
                f_t += fsm.stats.time_ms
                s_p += simmen.stats.plans_created
                f_p += fsm.stats.plans_created
            print(
                f"{n:>3} {label:>6} {s_t/args.seeds:>10.1f} {f_t/args.seeds:>8.1f} "
                f"{s_t/f_t:>6.2f} {s_p/f_p:>7.2f}"
            )
    return 0


def _batch_workload(args: argparse.Namespace) -> list:
    if args.workload == "tpch":
        return [build() for build in ALL_TPCH_QUERIES.values()]
    return template_workload(
        n_templates=args.templates,
        repeats=args.repeats,
        base_config=GeneratorConfig(n_relations=args.relations),
        seed=args.seed,
    )


def _cmd_batch_processes(args: argparse.Namespace, specs: list, config) -> int:
    """The ``--mode process`` path: every pass is a cold process-pool batch."""
    from .service import SessionStatistics

    totals = SessionStatistics()
    rows = []
    for pass_no in range(1, args.passes + 1):
        with timed() as sw:
            results, stats = process_batch(
                specs, workers=args.workers, config=config
            )
        totals = totals.add(stats)
        generated = sum(r.stats.plans_created for r in results)
        rows.append(
            (
                pass_no,
                len(results),
                f"{sw.ms:.1f}",
                stats.prepared.hits,
                stats.prepared.misses,
                stats.plans.hits,
                f"{generated:,}",
            )
        )
    print(
        f"workload: {len(specs)} query(ies) ({args.workload}), "
        f"{args.passes} pass(es), {args.workers} worker process(es) "
        "(workers are ephemeral: every pass is cold)"
    )
    print(
        format_table(
            ("pass", "queries", "ms", "prep hits", "prep miss", "plan hits", "#plans"),
            rows,
        )
    )
    print()
    print(totals.describe())
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    specs = _batch_workload(args)
    config = SessionConfig(
        prepared_cache_size=0 if args.no_cache else 128,
        plan_cache_size=0 if args.no_cache else 512,
        **({"artifact_dir": args.artifacts} if args.artifacts else {}),
    )
    if args.mode == "process":
        # Even with one worker: process mode means ephemeral cold sessions,
        # not the warm thread path (process_batch handles workers=1 itself).
        return _cmd_batch_processes(args, specs, config)
    # Thread path: a SessionPool behaves exactly like a session (that is the
    # point); with one worker, use the session itself.
    if args.workers > 1:
        engine = SessionPool(n_shards=args.workers, config=config)
    else:
        engine = OptimizationSession(config=config)
    rows = []
    # Results seen in earlier passes came from the plan cache; count a
    # result's plans_created only the first time we meet it.  Keyed by id
    # with the object pinned as the value so ids cannot be recycled.
    served: dict[int, object] = {}
    for pass_no in range(1, args.passes + 1):
        before = engine.statistics()
        with timed() as sw:
            results = engine.optimize_batch(specs)
        after = engine.statistics()
        generated = sum(
            r.stats.plans_created for r in results if id(r) not in served
        )
        served.update((id(r), r) for r in results)
        rows.append(
            (
                pass_no,
                len(results),
                f"{sw.ms:.1f}",
                after.prepared.hits - before.prepared.hits,
                after.prepared.misses - before.prepared.misses,
                after.plans.hits - before.plans.hits,
                f"{generated:,}",
            )
        )
    workers = f", {args.workers} shard(s)" if args.workers > 1 else ""
    print(
        f"workload: {len(specs)} query(ies) ({args.workload}), "
        f"{args.passes} pass(es){workers}"
    )
    print(
        format_table(
            ("pass", "queries", "ms", "prep hits", "prep miss", "plan hits", "#plans"),
            rows,
        )
    )
    print()
    print(engine.statistics().describe())
    if isinstance(engine, SessionPool):
        engine.close()
    return 0


def _admission_from_args(args: argparse.Namespace) -> "AdmissionController | None":
    """Admission control from CLI flags, or None when nothing was bounded."""
    if args.max_pending is None and args.quota_burst is None:
        return None
    quota = None
    if args.quota_burst is not None:
        quota = Quota(burst=args.quota_burst, per_second=args.quota_rate)
    return AdmissionController(
        max_pending=args.max_pending if args.max_pending is not None else 256,
        quota=quota,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    catalog = _resolve_catalog(args.catalog)
    config = SessionConfig(
        **({"artifact_dir": args.artifacts} if args.artifacts else {})
    )
    if args.port is not None:
        frontend = run_server(
            catalog,
            host=args.host,
            port=args.port,
            n_shards=args.workers,
            procs=args.procs,
            config=config,
            admission=_admission_from_args(args),
        )
        print(frontend.describe())
        return 0
    pool = SessionPool(catalog, n_shards=args.workers, config=config)
    print(
        f"serving catalog {args.catalog!r} with {args.workers} shard(s) — "
        "one SQL statement per line, \\stats for cache counters, "
        "\\quit (or EOF) to exit"
    )
    for line in sys.stdin:
        line = line.strip().rstrip(";")
        if not line:
            continue
        if line in ("\\quit", "\\q"):
            break
        if line == "\\stats":
            print(pool.statistics().describe())
            continue
        before = pool.statistics()
        try:
            with timed() as sw:
                result = pool.optimize(sql_to_query(line, catalog))
        except Exception as error:  # serving must survive a bad query
            print(f"error: {error}")
            continue
        after = pool.statistics()
        if after.plans.hits > before.plans.hits:
            source = "plan cache"
        elif after.prepared.hits > before.prepared.hits:
            source = "prepared cache"
        else:
            source = "cold"
        print(result.best_plan.explain())
        print(
            f"-- cost {result.best_plan.cost:,.0f}, "
            f"{result.stats.plans_created} plans, {sw.ms:.1f} ms [{source}]"
        )
    print(pool.statistics().describe())
    pool.close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a frontend with skewed client streams; journal and report."""
    import json as json_module
    from pathlib import Path

    catalog, streams = skewed_sql_streams(
        args.clients,
        args.queries,
        n_templates=args.templates,
        skew=args.skew,
        repeats=args.repeats,
        base_config=GeneratorConfig(n_relations=args.relations),
        seed=args.seed,
    )
    config = SessionConfig(
        **({"artifact_dir": args.artifacts} if args.artifacts else {})
    )
    frontend = make_frontend(
        catalog,
        procs=args.procs,
        n_shards=args.workers,
        config=config,
        admission=_admission_from_args(args),
    )
    try:
        report = run_load(frontend, streams, journal_path=args.journal)
    finally:
        frontend.close()
    print(
        f"loadtest: {args.clients} client(s) x {args.queries} request(s), "
        f"{args.procs} process(es) x {args.workers} shard(s)"
    )
    print(report.describe())
    print()
    print(frontend.describe())
    if args.json:
        Path(args.json).write_text(
            json_module.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    offered = args.clients * args.queries
    if report.requests != offered:  # pragma: no cover - the zero-dropped guard
        print(f"DROPPED {offered - report.requests} request(s) without a reply")
        return 1
    if args.replay_check:
        if not args.journal:
            raise SystemExit("--replay-check needs --journal")
        # Replay against a fresh single-process, admission-free frontend:
        # the recorded ok/error responses must reproduce bit-for-bit.
        with make_frontend(
            catalog, procs=1, n_shards=args.workers, config=config
        ) as replayer:
            replay = replay_journal(replayer, args.journal)
        print(f"replay: {replay.describe()}")
        if not replay.exact:
            for mismatch in replay.mismatches:
                print(f"  {mismatch}")
            return 1
    return 0


def _add_admission_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--max-pending", type=int, default=None,
        help="bound on globally queued requests (beyond it: "
        "REJECTED(queue_full))",
    )
    command.add_argument(
        "--quota-burst", type=int, default=None,
        help="per-client token-bucket burst (beyond it: REJECTED(quota))",
    )
    command.add_argument(
        "--quota-rate", type=float, default=64.0,
        help="per-client token refill rate per second (with --quota-burst)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Order-optimization framework reproduction (Neumann & Moerkotte, ICDE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("q8", help="run the TPC-R Q8 experiments").set_defaults(fn=cmd_q8)

    plan = sub.add_parser("plan", help="optimize a SQL query and print the plan")
    plan.add_argument("sql")
    plan.add_argument("--catalog", default="demo", help="demo | tpch")
    plan.add_argument(
        "--enumerator", default="auto", choices=("auto", *sorted(ENUMERATORS)),
        help="join-enumeration strategy (auto: DPccp, or greedy past the "
        "size threshold)",
    )
    plan.add_argument(
        "--cross-products", action="store_true",
        help="plan disconnected join graphs with cross-product joins "
        "instead of rejecting them",
    )
    plan.add_argument(
        "--prepare", default="eager", choices=("eager", "lazy"),
        help="preparation mode: eager precomputes the full DFSM (the "
        "paper), lazy materializes states on demand during plan generation",
    )
    plan.set_defaults(fn=cmd_plan)

    prepare = sub.add_parser("prepare", help="show the preparation phase for a SQL query")
    prepare.add_argument("sql")
    prepare.add_argument("--catalog", default="demo", help="demo | tpch")
    prepare.add_argument(
        "--prepare", default="eager", choices=("eager", "lazy"),
        help="preparation mode to run and report (lazy reports only the "
        "states materialized by preparation itself — the start state)",
    )
    prepare.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist the prepared machine into this artifact-store "
        "directory (later sessions pointed at it warm-start)",
    )
    prepare.set_defaults(fn=cmd_prepare)

    warm = sub.add_parser(
        "warm",
        help="pre-build the preparation artifacts for a workload into a "
        "store directory",
    )
    warm.add_argument(
        "--artifacts", required=True, metavar="DIR",
        help="artifact-store directory to populate",
    )
    warm.add_argument(
        "--workload", default="random", choices=("random", "tpch"),
        help="random: template-repeated join queries; tpch: the TPC-H suite",
    )
    warm.add_argument("--templates", type=int, default=4, help="random: #templates")
    warm.add_argument(
        "--repeats", type=int, default=1,
        help="random: constant-variants per template (1 is enough — "
        "variants share one artifact)",
    )
    warm.add_argument(
        "--relations", type=int, default=5, help="random: relations per template"
    )
    warm.add_argument("--seed", type=int, default=0)
    warm.set_defaults(fn=cmd_warm)

    run = sub.add_parser(
        "run",
        help="optimize a SQL query and execute the plan on synthetic data",
    )
    run.add_argument("sql")
    run.add_argument("--catalog", default="demo", help="demo | tpch")
    run.add_argument(
        "--engine", default="vector",
        choices=(*ENGINES, "both", "all"),
        help="execution engine: the vectorized streaming engine (default), "
        "the row-dict reference oracle, the NumPy-accelerated backend "
        "(falls back to vector without the [speed] extra), their "
        "morsel-parallel counterparts (parallel-*), both (row+vector "
        "differential check + speedup report), or all (differential check "
        "across every registered engine)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="morsel workers for plan execution (default: REPRO_EXEC_WORKERS "
        "or 1): above 1 a serial columnar --engine upgrades to its parallel "
        "counterpart; in --engine both/all only the parallel engines use "
        "them",
    )
    run.add_argument(
        "--rows", type=int, default=None,
        help="uniform rows per relation (default: catalog-driven sizes, "
        "scaled so the largest relation gets 1000 rows)",
    )
    run.add_argument(
        "--scale", type=float, default=None,
        help="scale catalog cardinalities instead of a uniform row count",
    )
    run.add_argument(
        "--batch-size", type=int, default=1024,
        help="target rows per batch of the vectorized pipeline",
    )
    run.add_argument("--seed", type=int, default=0, help="data generator seed")
    run.set_defaults(fn=cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="miniature Figure 13 sweep, or (with --topologies) a "
        "topology x enumerator sweep",
    )
    sweep.add_argument(
        "--max-n", type=int, default=7, help="Figure 13 mode: largest n"
    )
    sweep.add_argument(
        "--seeds", type=int, default=3,
        help="Figure 13 mode: queries averaged per configuration",
    )
    sweep.add_argument(
        "--topologies", default=None,
        help="comma-separated explicit shapes (chain,star,cycle,clique,"
        "grid): sweep topology x size x enumerator instead of Figure 13",
    )
    sweep.add_argument(
        "--sizes", default="4,8,12",
        help="topology mode: comma-separated relation counts",
    )
    sweep.add_argument(
        "--enumerators", default="dpsub,dpccp,greedy",
        help="topology mode: comma-separated strategies "
        f"(dpsub is skipped past n={DPSUB_MAX_N})",
    )
    sweep.add_argument(
        "--seed", type=int, default=0,
        help="topology mode: statistics seed of the generated queries",
    )
    sweep.set_defaults(fn=cmd_sweep)

    batch = sub.add_parser(
        "batch", help="optimize a workload through a session, report cache stats"
    )
    batch.add_argument(
        "--workload", default="random", choices=("random", "tpch"),
        help="random: template-repeated join queries; tpch: the TPC-H suite",
    )
    batch.add_argument("--templates", type=int, default=4, help="random: #templates")
    batch.add_argument(
        "--repeats", type=int, default=5, help="random: constant-variants per template"
    )
    batch.add_argument(
        "--relations", type=int, default=5, help="random: relations per template"
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--passes", type=int, default=2, help="workload passes (pass 2+ is warm)"
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable both caches (baseline)"
    )
    batch.add_argument(
        "--workers", type=int, default=1,
        help="shard the workload across N sessions (thread mode) or N "
        "worker processes (process mode)",
    )
    batch.add_argument(
        "--mode", default="thread", choices=("thread", "process"),
        help="thread: SessionPool shards with warm caches; process: "
        "ProcessPoolExecutor for CPU-bound cold batches",
    )
    batch.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="persistent preparation-artifact store: warm-load prepared "
        "machines from here and save cold builds back (see `warm`)",
    )
    batch.set_defaults(fn=cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="serve plans with warm caches (stdin loop, or a network "
        "server with --port)",
    )
    serve.add_argument("--catalog", default="demo", help="demo | tpch")
    serve.add_argument(
        "--workers", type=int, default=4,
        help="number of session shards serving the traffic",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="serve an asyncio line protocol on this port instead of stdin",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="persistent preparation-artifact store shared by the shards "
        "(restarts warm-load instead of re-preparing; see `warm`)",
    )
    serve.add_argument(
        "--procs", type=int, default=1,
        help="worker processes behind the network server (>1 routes by "
        "preparation fingerprint over a consistent-hash ring; --port only)",
    )
    _add_admission_flags(serve)
    serve.set_defaults(fn=cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive a serving frontend with Zipf-skewed client streams; "
        "optionally journal to JSONL and replay-check determinism",
    )
    loadtest.add_argument(
        "--procs", type=int, default=1,
        help="worker processes (1 = in-process pool, >1 = ShardRouter)",
    )
    loadtest.add_argument(
        "--workers", type=int, default=2,
        help="session shards per process",
    )
    loadtest.add_argument("--clients", type=int, default=4, help="#client streams")
    loadtest.add_argument(
        "--queries", type=int, default=25, help="requests per client"
    )
    loadtest.add_argument("--templates", type=int, default=4, help="#templates")
    loadtest.add_argument(
        "--repeats", type=int, default=8,
        help="constant-variants per template (cache-hit rate knob)",
    )
    loadtest.add_argument(
        "--relations", type=int, default=5, help="relations per template"
    )
    loadtest.add_argument(
        "--skew", type=float, default=1.0, help="Zipf template-popularity skew"
    )
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write every request/response as a JSONL journal record",
    )
    loadtest.add_argument(
        "--replay-check", action="store_true",
        help="re-drive the journal against a fresh 1-proc frontend and "
        "require bit-for-bit identical replies (needs --journal)",
    )
    loadtest.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the load report (latency percentiles, throughput) as JSON",
    )
    loadtest.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="shared preparation-artifact store for warm starts",
    )
    _add_admission_flags(loadtest)
    loadtest.set_defaults(fn=cmd_loadtest)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
