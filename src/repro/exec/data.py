"""Synthetic data generation for executing query plans.

Rows are ``dict[Attribute, value]`` keyed by *alias-qualified* attributes,
matching the plan generator's world.  Join columns draw from a shared small
integer domain so equi-joins actually produce matches; other columns draw
from per-column domains (duplicates are intentional — orderings must hold
under ties).
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import TYPE_CHECKING, Dict, List

from ..core.attributes import Attribute
from ..query.predicates import EqualsConstant, RangePredicate
from ..query.query import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle (batch.py imports Row)
    from .arraybatch import ArrayBatch
    from .batch import Batch

Row = Dict[Attribute, object]


def schema_dtype_hints(spec: QuerySpec, alias: str) -> dict[Attribute, str]:
    """Catalog-declared dtype hints for one relation's attributes.

    A :class:`~repro.catalog.schema.Column` may pin its array dtype
    (``"int"`` / ``"str"`` / ``"float"``); columns without a declaration are
    omitted, and :func:`~repro.exec.arraybatch.infer_array` falls back to
    scanning the values.  Hints matter most for *empty* tables, where value
    scanning has nothing to look at and would produce ``object`` columns.
    """
    table = spec.table_of(alias)
    return {
        Attribute(column.name, alias): column.dtype
        for column in table.columns
        if column.dtype is not None
    }


def generate_query_data(
    spec: QuerySpec,
    *,
    rows_per_table: int = 30,
    domain: int = 8,
    seed: int = 0,
) -> dict[str, List[Row]]:
    """Random rows for every relation of a query.

    ``domain`` bounds the value range of join columns; with
    ``rows_per_table`` comfortably above it, joins have plenty of matches
    and plenty of duplicate keys (the interesting case for orderings).
    """
    rng = random.Random(seed)
    data: dict[str, List[Row]] = {}
    for ref in spec.relations:
        table = spec.catalog.table(ref.table)
        rows: List[Row] = []
        for _ in range(rows_per_table):
            row: Row = {}
            for column in table.columns:
                attribute = Attribute(column.name, ref.alias)
                row[attribute] = rng.randrange(domain)
            rows.append(row)
        data[ref.alias] = rows
    return data


class Dataset:
    """Per-alias base tables in columnar form, with a cached row view.

    The canonical storage is one :class:`~repro.exec.batch.Batch` per
    relation alias — the vectorized engine scans it directly.  The row
    engine (the reference oracle) asks for :meth:`rows`, which transposes
    on first use and caches the result; the NumPy engine asks for
    :meth:`array_batch`, which converts to typed arrays on first use and
    caches likewise — so all engines always execute over *identical* data.
    """

    def __init__(self, tables: dict[str, "Batch"]) -> None:
        self.tables = tables
        self._rows: dict[str, List[Row]] | None = None
        self._arrays: dict[str, "ArrayBatch"] = {}
        self._convert_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks don't pickle; drop the lock (and the caches — cheaper to
        # re-derive in the receiving process than to ship twice) so a
        # dataset can cross a process-pool boundary.
        return {"tables": self.tables}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["tables"])

    @classmethod
    def from_rows(cls, data: dict[str, List[Row]]) -> "Dataset":
        from .batch import Batch

        dataset = cls({alias: Batch.from_rows(rows) for alias, rows in data.items()})
        dataset._rows = {alias: list(rows) for alias, rows in data.items()}
        return dataset

    def batch(self, alias: str) -> "Batch":
        try:
            return self.tables[alias]
        except KeyError:
            raise KeyError(f"dataset has no relation {alias}") from None

    def array_batch(
        self, alias: str, hints: dict[Attribute, str] | None = None
    ) -> "ArrayBatch":
        """The typed NumPy view of one relation, converted once and cached.

        The NumPy engine scans this directly, so dataset→array conversion
        is paid once per relation, not per execution — the three engines
        then run over one identical dataset in three representations
        (arrays here, list columns via :meth:`batch`, dicts via
        :meth:`rows`).  ``hints`` are catalog dtype declarations
        (:func:`schema_dtype_hints`); the first conversion wins the cache.

        Safe under concurrent first-touch: two pool-shard threads asking
        for the same alias at once serialize on a per-dataset lock, so the
        conversion runs once and both get the same object (an unguarded
        check-then-set double-converted — wasted work, and two engines
        could end up scanning two distinct array copies of one relation).
        """
        cached = self._arrays.get(alias)
        if cached is None:
            with self._convert_lock:
                cached = self._arrays.get(alias)
                if cached is None:
                    from .arraybatch import ArrayBatch

                    cached = ArrayBatch.from_batch(self.batch(alias), hints)
                    self._arrays[alias] = cached
        return cached

    def rows(self) -> dict[str, List[Row]]:
        if self._rows is None:
            self._rows = {
                alias: batch.to_rows() for alias, batch in self.tables.items()
            }
        return self._rows

    def row_count(self) -> int:
        return sum(batch.length for batch in self.tables.values())

    def __repr__(self) -> str:
        return f"Dataset({self.row_count()} rows, {len(self.tables)} relations)"


def as_dataset(data: "Dataset | dict[str, List[Row]]") -> Dataset:
    """Coerce either data representation into a :class:`Dataset`."""
    if isinstance(data, Dataset):
        return data
    return Dataset.from_rows(data)


def _column_seed(seed: int, alias: str, column: str) -> int:
    """A stable per-column RNG seed.  ``hash()`` is randomized per process,
    so determinism needs an explicit digest; crc32 is plenty."""
    return zlib.crc32(f"{seed}:{alias}:{column}".encode()) ^ (seed << 16)


def _join_components(spec: QuerySpec) -> dict[Attribute, frozenset[Attribute]]:
    """Connected components of attributes under the query's join predicates.

    Every attribute of a component must draw values from one shared pool,
    or equi-joins between them could never match (worse: a string pool on
    one side of a merge join against integers on the other would not even
    compare).  Selection constants therefore taint their whole component.
    """
    parent: dict[Attribute, Attribute] = {}

    def find(a: Attribute) -> Attribute:
        parent.setdefault(a, a)
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for join in spec.joins:
        ra, rb = find(join.left), find(join.right)
        if ra != rb:
            parent[ra] = rb
    components: dict[Attribute, set[Attribute]] = {}
    for attribute in parent:
        components.setdefault(find(attribute), set()).add(attribute)
    frozen = {root: frozenset(members) for root, members in components.items()}
    return {a: frozen[find(a)] for a in parent}


def _selection_constants(spec: QuerySpec) -> dict[Attribute, list[object]]:
    constants: dict[Attribute, list[object]] = {}
    for selection in spec.selections:
        if isinstance(selection, EqualsConstant):
            constants.setdefault(selection.attribute, []).append(selection.value)
        elif isinstance(selection, RangePredicate):
            values = [selection.value]
            if selection.upper_value is not None:
                values.append(selection.upper_value)
            constants.setdefault(selection.attribute, []).extend(values)
    return constants


def _string_pool(constants: list[str]) -> list[str]:
    """A value pool around string selection constants.

    The constants themselves (so equality predicates hit), one value
    sorting strictly before the smallest and one strictly after the largest
    (``"!"`` < digits/letters < ``"~"`` in ASCII), so range predicates see
    rows on both sides of their bounds.
    """
    ordered = sorted(set(constants))
    return [f"!{ordered[0]}", *ordered, f"~{ordered[-1]}"]


def generate_dataset(
    spec: QuerySpec,
    *,
    rows_per_table: int | None = None,
    scale: float | None = None,
    max_rows: int = 1_000_000,
    default_domain: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Catalog-driven columnar data for every relation of a query.

    Per-relation row counts come from the catalog's statistics: each alias
    gets ``table.cardinality * scale`` rows (capped at ``max_rows``), or a
    uniform ``rows_per_table`` when given.  With neither, ``scale`` defaults
    so the *largest* relation lands on 1000 rows — small enough to execute
    any catalog out of the box, faithful to the relative sizes.

    Value domains are statistics- and predicate-aware:

    * a column with a known distinct count draws integers from
      ``[0, min(distinct, rows))`` — keys stay key-like at any scale, low-
      cardinality columns keep their duplicates; a column *without* distinct
      statistics defaults to a row-count-sized domain (key-like), or to
      ``default_domain`` when given (small domains make joins dense — the
      interesting regime for order verification under ties);
    * join-connected columns share one domain (the minimum over the
      component), so equi-joins actually match;
    * a column (or join component) carrying *string* selection constants
      draws from a pool of the constants plus values sorting strictly
      below and above them, so equality and range predicates select real,
      non-trivial subsets.

    Generation is deterministic per ``(seed, alias, column)`` — adding a
    relation or reordering columns never changes another column's data.
    """
    from .batch import Batch

    if rows_per_table is not None and scale is not None:
        raise ValueError(
            "rows_per_table and scale are mutually exclusive "
            "(uniform row count vs. catalog-proportional sizing)"
        )
    if rows_per_table is not None and rows_per_table < 0:
        raise ValueError(f"rows_per_table must be >= 0, got {rows_per_table}")
    if scale is not None and scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    cardinalities = {
        ref.alias: spec.cardinality(ref.alias) for ref in spec.relations
    }
    if rows_per_table is None and scale is None:
        scale = 1000.0 / max(cardinalities.values())

    def rows_for(alias: str) -> int:
        if rows_per_table is not None:
            return min(rows_per_table, max_rows)
        assert scale is not None
        return max(1, min(int(cardinalities[alias] * scale), max_rows))

    components = _join_components(spec)
    constants = _selection_constants(spec)

    def pool_for(attribute: Attribute, n_rows: int) -> list | int:
        """The shared value pool of an attribute: a string pool when string
        constants taint its join component, else an integer domain size.

        The integer domain is computed over the whole component — the
        minimum of every member column's distinct count (or its relation's
        *generated* row count when unknown) — so all join-connected columns
        draw from one identical range and equi-joins actually match, even
        when the joined relations are generated at very different sizes.
        """
        member_set = components.get(attribute, frozenset({attribute}))
        strings = [
            c
            for member in member_set
            for c in constants.get(member, [])
            if isinstance(c, str)
        ]
        if strings:
            return _string_pool(strings)
        domain = n_rows if default_domain is None else min(n_rows, default_domain)
        for member in member_set:
            table = spec.table_of(member.relation)
            column = table.column(member.name)
            member_rows = (
                n_rows if member is attribute else rows_for(member.relation)
            )
            if column.distinct_values is not None:
                member_rows = min(member_rows, column.distinct_values)
            domain = min(domain, member_rows)
        return max(2, domain)

    tables: dict[str, Batch] = {}
    for ref in spec.relations:
        n_rows = rows_for(ref.alias)
        table = spec.catalog.table(ref.table)
        columns: dict[Attribute, list] = {}
        for column in table.columns:
            attribute = Attribute(column.name, ref.alias)
            rng = random.Random(_column_seed(seed, ref.alias, column.name))
            pool = pool_for(attribute, n_rows)
            if isinstance(pool, list):
                columns[attribute] = rng.choices(pool, k=n_rows)
            else:
                columns[attribute] = [rng.randrange(pool) for _ in range(n_rows)]
        tables[ref.alias] = Batch(columns, n_rows)
    return Dataset(tables)


def apply_constant(rows: List[Row], attribute: Attribute, value: object) -> List[Row]:
    """Filter rows to those where ``attribute == value``."""
    return [row for row in rows if row[attribute] == value]


def most_common_value(rows: List[Row], attribute: Attribute) -> object:
    """The most frequent value of a column (useful to pick selective but
    non-empty constants for ``x = const`` predicates in tests)."""
    counts: dict[object, int] = {}
    for row in rows:
        counts[row[attribute]] = counts.get(row[attribute], 0) + 1
    if not counts:
        raise ValueError("no rows")
    return max(counts.items(), key=lambda kv: kv[1])[0]
