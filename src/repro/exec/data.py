"""Synthetic data generation for executing query plans.

Rows are ``dict[Attribute, value]`` keyed by *alias-qualified* attributes,
matching the plan generator's world.  Join columns draw from a shared small
integer domain so equi-joins actually produce matches; other columns draw
from per-column domains (duplicates are intentional — orderings must hold
under ties).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core.attributes import Attribute
from ..query.query import QuerySpec

Row = Dict[Attribute, object]


def generate_query_data(
    spec: QuerySpec,
    *,
    rows_per_table: int = 30,
    domain: int = 8,
    seed: int = 0,
) -> dict[str, List[Row]]:
    """Random rows for every relation of a query.

    ``domain`` bounds the value range of join columns; with
    ``rows_per_table`` comfortably above it, joins have plenty of matches
    and plenty of duplicate keys (the interesting case for orderings).
    """
    rng = random.Random(seed)
    data: dict[str, List[Row]] = {}
    for ref in spec.relations:
        table = spec.catalog.table(ref.table)
        rows: List[Row] = []
        for _ in range(rows_per_table):
            row: Row = {}
            for column in table.columns:
                attribute = Attribute(column.name, ref.alias)
                row[attribute] = rng.randrange(domain)
            rows.append(row)
        data[ref.alias] = rows
    return data


def apply_constant(rows: List[Row], attribute: Attribute, value: object) -> List[Row]:
    """Filter rows to those where ``attribute == value``."""
    return [row for row in rows if row[attribute] == value]


def most_common_value(rows: List[Row], attribute: Attribute) -> object:
    """The most frequent value of a column (useful to pick selective but
    non-empty constants for ``x = const`` predicates in tests)."""
    counts: dict[object, int] = {}
    for row in rows:
        counts[row[attribute]] = counts.get(row[attribute], 0) + 1
    if not counts:
        raise ValueError("no rows")
    return max(counts.items(), key=lambda kv: kv[1])[0]
