"""Execution substrate: synthetic data, three execution engines (row-dict
reference oracle, vectorized streaming, and the optional NumPy-accelerated
backend), and the Section 2 order-verification predicates.

The engines share one contract (:class:`ExecutionEngine`): interpret a
:class:`~repro.plangen.plan.PlanNode` tree over a :class:`Dataset` and
return an :class:`ExecutionResult` with per-operator row/batch/sort
counters.  See :mod:`repro.exec.engine` for the contract,
:mod:`repro.exec.vectorized` for the batch operators,
:mod:`repro.exec.numpy_kernels` for the array kernels (import-guarded —
``NUMPY_AVAILABLE`` says whether the ``numpy`` engine is real or falls
back to ``vector``), :mod:`repro.exec.morsel` / :mod:`repro.exec.parallel`
for the morsel-driven parallel engines, and ``docs/ARCHITECTURE.md``
("Execution engine", "Parallel execution") for the data-flow story.
"""

from .aggregate import (
    hash_aggregate_rows,
    output_attributes,
    stream_aggregate_rows,
)
from .batch import Batch, batches_to_rows, concat_batches, rows_to_batches
from .data import (
    Dataset,
    as_dataset,
    generate_dataset,
    generate_query_data,
    most_common_value,
    schema_dtype_hints,
)
from .engine import (
    ENGINES,
    NUMPY_AVAILABLE,
    ExecutionConfig,
    ExecutionEngine,
    ExecutionResult,
    ExecutionStats,
    NodeCounters,
    NumpyEngine,
    RowEngine,
    VectorEngine,
    default_engine_name,
    default_worker_count,
    forced_sort_variant,
    make_engine,
    parallel_engine_name,
    render_analyze,
    resolve_engine_name,
)
from .executor import Executor, execute_plan
from .morsel import DEFAULT_MORSEL_SIZE
from .parallel import ParallelNumpyEngine, ParallelVectorEngine, shutdown_pools
from .iterators import (
    MergeInputNotSortedError,
    hash_join,
    merge_join,
    nested_loop_join,
    select_rows,
    sort_rows,
)
from .verify import (
    satisfied_orderings,
    satisfies_grouping,
    satisfies_ordering,
    satisfies_ordering_formal,
)

__all__ = [
    "Batch",
    "DEFAULT_MORSEL_SIZE",
    "Dataset",
    "ENGINES",
    "ExecutionConfig",
    "ExecutionEngine",
    "ExecutionResult",
    "ExecutionStats",
    "Executor",
    "MergeInputNotSortedError",
    "NUMPY_AVAILABLE",
    "NodeCounters",
    "NumpyEngine",
    "ParallelNumpyEngine",
    "ParallelVectorEngine",
    "RowEngine",
    "VectorEngine",
    "as_dataset",
    "batches_to_rows",
    "concat_batches",
    "default_engine_name",
    "default_worker_count",
    "execute_plan",
    "forced_sort_variant",
    "generate_dataset",
    "generate_query_data",
    "hash_aggregate_rows",
    "hash_join",
    "output_attributes",
    "stream_aggregate_rows",
    "make_engine",
    "merge_join",
    "most_common_value",
    "nested_loop_join",
    "parallel_engine_name",
    "render_analyze",
    "resolve_engine_name",
    "rows_to_batches",
    "satisfied_orderings",
    "shutdown_pools",
    "schema_dtype_hints",
    "satisfies_grouping",
    "satisfies_ordering",
    "satisfies_ordering_formal",
    "select_rows",
    "sort_rows",
]
