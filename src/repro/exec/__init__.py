"""Execution substrate: synthetic data, two execution engines (row-dict
reference oracle and vectorized streaming), and the Section 2
order-verification predicates.

The engines share one contract (:class:`ExecutionEngine`): interpret a
:class:`~repro.plangen.plan.PlanNode` tree over a :class:`Dataset` and
return an :class:`ExecutionResult` with per-operator row/batch/sort
counters.  See :mod:`repro.exec.engine` for the contract,
:mod:`repro.exec.vectorized` for the batch operators, and
``docs/ARCHITECTURE.md`` ("Execution engine") for the data-flow story.
"""

from .batch import Batch, batches_to_rows, concat_batches, rows_to_batches
from .data import (
    Dataset,
    as_dataset,
    generate_dataset,
    generate_query_data,
    most_common_value,
)
from .engine import (
    ENGINES,
    ExecutionConfig,
    ExecutionEngine,
    ExecutionResult,
    ExecutionStats,
    NodeCounters,
    RowEngine,
    VectorEngine,
    default_engine_name,
    forced_sort_variant,
    make_engine,
    render_analyze,
)
from .executor import Executor, execute_plan
from .iterators import (
    MergeInputNotSortedError,
    hash_join,
    merge_join,
    nested_loop_join,
    select_rows,
    sort_rows,
)
from .verify import (
    satisfied_orderings,
    satisfies_grouping,
    satisfies_ordering,
    satisfies_ordering_formal,
)

__all__ = [
    "Batch",
    "Dataset",
    "ENGINES",
    "ExecutionConfig",
    "ExecutionEngine",
    "ExecutionResult",
    "ExecutionStats",
    "Executor",
    "MergeInputNotSortedError",
    "NodeCounters",
    "RowEngine",
    "VectorEngine",
    "as_dataset",
    "batches_to_rows",
    "concat_batches",
    "default_engine_name",
    "execute_plan",
    "forced_sort_variant",
    "generate_dataset",
    "generate_query_data",
    "hash_join",
    "make_engine",
    "merge_join",
    "most_common_value",
    "nested_loop_join",
    "render_analyze",
    "rows_to_batches",
    "satisfied_orderings",
    "satisfies_grouping",
    "satisfies_ordering",
    "satisfies_ordering_formal",
    "select_rows",
    "sort_rows",
]
