"""Execution substrate: synthetic data, iterator operators, plan execution,
and the Section 2 order-verification predicates."""

from .data import generate_query_data, most_common_value
from .executor import Executor, execute_plan
from .iterators import (
    hash_join,
    merge_join,
    nested_loop_join,
    select_rows,
    sort_rows,
)
from .verify import (
    satisfied_orderings,
    satisfies_grouping,
    satisfies_ordering,
    satisfies_ordering_formal,
)

__all__ = [
    "generate_query_data",
    "most_common_value",
    "Executor",
    "execute_plan",
    "sort_rows",
    "select_rows",
    "merge_join",
    "hash_join",
    "nested_loop_join",
    "satisfies_ordering",
    "satisfies_ordering_formal",
    "satisfied_orderings",
    "satisfies_grouping",
]
