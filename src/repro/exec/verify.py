"""Order verification: the formal satisfaction condition of Section 2.

A tuple stream ``R = (t1, ..., tr)`` satisfies the logical ordering
``o = (A_o1, ..., A_om)`` iff for all ``1 <= i < j <= r``:

    (t_i.A_o1 <= t_j.A_o1)
    ∧ ∀ 1 < k <= m:  (∃ 1 <= l < k: t_i.A_ol < t_j.A_ol)
                     ∨ ((t_i.A_ok-1 = t_j.A_ok-1) ∧ (t_i.A_ok <= t_j.A_ok))

:func:`satisfies_ordering_formal` transcribes this quantifier structure
verbatim (quadratic, the executable specification);
:func:`satisfies_ordering` is the linear adjacent-pairs check.  The property
suite asserts they agree.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.attributes import Attribute
from ..core.ordering import Ordering

Row = Mapping[Attribute, object]


def satisfies_ordering(rows: Sequence[Row], order: Ordering) -> bool:
    """Linear check: lexicographic non-decreasing over adjacent rows."""
    if len(order) == 0 or len(rows) < 2:
        return True
    attrs = order.attributes
    previous = rows[0]
    for row in rows[1:]:
        for attribute in attrs:
            a, b = previous[attribute], row[attribute]
            if a < b:  # type: ignore[operator]
                break
            if a > b:  # type: ignore[operator]
                return False
        previous = row
    return True


def satisfies_ordering_formal(rows: Sequence[Row], order: Ordering) -> bool:
    """Quadratic check transcribing Section 2's condition verbatim."""
    if len(order) == 0:
        return True
    attrs = order.attributes
    m = len(attrs)
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            ti, tj = rows[i], rows[j]
            if not ti[attrs[0]] <= tj[attrs[0]]:  # type: ignore[operator]
                return False
            for k in range(1, m):
                strictly_less_before = any(
                    ti[attrs[l]] < tj[attrs[l]]  # type: ignore[operator]
                    for l in range(k)
                )
                tie_and_ordered = (
                    ti[attrs[k - 1]] == tj[attrs[k - 1]]
                    and ti[attrs[k]] <= tj[attrs[k]]  # type: ignore[operator]
                )
                if not (strictly_less_before or tie_and_ordered):
                    return False
    return True


def satisfied_orderings(
    rows: Sequence[Row],
    candidates: Sequence[Ordering],
) -> list[Ordering]:
    """Which of the candidate orderings does the stream satisfy?"""
    return [order for order in candidates if satisfies_ordering(rows, order)]


def satisfies_grouping(rows: Sequence[Row], attributes) -> bool:
    """Grouping satisfaction: equal attribute combinations are adjacent.

    ``attributes`` is any iterable of attributes (e.g. a
    :class:`repro.core.grouping.Grouping`).
    """
    attrs = tuple(attributes)
    if not attrs:
        return True
    seen: set = set()
    current = object()
    for row in rows:
        key = tuple(row[a] for a in attrs)
        if key == current:
            continue
        if key in seen:
            return False
        seen.add(key)
        current = key
    return True
