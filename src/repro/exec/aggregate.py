"""Shared aggregation machinery: accumulator states and the row-level
reference implementations of the two aggregation operators.

Every engine family computes GROUP BY results through the same accumulator
algebra defined here — the row engine directly, the vectorized and NumPy
kernels for their non-fast-path aggregates, and the morsel scheduler when
it merges per-morsel partial aggregates.  One algebra, one answer: the
differential oracle holds all engines to bit-identical grouped output, and
that only works if every path adds, compares, and divides the same way.

States are small picklable values (ints, raw column values, pairs), so a
partial aggregate can cross a process-pool boundary:

* ``count`` — an ``int`` (rows seen; the argument, if any, is ignored —
  the SQL subset has no NULLs);
* ``sum`` — the running total, or ``None`` before the first row.  Updates
  add **in input-row order**; float addition is not associative, so any
  reordering could change the answer and break the cross-engine oracle;
* ``min`` / ``max`` — the current extremum, or ``None`` before the first
  row;
* ``avg`` — a ``(total, count)`` pair; finalization divides with Python's
  true division, in every engine.

Output schema: the grouping keys in ``spec.group_by`` order, then one
column per aggregate (``AggregateSpec.output``, e.g. ``count(*)``).  A
grouped query without aggregates — the lowered ``SELECT DISTINCT`` —
emits the keys alone.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.attributes import Attribute
from ..query.query import AggregateSpec
from .data import Row


def output_attributes(
    group_by: Sequence[Attribute], aggregates: Sequence[AggregateSpec]
) -> tuple[Attribute, ...]:
    """The aggregated stream's column set: keys first, then aggregates."""
    return (*group_by, *(a.output for a in aggregates))


# -- the accumulator algebra --------------------------------------------------


def new_state(function: str):
    """The identity element of one aggregate function."""
    if function == "count":
        return 0
    if function == "avg":
        return (None, 0)
    return None  # sum / min / max: no rows seen yet


def update_state(function: str, state, value):
    """Fold one row's value into a state (value ignored for ``count``)."""
    if function == "count":
        return state + 1
    if function == "sum":
        return value if state is None else state + value
    if function == "min":
        return value if state is None else min(state, value)
    if function == "max":
        return value if state is None else max(state, value)
    total, count = state
    return (value if total is None else total + value), count + 1


def update_state_column(function: str, state, values: Sequence):
    """Fold a whole value run into a state, preserving input order.

    Equivalent to repeated :func:`update_state` — sums accumulate
    left-to-right — but lets the columnar kernels fold a run with one call
    per column slice instead of one per row.
    """
    if not len(values):
        return state
    if function == "count":
        return state + len(values)
    if function == "sum":
        total = values[0] if state is None else state + values[0]
        for value in values[1:]:
            total = total + value
        return total
    if function == "min":
        lowest = min(values)
        return lowest if state is None else min(state, lowest)
    if function == "max":
        highest = max(values)
        return highest if state is None else max(state, highest)
    total, count = state
    run_total = values[0]
    for value in values[1:]:
        run_total = run_total + value
    total = run_total if total is None else total + run_total
    return total, count + len(values)


def merge_state(function: str, left, right):
    """Combine two partial states (left partition first — order matters
    for ``sum``/``avg`` exactness gating, see the morsel scheduler)."""
    if function == "count":
        return left + right
    if function == "sum":
        if left is None:
            return right
        return left if right is None else left + right
    if function == "min":
        if left is None:
            return right
        return left if right is None else min(left, right)
    if function == "max":
        if left is None:
            return right
        return left if right is None else max(left, right)
    (ltotal, lcount), (rtotal, rcount) = left, right
    if ltotal is None:
        total = rtotal
    elif rtotal is None:
        total = ltotal
    else:
        total = ltotal + rtotal
    return total, lcount + rcount


def finalize_state(function: str, state):
    """The output value of a completed group's state."""
    if function == "avg":
        total, count = state
        return total / count
    return state


def new_states(aggregates: Sequence[AggregateSpec]) -> list:
    return [new_state(a.function) for a in aggregates]


def merge_states(
    aggregates: Sequence[AggregateSpec], left: list, right: list
) -> list:
    return [
        merge_state(a.function, ls, rs)
        for a, ls, rs in zip(aggregates, left, right)
    ]


def finalize_states(aggregates: Sequence[AggregateSpec], states: list) -> list:
    return [
        finalize_state(a.function, state)
        for a, state in zip(aggregates, states)
    ]


# -- row-level reference operators (the row engine / oracle) ------------------


def _update_row(
    states: list, aggregates: Sequence[AggregateSpec], row: Row
) -> None:
    for i, aggregate in enumerate(aggregates):
        value = None if aggregate.argument is None else row[aggregate.argument]
        states[i] = update_state(aggregate.function, states[i], value)


def _output_row(
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    key: tuple,
    states: list,
) -> Row:
    row: Row = dict(zip(group_by, key))
    for aggregate, value in zip(
        aggregates, finalize_states(aggregates, states)
    ):
        row[aggregate.output] = value
    return row


def stream_aggregate_rows(
    rows: Sequence[Row],
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
) -> List[Row]:
    """Order-exploiting aggregation: the input arrives grouped on the keys
    (every key's rows contiguous), so one group closes whenever the key
    tuple changes.  Groups emit in input order; O(1) live state."""
    out: List[Row] = []
    current_key: tuple | None = None
    states: list = []
    for row in rows:
        key = tuple(row[a] for a in group_by)
        if key != current_key:
            if current_key is not None:
                out.append(_output_row(group_by, aggregates, current_key, states))
            current_key = key
            states = new_states(aggregates)
        _update_row(states, aggregates, row)
    if current_key is not None:
        out.append(_output_row(group_by, aggregates, current_key, states))
    return out


def hash_aggregate_rows(
    rows: Sequence[Row],
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
) -> List[Row]:
    """Hash aggregation over arbitrary input order.  Groups emit in
    first-appearance order (dict insertion order) — the documented contract
    every engine reproduces."""
    groups: dict[tuple, list] = {}
    for row in rows:
        key = tuple(row[a] for a in group_by)
        states = groups.get(key)
        if states is None:
            states = groups[key] = new_states(aggregates)
        _update_row(states, aggregates, row)
    return [
        _output_row(group_by, aggregates, key, states)
        for key, states in groups.items()
    ]
