"""Plan execution: interpret a :class:`PlanNode` tree over synthetic data.

The executor closes the loop of the reproduction: a plan produced by the DP
generator is run on actual tuples, and the orderings its ADT state *claims*
can be checked against the physical stream (see
``tests/exec/test_executor.py`` and the property suite).

Selections are applied at scan level (exactly where the plan generator
charges their FD sets); join predicates are applied at their join.
"""

from __future__ import annotations

from typing import List

from ..core.attributes import Attribute
from ..query.predicates import (
    EqualsConstant,
    JoinPredicate,
    RangePredicate,
    SelectionPredicate,
)
from ..query.query import QuerySpec
from ..plangen.plan import (
    HASH_JOIN,
    INDEX_SCAN,
    MERGE_JOIN,
    NL_JOIN,
    SCAN,
    SORT,
    PlanNode,
)
from .aggregate import hash_aggregate_rows, stream_aggregate_rows
from .data import Row
from .iterators import (
    hash_join,
    merge_join,
    nested_loop_join,
    select_rows,
    sort_rows,
)


def oriented_keys(plan: PlanNode) -> tuple[Attribute, Attribute]:
    """The first join predicate's keys oriented as (left input, right input).

    Shared by both engines — the reference interpreter and the vectorized
    engine must orient merge/hash keys identically or they would answer
    differently by construction.
    """
    join: JoinPredicate = plan.predicates[0]
    left_aliases = {node.alias for node in plan.left.operators() if node.alias}
    if join.left.relation in left_aliases:
        return join.left, join.right
    return join.right, join.left


def _selection_predicate(selection: SelectionPredicate):
    attribute = selection.attribute
    if isinstance(selection, EqualsConstant):
        value = selection.value
        return lambda row: row[attribute] == value
    if isinstance(selection, RangePredicate):
        op, lo, hi = selection.operator, selection.value, selection.upper_value
        if op == "between":
            return lambda row: lo <= row[attribute] <= hi  # type: ignore[operator]
        ops = {
            "<": lambda row: row[attribute] < lo,
            "<=": lambda row: row[attribute] <= lo,
            ">": lambda row: row[attribute] > lo,
            ">=": lambda row: row[attribute] >= lo,
            "<>": lambda row: row[attribute] != lo,
        }
        return ops[op]
    raise TypeError(f"unknown selection {selection!r}")  # pragma: no cover


class Executor:
    """Interprets plan trees over per-alias row lists.

    ``check_merge_inputs`` enables the adjacent-pair sortedness guard on
    every merge join (see :class:`repro.exec.iterators.MergeInputNotSortedError`).
    """

    def __init__(
        self,
        spec: QuerySpec,
        data: dict[str, List[Row]],
        *,
        check_merge_inputs: bool = False,
    ) -> None:
        self.spec = spec
        self.data = data
        self.check_merge_inputs = check_merge_inputs

    def run(self, plan: PlanNode) -> List[Row]:
        method = getattr(self, f"_run_{plan.op}", None)
        if method is None:
            raise ValueError(f"cannot execute operator {plan.op}")
        return method(plan)

    # -- leaves -----------------------------------------------------------------

    def _scan_with_selections(self, alias: str, rows: List[Row]) -> List[Row]:
        for selection in self.spec.selections_for(alias):
            rows = select_rows(rows, _selection_predicate(selection))
        return rows

    def _run_scan(self, plan: PlanNode) -> List[Row]:
        return self._scan_with_selections(plan.alias, list(self.data[plan.alias]))

    def _run_index_scan(self, plan: PlanNode) -> List[Row]:
        if plan.ordering is None:
            raise ValueError("index scan without ordering")
        rows = sort_rows(list(self.data[plan.alias]), plan.ordering)
        return self._scan_with_selections(plan.alias, rows)

    # -- unary ------------------------------------------------------------------

    def _run_sort(self, plan: PlanNode) -> List[Row]:
        if plan.ordering is None or plan.left is None:
            raise ValueError("malformed sort node")
        return sort_rows(self.run(plan.left), plan.ordering)

    def _run_stream_aggregate(self, plan: PlanNode) -> List[Row]:
        if plan.left is None:
            raise ValueError("malformed stream_aggregate node")
        return stream_aggregate_rows(
            self.run(plan.left), self.spec.group_by, self.spec.aggregates
        )

    def _run_hash_aggregate(self, plan: PlanNode) -> List[Row]:
        if plan.left is None:
            raise ValueError("malformed hash_aggregate node")
        return hash_aggregate_rows(
            self.run(plan.left), self.spec.group_by, self.spec.aggregates
        )

    # -- joins ------------------------------------------------------------------

    def _oriented_keys(self, plan: PlanNode) -> tuple[Attribute, Attribute]:
        return oriented_keys(plan)

    def _residual(self, plan: PlanNode):
        rest: tuple[JoinPredicate, ...] = plan.predicates[1:]
        if not rest:
            return None

        def condition(left_row: Row, right_row: Row) -> bool:
            combined = dict(left_row)
            combined.update(right_row)
            return all(combined[p.left] == combined[p.right] for p in rest)

        return condition

    def _run_merge_join(self, plan: PlanNode) -> List[Row]:
        lk, rk = self._oriented_keys(plan)
        return merge_join(
            self.run(plan.left),
            self.run(plan.right),
            lk,
            rk,
            self._residual(plan),
            check_sorted=self.check_merge_inputs,
        )

    def _run_hash_join(self, plan: PlanNode) -> List[Row]:
        lk, rk = self._oriented_keys(plan)
        return hash_join(
            self.run(plan.left), self.run(plan.right), lk, rk, self._residual(plan)
        )

    def _run_nl_join(self, plan: PlanNode) -> List[Row]:
        predicates: tuple[JoinPredicate, ...] = plan.predicates

        def condition(left_row: Row, right_row: Row) -> bool:
            combined = dict(left_row)
            combined.update(right_row)
            return all(combined[p.left] == combined[p.right] for p in predicates)

        return nested_loop_join(self.run(plan.left), self.run(plan.right), condition)


def execute_plan(
    plan: PlanNode, spec: QuerySpec, data: dict[str, List[Row]]
) -> List[Row]:
    """Convenience wrapper."""
    return Executor(spec, data).run(plan)
