"""Vectorized streaming operators: generators over columnar batches.

Each operator consumes ``Iterator[Batch]`` inputs and yields output batches,
so a pipeline holds at most a handful of batches at a time.  The only
materialization points are exactly the ones the cost model charges for:

* :func:`sort_batches` — the sort enforcer buffers *its own input* (and
  nothing upstream of a pipeline breaker below it), argsorts once, and
  re-emits batches;
* :func:`hash_join_batches` — the build side (right) is drained into one
  columnar store plus a bucket index; the probe side (left) streams;
* :func:`nl_join_batches` — the inner side (right) is materialized, the
  outer streams.

:func:`merge_join_batches` is fully streaming on both sides (duplicate key
groups are buffered, spanning batch boundaries when they must).

Order-propagation semantics match the row engine and the plan generator's
documented contract: merge, hash, and nested-loop joins all emit in the
**left** input's order; scans preserve base-table order; sorts establish
their ordering.  Join outputs concatenate the two column sets (attribute
sets are disjoint because attributes are alias-qualified).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..core.attributes import Attribute
from ..core.ordering import Ordering
from ..query.predicates import JoinPredicate
from ..query.query import AggregateSpec
from .aggregate import (
    finalize_states,
    new_states,
    output_attributes,
    update_state,
    update_state_column,
)
from .batch import Batch, Columns, concat_batches, empty_like
from .iterators import check_sorted_run

DEFAULT_BATCH_SIZE = 1024

#: A compiled selection: column values in, kept positions out.
VectorPredicate = Callable[[list], list[int]]


class _OutputBuffer:
    """Accumulates output columns and emits batches of ~``batch_size`` rows."""

    def __init__(self, attributes: Sequence[Attribute], batch_size: int) -> None:
        self.columns: Columns = {a: [] for a in attributes}
        self.batch_size = batch_size
        self._length = 0

    def append_length(self, added: int) -> None:
        self._length += added

    @property
    def full(self) -> bool:
        return self._length >= self.batch_size

    def drain(self) -> Batch:
        batch = Batch(self.columns, self._length)
        self.columns = empty_like(self.columns)
        self._length = 0
        return batch


# -- scans --------------------------------------------------------------------


def compile_selection(selection) -> VectorPredicate:
    """Compile a selection predicate into a column-level filter."""
    from ..query.predicates import EqualsConstant, RangePredicate

    if isinstance(selection, EqualsConstant):
        value = selection.value
        return lambda column: [i for i, v in enumerate(column) if v == value]
    if isinstance(selection, RangePredicate):
        op, lo, hi = selection.operator, selection.value, selection.upper_value
        if op == "between":
            return lambda column: [
                i for i, v in enumerate(column) if lo <= v <= hi  # type: ignore[operator]
            ]
        ops: dict[str, VectorPredicate] = {
            "<": lambda column: [i for i, v in enumerate(column) if v < lo],  # type: ignore[operator]
            "<=": lambda column: [i for i, v in enumerate(column) if v <= lo],  # type: ignore[operator]
            ">": lambda column: [i for i, v in enumerate(column) if v > lo],  # type: ignore[operator]
            ">=": lambda column: [i for i, v in enumerate(column) if v >= lo],  # type: ignore[operator]
            "<>": lambda column: [i for i, v in enumerate(column) if v != lo],
        }
        return ops[op]
    raise TypeError(f"unknown selection {selection!r}")  # pragma: no cover


def filter_indices(table: Batch, selections: Sequence) -> list[int] | None:
    """Row positions surviving all selections; ``None`` means *all rows*
    (no selection — scans then slice instead of gathering)."""
    indices: list[int] | None = None
    for selection in selections:
        column = table.column(selection.attribute)
        if indices is not None:
            column = [column[i] for i in indices]
        kept = compile_selection(selection)(column)
        indices = kept if indices is None else [indices[i] for i in kept]
    return indices


def scan_batches(
    table: Batch,
    selections: Sequence,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Batched scan with pushed-down selections, preserving table order."""
    indices = filter_indices(table, selections)
    if indices is None:
        for start in range(0, table.length, batch_size):
            yield table.slice(start, start + batch_size)
        return
    for start in range(0, len(indices), batch_size):
        yield table.take(indices[start : start + batch_size])


def index_scan_batches(
    table: Batch,
    ordering: Ordering,
    selections: Sequence,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Scan in index order: filter, stable-argsort the survivors, emit.

    Equivalent to the row engine's sort-then-filter (a stable filter
    preserves sortedness), but gathers only the surviving rows.
    """
    indices = filter_indices(table, selections)
    if indices is None:
        indices = list(range(table.length))
    # Key tuples are built per *survivor*, not per table row — a selective
    # pushed-down predicate must not pay for the whole base table.
    key_columns = [table.column(a) for a in ordering.attributes]
    indices.sort(key=lambda i: tuple(column[i] for column in key_columns))
    for start in range(0, len(indices), batch_size):
        yield table.take(indices[start : start + batch_size])


# -- sort enforcer ------------------------------------------------------------


def sort_batches(
    batches: Iterator[Batch],
    ordering: Ordering,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Materialize the input, stable-sort it, re-emit in batches."""
    table = concat_batches(list(batches))
    if not table.columns:
        return
    keys = table.key_tuples(ordering.attributes)
    indices = sorted(range(table.length), key=lambda i: keys[i])
    for start in range(0, len(indices), batch_size):
        yield table.take(indices[start : start + batch_size])


# -- join plumbing ------------------------------------------------------------


def _orient_predicate(
    predicate: JoinPredicate, left_columns: Columns
) -> tuple[Attribute, Attribute]:
    """(left attribute, right attribute) of a predicate, by column membership."""
    if predicate.left in left_columns:
        return predicate.left, predicate.right
    return predicate.right, predicate.left


def _pair_passes(
    oriented: Sequence[tuple[Attribute, Attribute]],
    left_columns: Columns,
    right_columns: Columns,
) -> Callable[[int, int], bool]:
    """Residual test over (left row, right row) position pairs."""
    pairs = [
        (left_columns[la], right_columns[ra]) for la, ra in oriented
    ]

    def passes(i: int, j: int) -> bool:
        return all(lcol[i] == rcol[j] for lcol, rcol in pairs)

    return passes


def _emit_pairs(
    out: _OutputBuffer,
    left_columns: Columns,
    right_columns: Columns,
    left_positions: Sequence[int],
    right_positions: Sequence[int],
) -> None:
    """Gather matched (left, right) row pairs into the output columns."""
    for attribute, values in left_columns.items():
        out.columns[attribute].extend([values[i] for i in left_positions])
    for attribute, values in right_columns.items():
        out.columns[attribute].extend([values[j] for j in right_positions])
    out.append_length(len(left_positions))


# -- hash join ----------------------------------------------------------------


def build_hash_index(build: Batch, right_key: Attribute) -> dict[object, list[int]]:
    """The hash-join build index: key value → build-row positions.

    Bucket *insertion order* is build input order, which is what keeps the
    join's emission order bit-identical to the row engine's.
    """
    buckets: dict[object, list[int]] = {}
    for j, value in enumerate(build.column(right_key)):
        buckets.setdefault(value, []).append(j)
    return buckets


def probe_hash_batches(
    left: Iterator[Batch],
    build: Batch,
    lookup: Callable[[object], Sequence[int] | None],
    left_key: Attribute,
    residuals: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Probe a prebuilt build side with streaming left batches.

    ``lookup`` maps a probe key to its build-row positions (or ``None``) —
    a plain ``dict.get`` for the serial join, a key-hash partition lookup
    for the morsel scheduler's shared builds.  Factored out of
    :func:`hash_join_batches` so parallel morsels can share one build.
    """
    out: _OutputBuffer | None = None
    for probe in left:
        if out is None:
            out = _OutputBuffer([*probe.columns, *build.columns], batch_size)
        left_positions: list[int] = []
        right_positions: list[int] = []
        keys = probe.column(left_key)
        buckets_get = lookup
        if residuals:
            oriented = [_orient_predicate(p, probe.columns) for p in residuals]
            passes = _pair_passes(oriented, probe.columns, build.columns)
            for i, key in enumerate(keys):
                for j in buckets_get(key) or ():
                    if passes(i, j):
                        left_positions.append(i)
                        right_positions.append(j)
                if len(left_positions) >= batch_size:
                    # Bound the position buffers: a skewed key must not
                    # accumulate a whole batch's matches before draining.
                    _emit_pairs(
                        out, probe.columns, build.columns,
                        left_positions, right_positions,
                    )
                    left_positions, right_positions = [], []
                    if out.full:
                        yield out.drain()
        else:
            for i, key in enumerate(keys):
                matches = buckets_get(key)
                if matches is not None:
                    if len(matches) == 1:
                        left_positions.append(i)
                    else:
                        left_positions.extend([i] * len(matches))
                    right_positions.extend(matches)
                if len(left_positions) >= batch_size:
                    _emit_pairs(
                        out, probe.columns, build.columns,
                        left_positions, right_positions,
                    )
                    left_positions, right_positions = [], []
                    if out.full:
                        yield out.drain()
        _emit_pairs(out, probe.columns, build.columns, left_positions, right_positions)
        if out.full:
            yield out.drain()
    if out is not None and out._length:
        yield out.drain()


def hash_join_batches(
    left: Iterator[Batch],
    right: Iterator[Batch],
    left_key: Attribute,
    right_key: Attribute,
    residuals: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Build on the right, probe with streaming left batches.

    Probe order — and bucket insertion order — preserve input order, so the
    output carries the left ordering exactly like the row engine.
    """
    build = concat_batches(list(right))
    if build.length == 0:
        # An empty build side joins to nothing; the probe side is not even
        # consumed (and its columns are unknowable from here, so emitting
        # empty batches would be wrong anyway).
        return
    lookup = build_hash_index(build, right_key).get
    yield from probe_hash_batches(
        left, build, lookup, left_key, residuals, batch_size
    )


# -- nested-loop join ---------------------------------------------------------


def nl_join_batches(
    left: Iterator[Batch],
    right: Iterator[Batch],
    predicates: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Stream the outer (left), materialize the inner (right).

    With no predicates this is the cross join the planner emits for
    synthetic cross-product edges.
    """
    inner = concat_batches(list(right))
    if inner.length == 0:
        return
    out: _OutputBuffer | None = None
    all_inner = list(range(inner.length))
    for outer in left:
        if out is None:
            out = _OutputBuffer([*outer.columns, *inner.columns], batch_size)
        oriented = [_orient_predicate(p, outer.columns) for p in predicates]
        passes = _pair_passes(oriented, outer.columns, inner.columns)
        left_positions: list[int] = []
        right_positions: list[int] = []
        for i in range(outer.length):
            if predicates:
                for j in range(inner.length):
                    if passes(i, j):
                        left_positions.append(i)
                        right_positions.append(j)
                    if len(left_positions) >= batch_size:
                        _emit_pairs(
                            out, outer.columns, inner.columns,
                            left_positions, right_positions,
                        )
                        left_positions, right_positions = [], []
                        if out.full:
                            yield out.drain()
            else:
                # Cross product, chunked per inner range so one outer row
                # against a huge inner never buffers the whole product.
                for start in range(0, inner.length, batch_size):
                    chunk = all_inner[start : start + batch_size]
                    left_positions.extend([i] * len(chunk))
                    right_positions.extend(chunk)
                    _emit_pairs(
                        out, outer.columns, inner.columns,
                        left_positions, right_positions,
                    )
                    left_positions, right_positions = [], []
                    if out.full:
                        yield out.drain()
        _emit_pairs(out, outer.columns, inner.columns, left_positions, right_positions)
        if out.full:
            yield out.drain()
    if out is not None and out._length:
        yield out.drain()


# -- merge join ---------------------------------------------------------------


class _MergeCursor:
    """Streaming cursor over one sorted merge input.

    Tracks a (batch, position) pair, refilling from the batch iterator on
    demand; knows how to collect the *duplicate group* of a key value even
    when it spans batch boundaries.  With ``check_key`` set it runs the
    adjacent-pair sortedness guard as batches are consumed — including
    across batch boundaries — and raises instead of merging garbage.
    """

    def __init__(
        self,
        batches: Iterator[Batch],
        key: Attribute,
        *,
        check_sorted: bool = False,
        side: str = "input",
    ) -> None:
        self._batches = iter(batches)
        self.key = key
        self.check_sorted = check_sorted
        self.side = side
        self.batch: Batch | None = None
        self.keys: list = []
        self.pos = 0
        self.exhausted = False
        self._last_key: object = None
        self._refill()

    def _refill(self) -> None:
        while True:
            batch = next(self._batches, None)
            if batch is None:
                self.batch = None
                self.exhausted = True
                return
            if batch.length == 0:
                continue
            keys = batch.column(self.key)
            if self.check_sorted:
                self._last_key = check_sorted_run(
                    keys, self.key, self._last_key, self.side
                )
            self.batch = batch
            self.keys = keys
            self.pos = 0
            return

    def current(self) -> object:
        return self.keys[self.pos]

    def advance(self) -> None:
        self.pos += 1
        if self.pos >= len(self.keys):
            self._refill()

    def take_group(self, value: object) -> Columns:
        """Collect (and consume) all rows whose key equals ``value``."""
        assert self.batch is not None
        keys, pos = self.keys, self.pos
        n = len(keys)
        stop = pos
        while stop < n and keys[stop] == value:
            stop += 1
        if stop < n:
            # Fast path: the whole duplicate group sits inside the current
            # batch (the dominant case) — one slice per column, no churn.
            group = {
                a: values[pos:stop] for a, values in self.batch.columns.items()
            }
            self.pos = stop
            return group
        # The group may continue into following batches.
        group = {
            a: list(values[pos:stop]) for a, values in self.batch.columns.items()
        }
        self.pos = stop
        self._refill()
        while not self.exhausted:
            batch, keys = self.batch, self.keys
            start = self.pos
            stop = start
            while stop < len(keys) and keys[stop] == value:
                stop += 1
            if stop > start:
                for attribute, values in batch.columns.items():  # type: ignore[union-attr]
                    group[attribute].extend(values[start:stop])
            self.pos = stop
            if stop < len(keys):
                break
            self._refill()
        return group


def merge_join_batches(
    left: Iterator[Batch],
    right: Iterator[Batch],
    left_key: Attribute,
    right_key: Attribute,
    residuals: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
    *,
    check_sorted: bool = False,
) -> Iterator[Batch]:
    """Streaming sort-merge join; both inputs must be sorted on their keys.

    Classic two-pointer merge with right-side duplicate-group buffering;
    the left side is swept run-by-run, so the output is in left order and
    neither input is ever materialized beyond one duplicate group.
    """
    lcur = _MergeCursor(left, left_key, check_sorted=check_sorted, side="left")
    rcur = _MergeCursor(right, right_key, check_sorted=check_sorted, side="right")
    out: _OutputBuffer | None = None
    oriented: list[tuple[Attribute, Attribute]] | None = None

    while not lcur.exhausted and not rcur.exhausted:
        lv, rv = lcur.current(), rcur.current()
        if lv < rv:  # type: ignore[operator]
            lcur.advance()
            continue
        if rv < lv:  # type: ignore[operator]
            rcur.advance()
            continue
        assert lcur.batch is not None
        group = rcur.take_group(lv)
        group_length = len(next(iter(group.values()))) if group else 0
        if out is None:
            out = _OutputBuffer([*lcur.batch.columns, *group], batch_size)
        if oriented is None:
            oriented = [_orient_predicate(p, lcur.batch.columns) for p in residuals]
        # Sweep the left duplicate group run by run (it may span batches).
        while not lcur.exhausted and lcur.current() == lv:
            batch, keys = lcur.batch, lcur.keys
            start = lcur.pos
            stop = start
            while stop < len(keys) and keys[stop] == lv:
                stop += 1
            run_length = stop - start
            columns = batch.columns  # type: ignore[union-attr]
            if residuals:
                passes = _pair_passes(oriented, columns, group)
                left_positions = []
                right_positions = []
                for i in range(start, stop):
                    for j in range(group_length):
                        if passes(i, j):
                            left_positions.append(i)
                            right_positions.append(j)
                    if len(left_positions) >= batch_size:
                        _emit_pairs(out, columns, group, left_positions, right_positions)
                        left_positions, right_positions = [], []
                        if out.full:
                            yield out.drain()
                _emit_pairs(out, columns, group, left_positions, right_positions)
            elif group_length == 1:
                # The common key-to-key case: no repetition needed at all.
                # (out.columns is read at use time, never cached across a
                # drain — drain() swaps in a fresh column dict.)
                for attribute, values in columns.items():
                    out.columns[attribute].extend(values[start:stop])
                for attribute, values in group.items():
                    out.columns[attribute].extend(values * run_length)
                out.append_length(run_length)
            else:
                # Left-major cross product of the run and the group, fully
                # columnar: each left value repeats per group row, the
                # group's columns tile once per left row.  Emitted in left
                # segments of ~batch_size output rows, so a skewed key (a
                # huge run x a huge group) never buffers its whole product.
                segment = max(1, batch_size // group_length)
                for seg_start in range(start, stop, segment):
                    seg_stop = min(stop, seg_start + segment)
                    for attribute, values in columns.items():
                        run = values[seg_start:seg_stop]
                        out.columns[attribute].extend(
                            [v for v in run for _ in range(group_length)]
                        )
                    for attribute, values in group.items():
                        out.columns[attribute].extend(
                            values * (seg_stop - seg_start)
                        )
                    out.append_length((seg_stop - seg_start) * group_length)
                    if out.full:
                        yield out.drain()
            lcur.pos = stop
            if stop >= len(keys):
                lcur._refill()
            if out.full:
                yield out.drain()
    if out is not None and out._length:
        yield out.drain()


# -- aggregation ---------------------------------------------------------------


def _append_group(
    out: _OutputBuffer,
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    key: tuple,
    states: list,
) -> None:
    """Close one group: one output row of key values + finalized aggregates."""
    for attribute, value in zip(group_by, key):
        out.columns[attribute].append(value)
    for aggregate, value in zip(aggregates, finalize_states(aggregates, states)):
        out.columns[aggregate.output].append(value)
    out.append_length(1)


def _fold_run(
    states: list,
    aggregates: Sequence[AggregateSpec],
    batch: Batch,
    start: int,
    stop: int,
) -> None:
    """Fold rows ``[start, stop)`` of one batch into the open group's states
    (column-at-a-time, input order preserved)."""
    for i, aggregate in enumerate(aggregates):
        if aggregate.argument is None:  # count(*)
            states[i] = states[i] + (stop - start)
        else:
            states[i] = update_state_column(
                aggregate.function,
                states[i],
                batch.column(aggregate.argument)[start:stop],
            )


def stream_aggregate_batches(
    batches: Iterator[Batch],
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Order-exploiting aggregation over a key-grouped batch stream.

    The input arrives grouped on the keys (the planner proved it), so a
    group closes whenever the key tuple changes — including across batch
    boundaries.  Live state is one open group; output groups emit in input
    order, buffered to ``batch_size`` rows.
    """
    out = _OutputBuffer(output_attributes(group_by, aggregates), batch_size)
    current_key: tuple | None = None
    states: list = []
    for batch in batches:
        if batch.length == 0:
            continue
        keys = batch.key_tuples(group_by)
        start = 0
        while start < batch.length:
            key = keys[start]
            stop = start
            while stop < batch.length and keys[stop] == key:
                stop += 1
            if key != current_key:
                if current_key is not None:
                    _append_group(out, group_by, aggregates, current_key, states)
                    if out.full:
                        yield out.drain()
                current_key = key
                states = new_states(aggregates)
            _fold_run(states, aggregates, batch, start, stop)
            start = stop
    if current_key is not None:
        _append_group(out, group_by, aggregates, current_key, states)
    if out._length:
        yield out.drain()


def hash_aggregate_batches(
    batches: Iterator[Batch],
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Hash aggregation over arbitrary input order.

    Groups accumulate in a dict and emit in first-appearance (insertion)
    order once the input is drained — a pipeline breaker, like the cost
    model says.  The result is materialized whole and re-emitted in
    ``batch_size`` chunks, so batch counters match the morsel scheduler's
    merged-partials path exactly.
    """
    groups: dict[tuple, list] = {}
    for batch in batches:
        if batch.length == 0:
            continue
        keys = batch.key_tuples(group_by)
        argument_columns = {
            a.argument: batch.column(a.argument)
            for a in aggregates
            if a.argument is not None
        }
        for i, key in enumerate(keys):
            states = groups.get(key)
            if states is None:
                states = groups[key] = new_states(aggregates)
            for j, aggregate in enumerate(aggregates):
                value = (
                    None
                    if aggregate.argument is None
                    else argument_columns[aggregate.argument][i]
                )
                states[j] = update_state(aggregate.function, states[j], value)
    yield from grouped_output_batches(groups, group_by, aggregates, batch_size)


def grouped_output_batches(
    groups: dict,
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[Batch]:
    """Emit a ``key tuple -> states`` dict as output batches, in the dict's
    iteration (first-appearance) order.  Shared by the serial hash
    aggregate and the morsel scheduler's partial-aggregate merge."""
    if not groups:
        return
    columns: Columns = {a: [] for a in output_attributes(group_by, aggregates)}
    for key, states in groups.items():
        for attribute, value in zip(group_by, key):
            columns[attribute].append(value)
        for aggregate, value in zip(
            aggregates, finalize_states(aggregates, states)
        ):
            columns[aggregate.output].append(value)
    table = Batch(columns, len(groups))
    for start in range(0, table.length, batch_size):
        yield table.slice(start, start + batch_size)
