"""Execution engines: one plan-tree interpreter contract, three engines.

:class:`RowEngine` wraps the original row-dict interpreter
(:mod:`repro.exec.executor`) — slow, obviously correct, the *reference
oracle*.  :class:`VectorEngine` runs the same plan over columnar batches
through the generator pipeline of :mod:`repro.exec.vectorized`.
:class:`NumpyEngine` runs it over typed :class:`~repro.exec.arraybatch`
columns through the whole-column kernels of
:mod:`repro.exec.numpy_kernels`; it is optional — when NumPy is not
installed, ``numpy`` resolves to the vector engine with a warning
(:func:`resolve_engine_name`), so configuration never breaks on a missing
``[speed]`` extra.  All engines answer every query with the same result
multiset, in the same documented order-propagation semantics; the
differential property suite and the topology × enumerator × prepare-mode
grid hold them to it bit-identically, with the two pure-Python engines
serving as executable oracles for the NumPy backend.

Every execution returns an :class:`ExecutionResult` carrying per-operator
counters (:class:`NodeCounters`: rows out, batches out, physical sorts) so
``explain_analyze`` can print what the plan *did*, not just what the cost
model predicted.  A physical sort is counted where one actually runs: at
``sort`` enforcers and at ``index_scan`` leaves (the in-memory stand-in for
an ordered index read is a sort).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Iterator, List

from ..core.ordering import Ordering
from ..plangen.plan import INDEX_SCAN, SCAN, SORT, PlanNode
from ..query.query import QuerySpec
from .batch import Batch, batches_to_rows
from .data import Dataset, Row, as_dataset, schema_dtype_hints
from .executor import Executor, oriented_keys
from .morsel import DEFAULT_MORSEL_SIZE
from .vectorized import (
    DEFAULT_BATCH_SIZE,
    hash_aggregate_batches,
    hash_join_batches,
    index_scan_batches,
    merge_join_batches,
    nl_join_batches,
    scan_batches,
    sort_batches,
    stream_aggregate_batches,
)

try:  # The NumPy backend is optional — the ``[speed]`` extra.
    from .numpy_kernels import (
        hash_aggregate_array_batches,
        hash_join_array_batches,
        index_scan_array_batches,
        merge_join_array_batches,
        nl_join_array_batches,
        scan_array_batches,
        sort_array_batches,
        stream_aggregate_array_batches,
    )

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only without numpy
    NUMPY_AVAILABLE = False

ENGINES = ("row", "vector", "numpy", "parallel-vector", "parallel-numpy")

#: Serial engine -> its morsel-parallel counterpart (the row engine is the
#: reference oracle and deliberately has none).
_PARALLEL_UPGRADES = {"vector": "parallel-vector", "numpy": "parallel-numpy"}

# One fallback warning per process: every session construction, pool shard,
# and CLI invocation resolves the engine name, and a no-NumPy environment
# would otherwise re-warn on each of them (a sharded `batch` run printed
# dozens of identical lines).  The condition cannot un-happen within a
# process, so one line says everything.
_numpy_fallback_warned = False


def _warn_numpy_fallback() -> None:
    global _numpy_fallback_warned
    if _numpy_fallback_warned:
        return
    _numpy_fallback_warned = True
    warnings.warn(
        "NumPy is not installed; the numpy engine falls back to the "
        "vector engine (pip install 'repro-order-optimization[speed]')",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_engine_name(name: str) -> str:
    """Validate an engine name and apply the NumPy fallback contract.

    An unknown name raises — at configuration time, not per-query.  The
    ``numpy`` engine degrades gracefully: without NumPy installed it
    resolves to ``vector`` (same answers, pure Python) with a one-line
    warning — emitted once per process, not per resolution — so a config
    or ``REPRO_EXEC_ENGINE`` pin never breaks (or spams) an environment
    that lacks the ``[speed]`` extra.
    """
    if name not in ENGINES:
        raise ValueError(
            f"unknown execution engine {name!r}; available: {', '.join(ENGINES)}"
        )
    if name in ("numpy", "parallel-numpy") and not NUMPY_AVAILABLE:
        _warn_numpy_fallback()
        return "vector" if name == "numpy" else "parallel-vector"
    return name


def default_worker_count() -> int:
    """The environment-configured worker count (``REPRO_EXEC_WORKERS``).

    Unset or empty means 1 — the exact pre-existing serial path, byte for
    byte.  Values above 1 flip the serial default engines onto their
    morsel-parallel counterparts (see :func:`default_engine_name`).  A
    malformed value raises here, at configuration time, like a typo'd
    engine name does.
    """
    raw = os.environ.get("REPRO_EXEC_WORKERS", "") or "1"
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_EXEC_WORKERS must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"REPRO_EXEC_WORKERS must be >= 1, got {workers}")
    return workers


def parallel_engine_name(name: str, workers: int) -> str:
    """Upgrade a serial engine name to its parallel twin when ``workers > 1``.

    ``row`` never upgrades (it is the reference oracle), and already
    parallel names pass through; at ``workers <= 1`` the name is only
    resolved.  This is the *single* seam where a worker count changes which
    engine runs: code that asks for ``vector`` explicitly (golden snapshot
    tests, the differential oracle's serial witnesses) keeps getting the
    serial engine no matter what the environment says.
    """
    resolved = resolve_engine_name(name)
    if workers > 1:
        return _PARALLEL_UPGRADES.get(resolved, resolved)
    return resolved


def default_engine_name() -> str:
    """The environment-configured engine (``REPRO_EXEC_ENGINE``).

    Unset or empty means ``vector`` — the production engine; ``row`` flips
    the whole stack onto the reference oracle (the CI exec-smoke leg runs
    the suites under an explicit ``vector`` the same way, and the
    numpy-smoke leg under ``numpy``).  A typo'd value raises here, at
    configuration time; ``numpy`` without NumPy installed falls back to
    ``vector`` (see :func:`resolve_engine_name`).  When
    ``REPRO_EXEC_WORKERS`` asks for more than one worker, the serial
    default upgrades to its morsel-parallel counterpart
    (:func:`parallel_engine_name`).
    """
    name = resolve_engine_name(os.environ.get("REPRO_EXEC_ENGINE", "") or "vector")
    return parallel_engine_name(name, default_worker_count())


@dataclass(frozen=True)
class ExecutionConfig:
    """Engine knobs shared by both implementations."""

    batch_size: int = DEFAULT_BATCH_SIZE
    """Target rows per batch of the vectorized pipeline (the row engine
    reports every operator as a single batch)."""

    check_merge_inputs: bool = False
    """Debug guard: verify merge-join inputs are actually sorted on their
    keys (cheap adjacent-pair scan) and raise
    :class:`~repro.exec.iterators.MergeInputNotSortedError` instead of
    silently producing a wrong join result.  The differential suites turn
    this on; serving paths leave it off."""

    workers: int = field(default_factory=default_worker_count)
    """Morsel workers (``REPRO_EXEC_WORKERS``; 1 = serial).  The serial
    engines carry but ignore this — only the parallel engines act on it,
    and only the engine *name* decides which class runs (see
    :func:`parallel_engine_name`), so an environment-wide worker count
    never changes what an explicit ``make_engine("vector")`` builds."""

    morsel_size: int = DEFAULT_MORSEL_SIZE
    """Rows per morsel of the parallel scheduler's scan partitioning."""

    parallel_mode: str = "auto"
    """Morsel dispatch: ``process`` (real cores for pure-Python kernels),
    ``thread`` (NumPy kernels release the GIL; also the deterministic
    in-process mode for tests and Windows), or ``auto`` to pick by
    engine flavor."""

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.morsel_size < 1:
            raise ValueError(f"morsel_size must be >= 1, got {self.morsel_size}")
        if self.parallel_mode not in ("auto", "thread", "process"):
            raise ValueError(
                "parallel_mode must be one of 'auto', 'thread', 'process'; "
                f"got {self.parallel_mode!r}"
            )


@dataclass
class NodeCounters:
    """What one operator actually did during one execution."""

    op: str
    rows: int = 0
    batches: int = 0
    sorts: int = 0


@dataclass
class ExecutionStats:
    """Per-node and aggregate counters of one plan execution."""

    engine: str
    nodes: dict[int, NodeCounters] = field(default_factory=dict)
    workers: int = 1
    """Worker count the execution ran with (1: serial; the parallel
    engines stamp their configured count so ``explain analyze`` can name
    it next to the engine)."""

    def counters_for(self, node: PlanNode) -> NodeCounters:
        counters = self.nodes.get(id(node))
        if counters is None:
            counters = NodeCounters(op=node.op)
            self.nodes[id(node)] = counters
        return counters

    @property
    def total_rows(self) -> int:
        return sum(c.rows for c in self.nodes.values())

    @property
    def total_batches(self) -> int:
        return sum(c.batches for c in self.nodes.values())

    @property
    def sorts(self) -> int:
        return sum(c.sorts for c in self.nodes.values())

    def by_operator(self) -> dict[str, dict[str, int]]:
        """Aggregate counters per operator type (the session's view)."""
        totals: dict[str, dict[str, int]] = {}
        for counters in self.nodes.values():
            entry = totals.setdefault(
                counters.op, {"rows": 0, "batches": 0, "sorts": 0}
            )
            entry["rows"] += counters.rows
            entry["batches"] += counters.batches
            entry["sorts"] += counters.sorts
        return totals


class ExecutionResult:
    """The outcome of executing one plan: the stream plus its statistics.

    The result keeps the engine's native representation (row list or batch
    list) and converts lazily — benchmarks read :attr:`row_count` without
    paying for a 100k-dict transpose, differential tests call
    :meth:`rows` / :meth:`multiset` when they need tuples.
    """

    def __init__(
        self,
        plan: PlanNode,
        stats: ExecutionStats,
        *,
        rows: List[Row] | None = None,
        batches: List[Batch] | None = None,
    ) -> None:
        self.plan = plan
        self.stats = stats
        self._rows = rows
        self._batches = batches

    @property
    def engine(self) -> str:
        return self.stats.engine

    @property
    def row_count(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return sum(batch.length for batch in self._batches or ())

    def rows(self) -> List[Row]:
        """The result stream as rows, in emission order."""
        if self._rows is None:
            self._rows = batches_to_rows(self._batches or ())
        return self._rows

    def multiset(self) -> list:
        """Canonical order-insensitive form for differential comparison.

        Values are keyed by ``repr``, which sorts heterogeneous types
        without collapsing them — ``1`` and ``"1"`` must *not* compare
        equal, or a type-coercion bug would slip through the oracle.
        """
        return sorted(
            tuple(sorted((str(k), repr(v)) for k, v in row.items()))
            for row in self.rows()
        )


# -- engines ------------------------------------------------------------------


class ExecutionEngine:
    """The contract: interpret a plan tree over a dataset."""

    name: str = "abstract"

    def __init__(self, config: ExecutionConfig | None = None) -> None:
        self.config = config or ExecutionConfig()

    def execute(
        self,
        plan: PlanNode,
        spec: QuerySpec,
        data: Dataset | dict[str, List[Row]],
    ) -> ExecutionResult:
        raise NotImplementedError


class _CountingExecutor(Executor):
    """The row executor with per-node accounting layered on ``run``."""

    def __init__(self, spec, data, stats: ExecutionStats, *, check_merge_inputs):
        super().__init__(spec, data, check_merge_inputs=check_merge_inputs)
        self._stats = stats

    def run(self, plan: PlanNode) -> List[Row]:
        rows = super().run(plan)
        counters = self._stats.counters_for(plan)
        counters.rows += len(rows)
        counters.batches += 1  # the row engine's "batch" is the whole list
        if plan.op in (SORT, INDEX_SCAN):
            counters.sorts += 1
        return rows


class RowEngine(ExecutionEngine):
    """The materialized row-list interpreter — the reference oracle."""

    name = "row"

    def execute(self, plan, spec, data) -> ExecutionResult:
        dataset = as_dataset(data)
        stats = ExecutionStats(engine=self.name)
        executor = _CountingExecutor(
            spec,
            dataset.rows(),
            stats,
            check_merge_inputs=self.config.check_merge_inputs,
        )
        return ExecutionResult(plan, stats, rows=executor.run(plan))


class VectorEngine(ExecutionEngine):
    """The vectorized streaming engine: generator pipelines over batches."""

    name = "vector"

    def execute(self, plan, spec, data) -> ExecutionResult:
        dataset = as_dataset(data)
        stats = ExecutionStats(engine=self.name)
        batches = list(self._compile(plan, spec, dataset, stats))
        return ExecutionResult(plan, stats, batches=batches)

    # -- pipeline construction ------------------------------------------------

    def _compile(
        self, node: PlanNode, spec: QuerySpec, dataset: Dataset, stats: ExecutionStats
    ) -> Iterator[Batch]:
        method = getattr(self, f"_compile_{node.op}", None)
        if method is None:
            raise ValueError(f"cannot execute operator {node.op}")
        return self._counted(node, method(node, spec, dataset, stats), stats)

    def _counted(
        self, node: PlanNode, batches: Iterator[Batch], stats: ExecutionStats
    ) -> Iterator[Batch]:
        counters = stats.counters_for(node)
        for batch in batches:
            counters.rows += batch.length
            counters.batches += 1
            yield batch

    # -- leaves ---------------------------------------------------------------

    def _compile_scan(self, node, spec, dataset, stats) -> Iterator[Batch]:
        return scan_batches(
            dataset.batch(node.alias),
            spec.selections_for(node.alias),
            self.config.batch_size,
        )

    def _sorting(
        self, node: PlanNode, batches: Iterator[Batch], stats: ExecutionStats
    ) -> Iterator[Batch]:
        """Count the physical sort when the pipeline is first pulled — an
        operator left unpulled (e.g. below a join whose other side came up
        empty) never sorts, and must not claim one in ``explain analyze``."""
        stats.counters_for(node).sorts += 1
        yield from batches

    def _compile_index_scan(self, node, spec, dataset, stats) -> Iterator[Batch]:
        if node.ordering is None:
            raise ValueError("index scan without ordering")
        return self._sorting(
            node,
            index_scan_batches(
                dataset.batch(node.alias),
                node.ordering,
                spec.selections_for(node.alias),
                self.config.batch_size,
            ),
            stats,
        )

    # -- unary ----------------------------------------------------------------

    def _compile_sort(self, node, spec, dataset, stats) -> Iterator[Batch]:
        if node.ordering is None or node.left is None:
            raise ValueError("malformed sort node")
        return self._sorting(
            node,
            sort_batches(
                self._compile(node.left, spec, dataset, stats),
                node.ordering,
                self.config.batch_size,
            ),
            stats,
        )

    def _compile_stream_aggregate(self, node, spec, dataset, stats) -> Iterator[Batch]:
        if node.left is None:
            raise ValueError("malformed stream_aggregate node")
        return stream_aggregate_batches(
            self._compile(node.left, spec, dataset, stats),
            spec.group_by,
            spec.aggregates,
            self.config.batch_size,
        )

    def _compile_hash_aggregate(self, node, spec, dataset, stats) -> Iterator[Batch]:
        if node.left is None:
            raise ValueError("malformed hash_aggregate node")
        return hash_aggregate_batches(
            self._compile(node.left, spec, dataset, stats),
            spec.group_by,
            spec.aggregates,
            self.config.batch_size,
        )

    # -- joins ----------------------------------------------------------------

    def _compile_merge_join(self, node, spec, dataset, stats) -> Iterator[Batch]:
        left_key, right_key = oriented_keys(node)
        return merge_join_batches(
            self._compile(node.left, spec, dataset, stats),
            self._compile(node.right, spec, dataset, stats),
            left_key,
            right_key,
            node.predicates[1:],
            self.config.batch_size,
            check_sorted=self.config.check_merge_inputs,
        )

    def _compile_hash_join(self, node, spec, dataset, stats) -> Iterator[Batch]:
        left_key, right_key = oriented_keys(node)
        return hash_join_batches(
            self._compile(node.left, spec, dataset, stats),
            self._compile(node.right, spec, dataset, stats),
            left_key,
            right_key,
            node.predicates[1:],
            self.config.batch_size,
        )

    def _compile_nl_join(self, node, spec, dataset, stats) -> Iterator[Batch]:
        return nl_join_batches(
            self._compile(node.left, spec, dataset, stats),
            self._compile(node.right, spec, dataset, stats),
            node.predicates,
            self.config.batch_size,
        )


class NumpyEngine(VectorEngine):
    """The NumPy-accelerated engine: whole-column kernels over typed arrays.

    Same plan dispatch, counters, and pull-time sort accounting as the
    vector engine (it *is* one, structurally); the leaves scan the
    dataset's cached :class:`~repro.exec.arraybatch.ArrayBatch` view (dtype
    hints from the catalog schema, see
    :func:`~repro.exec.data.schema_dtype_hints`) and every operator
    delegates to :mod:`repro.exec.numpy_kernels`.  Emission order is
    bit-identical to the pure-Python engines by construction — the
    kernels reproduce left-major join order and stable sorts exactly.
    """

    name = "numpy"

    def __init__(self, config: ExecutionConfig | None = None) -> None:
        if not NUMPY_AVAILABLE:  # pragma: no cover - no-numpy env
            raise RuntimeError(
                "NumpyEngine requires NumPy; install the [speed] extra or "
                "use make_engine('numpy') for the graceful vector fallback"
            )
        super().__init__(config)

    def _table(self, spec: QuerySpec, dataset: Dataset, alias: str):
        return dataset.array_batch(alias, hints=schema_dtype_hints(spec, alias))

    def _compile_scan(self, node, spec, dataset, stats):
        return scan_array_batches(
            self._table(spec, dataset, node.alias),
            spec.selections_for(node.alias),
            self.config.batch_size,
        )

    def _compile_index_scan(self, node, spec, dataset, stats):
        if node.ordering is None:
            raise ValueError("index scan without ordering")
        return self._sorting(
            node,
            index_scan_array_batches(
                self._table(spec, dataset, node.alias),
                node.ordering,
                spec.selections_for(node.alias),
                self.config.batch_size,
            ),
            stats,
        )

    def _compile_sort(self, node, spec, dataset, stats):
        if node.ordering is None or node.left is None:
            raise ValueError("malformed sort node")
        return self._sorting(
            node,
            sort_array_batches(
                self._compile(node.left, spec, dataset, stats),
                node.ordering,
                self.config.batch_size,
            ),
            stats,
        )

    def _compile_merge_join(self, node, spec, dataset, stats):
        left_key, right_key = oriented_keys(node)
        return merge_join_array_batches(
            self._compile(node.left, spec, dataset, stats),
            self._compile(node.right, spec, dataset, stats),
            left_key,
            right_key,
            node.predicates[1:],
            self.config.batch_size,
            check_sorted=self.config.check_merge_inputs,
        )

    def _compile_hash_join(self, node, spec, dataset, stats):
        left_key, right_key = oriented_keys(node)
        return hash_join_array_batches(
            self._compile(node.left, spec, dataset, stats),
            self._compile(node.right, spec, dataset, stats),
            left_key,
            right_key,
            node.predicates[1:],
            self.config.batch_size,
        )

    def _compile_nl_join(self, node, spec, dataset, stats):
        return nl_join_array_batches(
            self._compile(node.left, spec, dataset, stats),
            self._compile(node.right, spec, dataset, stats),
            node.predicates,
            self.config.batch_size,
        )

    def _compile_stream_aggregate(self, node, spec, dataset, stats):
        if node.left is None:
            raise ValueError("malformed stream_aggregate node")
        return stream_aggregate_array_batches(
            self._compile(node.left, spec, dataset, stats),
            spec.group_by,
            spec.aggregates,
            self.config.batch_size,
        )

    def _compile_hash_aggregate(self, node, spec, dataset, stats):
        if node.left is None:
            raise ValueError("malformed hash_aggregate node")
        return hash_aggregate_array_batches(
            self._compile(node.left, spec, dataset, stats),
            spec.group_by,
            spec.aggregates,
            self.config.batch_size,
        )


_ENGINE_TYPES: dict[str, type[ExecutionEngine]] = {
    RowEngine.name: RowEngine,
    VectorEngine.name: VectorEngine,
    NumpyEngine.name: NumpyEngine,
}


def make_engine(
    name: str | None = None, config: ExecutionConfig | None = None
) -> ExecutionEngine:
    """Build an engine by name (``None``: the environment default).

    Names go through :func:`resolve_engine_name`, so ``numpy`` in an
    environment without NumPy builds the vector engine instead of failing.
    """
    resolved = resolve_engine_name(name) if name else default_engine_name()
    engine_type = _ENGINE_TYPES.get(resolved)
    if engine_type is None:
        # The parallel engines live in their own module, imported lazily so
        # the serial import graph (and any environment that never asks for
        # parallelism) stays untouched.
        from .parallel import PARALLEL_ENGINE_TYPES

        engine_type = PARALLEL_ENGINE_TYPES[resolved]
    return engine_type(config)


def forced_sort_variant(plan: PlanNode, ordering: Ordering) -> PlanNode:
    """The same plan with an unconditional full sort on top.

    The differential oracle's second witness: a forced physical sort may
    never *change* the result multiset, and its output must satisfy the
    ordering on both engines regardless of what the optimizer claimed.
    """
    return PlanNode(
        SORT,
        plan.relations,
        state=plan.state,
        cost=plan.cost,
        cardinality=plan.cardinality,
        left=plan,
        ordering=ordering,
    )


def render_analyze(result: ExecutionResult, *, header: str = "") -> str:
    """``explain analyze``: the plan tree with per-operator actuals.

    Each operator line gains ``(actual: rows=N batches=B sort|no-sort)`` —
    the sort marker says whether this operator physically sorted tuples
    during the run, which is the paper's central claim made observable.
    """
    stats = result.stats

    def annotate(node: PlanNode) -> str:
        counters = stats.nodes.get(id(node))
        if counters is None:
            return "(actual: not executed)"
        marker = "sort" if counters.sorts else "no-sort"
        return (
            f"(actual: rows={counters.rows} batches={counters.batches} {marker})"
        )

    lines = []
    if header:
        lines.append(header)
    lines.append(result.plan.explain(annotate=annotate))
    engine_label = result.engine
    if stats.workers > 1:
        # Name the worker count only when one was actually in play, so the
        # serial engines' golden snapshots stay byte-identical.
        engine_label = f"{engine_label} workers={stats.workers}"
    lines.append(
        f"engine={engine_label}: {result.row_count} row(s) out, "
        f"{stats.sorts} physical sort(s), {stats.total_batches} batch(es) "
        f"across {len(stats.nodes)} operator(s)"
    )
    return "\n".join(lines)
