"""Physical operators over in-memory tuple streams.

Materialized list-based implementations (data volumes in tests are tiny);
the semantics match the cost model's operators:

* :func:`sort_rows` — stable sort by an ordering;
* :func:`merge_join` — classic two-pointer merge with duplicate-group
  buffering; **requires both inputs sorted on the join keys** and preserves
  the left input's ordering;
* :func:`hash_join` — builds on the right, probes with the left, preserving
  the left (probe) ordering;
* :func:`nested_loop_join` — reference implementation, preserves left order.

All joins concatenate the two rows (attribute sets are disjoint because
attributes are alias-qualified).
"""

from __future__ import annotations

from typing import Callable, List

from ..core.attributes import Attribute
from ..core.ordering import Ordering
from .data import Row


class MergeInputNotSortedError(RuntimeError):
    """A merge-join input violated its sortedness precondition.

    A merge join over an unsorted input does not fail — it silently drops
    (or duplicates) matches, which is the worst failure mode a differential
    oracle can meet.  The guard turns the silent wrong answer into a loud
    one; it is opt-in (``check_sorted=``) because the adjacent-pair scan,
    while linear and cheap, is pure overhead on trusted plans.
    """


def check_sorted_run(
    values: list, key: Attribute, previous: object, side: str
) -> object:
    """Adjacent-pair guard: assert ``values`` is non-decreasing, continuing
    from ``previous`` (the last key of the preceding chunk, or ``None`` at
    the start of the stream).  Returns the new last key."""
    for value in values:
        if previous is not None and value < previous:  # type: ignore[operator]
            raise MergeInputNotSortedError(
                f"{side} merge-join input is not sorted on {key}: "
                f"{value!r} follows {previous!r}"
            )
        previous = value
    return previous


def sort_rows(rows: List[Row], order: Ordering) -> List[Row]:
    """Stable sort by the ordering's attributes."""
    return sorted(rows, key=lambda row: tuple(row[a] for a in order))  # type: ignore[type-var]


def select_rows(rows: List[Row], predicate: Callable[[Row], bool]) -> List[Row]:
    return [row for row in rows if predicate(row)]


def _merged(left_row: Row, right_row: Row) -> Row:
    combined = dict(left_row)
    combined.update(right_row)
    return combined


def nested_loop_join(
    left: List[Row],
    right: List[Row],
    condition: Callable[[Row, Row], bool],
) -> List[Row]:
    return [
        _merged(l, r)
        for l in left
        for r in right
        if condition(l, r)
    ]


def hash_join(
    left: List[Row],
    right: List[Row],
    left_key: Attribute,
    right_key: Attribute,
    residual: Callable[[Row, Row], bool] | None = None,
) -> List[Row]:
    buckets: dict[object, List[Row]] = {}
    for row in right:
        buckets.setdefault(row[right_key], []).append(row)
    result: List[Row] = []
    for l in left:
        for r in buckets.get(l[left_key], ()):
            if residual is None or residual(l, r):
                result.append(_merged(l, r))
    return result


def merge_join(
    left: List[Row],
    right: List[Row],
    left_key: Attribute,
    right_key: Attribute,
    residual: Callable[[Row, Row], bool] | None = None,
    *,
    check_sorted: bool = False,
) -> List[Row]:
    """Sort-merge join; inputs must be sorted on their keys.

    ``check_sorted=True`` runs the adjacent-pair guard over both inputs and
    raises :class:`MergeInputNotSortedError` instead of silently producing
    a wrong result when the precondition is violated.
    """
    if check_sorted:
        check_sorted_run([row[left_key] for row in left], left_key, None, "left")
        check_sorted_run(
            [row[right_key] for row in right], right_key, None, "right"
        )
    result: List[Row] = []
    i = j = 0
    n, m = len(left), len(right)
    while i < n and j < m:
        lv, rv = left[i][left_key], right[j][right_key]
        if lv < rv:  # type: ignore[operator]
            i += 1
        elif rv < lv:  # type: ignore[operator]
            j += 1
        else:
            # buffer the right duplicate group, sweep the left group
            group_start = j
            while j < m and right[j][right_key] == lv:
                j += 1
            group = right[group_start:j]
            while i < n and left[i][left_key] == lv:
                for r in group:
                    if residual is None or residual(left[i], r):
                        result.append(_merged(left[i], r))
                i += 1
    return result
