"""NumPy execution kernels: whole-column operators over :class:`ArrayBatch`.

The third engine's operator set.  Where the vectorized engine streams
Python-list batches through generator pipelines, these kernels trade
streaming for array math: each operator materializes its input (a handful
of ``np.concatenate`` calls), computes the whole result with vectorized
expressions, and re-emits it in ``batch_size``-row *views* — so the
per-row interpreter cost the ROADMAP calls out disappears entirely.

Correctness stance: every kernel reproduces the pure-Python engines'
emission semantics exactly —

* scans and index scans preserve (filtered, stably sorted) table order;
* all joins emit in **left-input-major** order, matches within one left
  row in right-input order — bit-identical to both oracles, not merely
  multiset-equal;
* sort enforcers are stable (:func:`~repro.exec.arraybatch.stable_order`).

Join expansion uses the ``searchsorted`` group trick: stably sort the
build/right side by key (a partition of the rows into contiguous key
groups), binary-search every probe key's group boundaries, then expand
``(probe row, group member)`` pairs with ``repeat``/``cumsum`` arithmetic
— no Python-level loop touches a row.  Keys of different kinds (e.g. an
``object`` column against ``int64``) are harmonized to ``object`` first so
comparisons degrade to Python semantics instead of raising.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.attributes import Attribute
from ..core.ordering import Ordering
from ..query.predicates import EqualsConstant, JoinPredicate, RangePredicate
from ..query.query import AggregateSpec
from .arraybatch import (
    ArrayBatch,
    ArrayColumns,
    concat_array_batches,
    emit_chunks,
    infer_array,
    stable_order,
)
from .iterators import MergeInputNotSortedError
from .vectorized import DEFAULT_BATCH_SIZE, _orient_predicate, hash_aggregate_batches

#: Outer-chunk budget of the nested-loop pair-mask matrix (cells).
NL_MASK_CELLS = 1 << 16


# -- selections ---------------------------------------------------------------


def selection_mask(selection, column: np.ndarray) -> np.ndarray:
    """Boolean keep-mask of one pushed-down selection over one column."""
    if isinstance(selection, EqualsConstant):
        return column == selection.value
    if isinstance(selection, RangePredicate):
        op, lo, hi = selection.operator, selection.value, selection.upper_value
        if op == "between":
            return (column >= lo) & (column <= hi)
        if op == "<":
            return column < lo
        if op == "<=":
            return column <= lo
        if op == ">":
            return column > lo
        if op == ">=":
            return column >= lo
        if op == "<>":
            return column != lo
    raise TypeError(f"unknown selection {selection!r}")  # pragma: no cover


def filter_positions(
    table: ArrayBatch, selections: Sequence
) -> np.ndarray | None:
    """Row positions surviving all selections; ``None`` means *all rows*."""
    mask: np.ndarray | None = None
    for selection in selections:
        keep = np.asarray(
            selection_mask(selection, table.column(selection.attribute)),
            dtype=bool,
        )
        mask = keep if mask is None else mask & keep
    if mask is None:
        return None
    return np.nonzero(mask)[0]


# -- scans and the sort enforcer ----------------------------------------------


def scan_array_batches(
    table: ArrayBatch,
    selections: Sequence,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Batched scan with pushed-down selections, preserving table order."""
    positions = filter_positions(table, selections)
    if positions is None:
        yield from emit_chunks(table, batch_size)
        return
    yield from emit_chunks(table.take(positions), batch_size)


def index_scan_array_batches(
    table: ArrayBatch,
    ordering: Ordering,
    selections: Sequence,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Scan in index order: filter, stable-argsort survivors, gather once."""
    positions = filter_positions(table, selections)
    if positions is None:
        positions = np.arange(table.length, dtype=np.intp)
    keys = [table.column(a)[positions] for a in ordering.attributes]
    order = stable_order(keys, len(positions))
    yield from emit_chunks(table.take(positions[order]), batch_size)


def sort_array_batches(
    batches: Iterator[ArrayBatch],
    ordering: Ordering,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Materialize the input, stable-sort it, re-emit in batches."""
    table = concat_array_batches(list(batches))
    if not table.columns:
        return
    keys = [table.column(a) for a in ordering.attributes]
    yield from emit_chunks(table.take(stable_order(keys, table.length)), batch_size)


# -- join plumbing ------------------------------------------------------------


def _harmonized(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Key columns made ``searchsorted``-compatible.

    Same-kind arrays (both integer, both unicode of any width) compare
    natively; anything else is demoted to ``object`` so NumPy uses the
    Python comparison operators — exactly what the pure-Python engines do.
    """
    lk, rk = left.dtype.kind, right.dtype.kind
    if lk == rk and lk != "O":
        return left, right
    return left.astype(object), right.astype(object)


def _check_sorted(keys: np.ndarray, attribute: Attribute, side: str) -> None:
    """The merge-join sortedness guard, vectorized (adjacent-pair scan)."""
    if len(keys) > 1 and not bool(np.all(keys[:-1] <= keys[1:])):
        bad = int(np.nonzero(keys[:-1] > keys[1:])[0][0])
        before, after = keys[bad : bad + 2].tolist()  # native-scalar reprs
        raise MergeInputNotSortedError(
            f"{side} merge-join input is not sorted on {attribute}: "
            f"{after!r} follows {before!r}"
        )


def _group_expand(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe-row group ranges into (probe, offset) pair arrays.

    Given each probe row's ``[lo, hi)`` slice of a contiguous key group,
    produce ``left_positions`` (each probe row repeated by its match count,
    in probe order) and the matching absolute offsets into the group-sorted
    build side — the ``repeat``/``cumsum`` expansion, no Python loop.
    """
    counts = hi - lo
    total = int(counts.sum())
    left_positions = np.repeat(np.arange(len(counts), dtype=np.intp), counts)
    starts = np.repeat(lo, counts)
    run_offsets = np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    within = np.arange(total, dtype=np.intp) - run_offsets
    return left_positions, starts + within


def _residual_mask(
    oriented: Sequence[tuple[Attribute, Attribute]],
    left_columns: ArrayColumns,
    right_columns: ArrayColumns,
    left_positions: np.ndarray,
    right_positions: np.ndarray,
) -> np.ndarray:
    """Keep-mask of the residual equi-predicates over candidate pairs."""
    mask = np.ones(len(left_positions), dtype=bool)
    for la, ra in oriented:
        lvals, rvals = _harmonized(left_columns[la], right_columns[ra])
        mask &= lvals[left_positions] == rvals[right_positions]
    return mask


def _grouped_build_positions(bkeys: np.ndarray) -> dict:
    """Build-key groups as a plain dict — the unorderable-key path.

    ``searchsorted`` grouping needs a total order on the key values; a
    heterogeneous ``object`` column (say ``int`` probe keys against ``str``
    build keys) has none.  The streaming engines' hash join only needs
    *equality* (a dict), so this fallback groups exactly the way they do:
    build insertion order within a key group.
    """
    groups: dict = {}
    for position, key in enumerate(bkeys.tolist()):
        groups.setdefault(key, []).append(position)
    return groups


def _pairs_from_groups(
    pkeys: np.ndarray, groups: dict
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join pair positions from dict groups, probe-major like the
    streaming hash join."""
    left_positions: list[int] = []
    right_positions: list[int] = []
    for position, key in enumerate(pkeys.tolist()):
        matches = groups.get(key)
        if matches:
            left_positions.extend([position] * len(matches))
            right_positions.extend(matches)
    return (
        np.asarray(left_positions, dtype=np.intp),
        np.asarray(right_positions, dtype=np.intp),
    )


def _joined(
    left: ArrayBatch,
    right: ArrayBatch,
    left_positions: np.ndarray,
    right_positions: np.ndarray,
) -> ArrayBatch:
    """Gather matched pairs into the concatenated output column set."""
    columns: ArrayColumns = {
        a: values[left_positions] for a, values in left.columns.items()
    }
    for a, values in right.columns.items():
        columns[a] = values[right_positions]
    return ArrayBatch(columns, len(left_positions))


# -- merge join ---------------------------------------------------------------


def merge_join_array_batches(
    left: Iterator[ArrayBatch],
    right: Iterator[ArrayBatch],
    left_key: Attribute,
    right_key: Attribute,
    residuals: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
    *,
    check_sorted: bool = False,
) -> Iterator[ArrayBatch]:
    """Merge join via ``searchsorted`` duplicate-group slicing.

    Both inputs arrive sorted on their keys, so the right side *is* its own
    key partition: each left key's duplicate group is the ``[lo, hi)``
    range two binary searches return.  Output is in left order with group
    members in right order — the streaming merge's emission order exactly.
    The right side is consumed first; an empty side short-circuits without
    pulling the other (so an unpulled subtree never claims a sort).
    """
    build = concat_array_batches(list(right))
    if build.length == 0:
        return
    probe = concat_array_batches(list(left))
    if probe.length == 0:
        return
    lkeys, rkeys = _harmonized(probe.column(left_key), build.column(right_key))
    if check_sorted:
        _check_sorted(lkeys, left_key, "left")
        _check_sorted(rkeys, right_key, "right")
    lo = np.searchsorted(rkeys, lkeys, side="left")
    hi = np.searchsorted(rkeys, lkeys, side="right")
    left_positions, right_positions = _group_expand(lo, hi)
    if residuals:
        oriented = [_orient_predicate(p, probe.columns) for p in residuals]
        keep = _residual_mask(
            oriented, probe.columns, build.columns, left_positions, right_positions
        )
        left_positions = left_positions[keep]
        right_positions = right_positions[keep]
    yield from emit_chunks(
        _joined(probe, build, left_positions, right_positions), batch_size
    )


# -- hash join ----------------------------------------------------------------


class ArrayHashBuild:
    """A reusable hash-join build over one materialized build side.

    The build rows are partitioned into contiguous key groups by one stable
    argsort — the array-world analogue of key-hash bucket partitions, with
    bucket *insertion order* preserved by stability.  Unorderable key
    values (no total order, so no ``searchsorted``) degrade to the
    streaming engines' dict grouping, precomputed once.  Built once per
    join and probed by every morsel, so parallel workers share one
    partitioned build instead of re-sorting it per morsel.
    """

    __slots__ = ("batch", "right_key", "partition", "sorted_keys", "groups")

    def __init__(self, batch: ArrayBatch, right_key: Attribute) -> None:
        self.batch = batch
        self.right_key = right_key
        keys = batch.column(right_key)
        self.partition: np.ndarray | None
        self.sorted_keys: np.ndarray | None
        self.groups: dict | None
        try:
            self.partition = stable_order([keys], batch.length)
            self.sorted_keys = keys[self.partition]
            self.groups = None
        except TypeError:
            self.partition = None
            self.sorted_keys = None
            self.groups = _grouped_build_positions(keys)

    def pair_positions(
        self, pkeys_raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(probe, build) row-position pairs for a probe key column, in
        probe-major order with build input order inside each key group."""
        if self.sorted_keys is None:
            assert self.groups is not None
            return _pairs_from_groups(pkeys_raw, self.groups)
        try:
            pkeys, bkeys = _harmonized(pkeys_raw, self.sorted_keys)
            lo = np.searchsorted(bkeys, pkeys, side="left")
            hi = np.searchsorted(bkeys, pkeys, side="right")
        except TypeError:
            # Orderable build keys, but the probe column is incomparable
            # with them (e.g. ints probing strings): equality-only grouping.
            return _pairs_from_groups(
                pkeys_raw, _grouped_build_positions(self.batch.column(self.right_key))
            )
        left_positions, group_offsets = _group_expand(lo, hi)
        assert self.partition is not None
        return left_positions, self.partition[group_offsets]


def probe_hash_array_batches(
    probe: ArrayBatch,
    build: ArrayHashBuild,
    left_key: Attribute,
    residuals: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Probe one materialized probe side against a prebuilt
    :class:`ArrayHashBuild` (the morsel scheduler's per-morsel path)."""
    if probe.length == 0 or build.batch.length == 0:
        return
    left_positions, right_positions = build.pair_positions(probe.column(left_key))
    if residuals:
        oriented = [_orient_predicate(p, probe.columns) for p in residuals]
        keep = _residual_mask(
            oriented,
            probe.columns,
            build.batch.columns,
            left_positions,
            right_positions,
        )
        left_positions = left_positions[keep]
        right_positions = right_positions[keep]
    yield from emit_chunks(
        _joined(probe, build.batch, left_positions, right_positions), batch_size
    )


def hash_join_array_batches(
    left: Iterator[ArrayBatch],
    right: Iterator[ArrayBatch],
    left_key: Attribute,
    right_key: Attribute,
    residuals: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Partitioned build/probe equi-join.

    The build (right) side is partitioned into contiguous key groups by one
    stable argsort — the array-world analogue of hash buckets, with bucket
    *insertion order* preserved by stability.  Probes binary-search their
    group and expand, so the output is in probe (left) order with matches
    in build input order — the streaming hash join's emission order
    exactly.  An empty build side returns without consuming the probe.
    """
    build = concat_array_batches(list(right))
    if build.length == 0:
        return
    probe = concat_array_batches(list(left))
    if probe.length == 0:
        return
    left_positions, right_positions = ArrayHashBuild(
        build, right_key
    ).pair_positions(probe.column(left_key))
    if residuals:
        oriented = [_orient_predicate(p, probe.columns) for p in residuals]
        keep = _residual_mask(
            oriented, probe.columns, build.columns, left_positions, right_positions
        )
        left_positions = left_positions[keep]
        right_positions = right_positions[keep]
    yield from emit_chunks(
        _joined(probe, build, left_positions, right_positions), batch_size
    )


# -- nested-loop join ---------------------------------------------------------


def nl_join_array_batches(
    left: Iterator[ArrayBatch],
    right: Iterator[ArrayBatch],
    predicates: Sequence[JoinPredicate] = (),
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Nested-loop (or cross) join via broadcast pair masks.

    Outer chunks are sized so the ``chunk × inner`` boolean matrix stays
    within :data:`NL_MASK_CELLS`; ``np.nonzero`` reads the matrix out
    row-major, which *is* the left-major emission order of the streaming
    engines.  The inner (right) side is consumed first; an empty inner
    returns without pulling the outer.
    """
    inner = concat_array_batches(list(right))
    if inner.length == 0:
        return
    outer = concat_array_batches(list(left))
    if outer.length == 0:
        return
    oriented = [_orient_predicate(p, outer.columns) for p in predicates]
    if not predicates:
        # Cross product: pure repeat/tile index arithmetic.
        left_positions = np.repeat(
            np.arange(outer.length, dtype=np.intp), inner.length
        )
        right_positions = np.tile(
            np.arange(inner.length, dtype=np.intp), outer.length
        )
        yield from emit_chunks(
            _joined(outer, inner, left_positions, right_positions), batch_size
        )
        return
    pairs = [
        _harmonized(outer.columns[la], inner.columns[ra]) for la, ra in oriented
    ]
    chunk = max(1, NL_MASK_CELLS // max(1, inner.length))
    for start in range(0, outer.length, chunk):
        stop = min(outer.length, start + chunk)
        mask = np.ones((stop - start, inner.length), dtype=bool)
        for lvals, rvals in pairs:
            mask &= lvals[start:stop, None] == rvals[None, :]
        li, right_positions = np.nonzero(mask)
        if not len(li):
            continue
        yield from emit_chunks(
            _joined(outer, inner, li + start, right_positions), batch_size
        )


# -- aggregation ---------------------------------------------------------------


def _run_boundaries(keys: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Start positions of the key runs of already-grouped key columns
    (adjacent-pair change mask; works for ``object`` columns too — NumPy
    degrades the ``!=`` to Python semantics there)."""
    change = np.zeros(length, dtype=bool)
    change[0] = True
    for column in keys:
        change[1:] |= np.asarray(column[1:] != column[:-1], dtype=bool)
    return np.nonzero(change)[0]


def _sequential_fold(function: str, values: list):
    """Order-preserving Python fold of one segment (left-to-right adds)."""
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    total = values[0]
    for value in values[1:]:
        total = total + value
    if function == "avg":
        return total / len(values)
    return total


def _segment_reduce(
    aggregate: AggregateSpec,
    column: np.ndarray | None,
    starts: np.ndarray,
    stops: np.ndarray,
    counts: np.ndarray,
    positions_for: "callable",
) -> np.ndarray:
    """One aggregate's per-segment output values.

    ``reduceat`` fast paths apply only where array-order reduction provably
    matches the engines' sequential fold: integer sums (exact, associative)
    and numeric extrema (order-insensitive).  Everything else — float sums
    (IEEE addition is not associative), ``avg`` (finalized with *native*
    Python division so no ``np.float64`` leaks into results), string or
    ``object`` extrema (no ``reduceat`` support) — folds each segment in
    original input order through native Python scalars, exactly like the
    pure-Python engines.  ``positions_for(start, stop)`` yields a segment's
    row positions in input order (contiguous for the stream aggregate, a
    sorted gather for the hash aggregate).
    """
    function = aggregate.function
    if function == "count":
        return counts.astype(np.int64)
    assert column is not None
    kind = column.dtype.kind
    fast = (function == "sum" and kind in ("i", "u")) or (
        function in ("min", "max") and kind in ("i", "u", "f")
    )
    if fast:
        segmented = column[
            np.concatenate([positions_for(s, t) for s, t in zip(starts, stops)])
        ]
        ufunc = {"sum": np.add, "min": np.minimum, "max": np.maximum}[function]
        run_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        return ufunc.reduceat(segmented, run_starts)
    values = column.tolist()
    out = []
    for start, stop in zip(starts.tolist(), stops.tolist()):
        segment = [values[p] for p in positions_for(start, stop)]
        out.append(_sequential_fold(function, segment))
    return infer_array(out)


def stream_aggregate_array_batches(
    batches: Iterator[ArrayBatch],
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Order-exploiting aggregation: the input arrives grouped on the keys,
    so the key runs *are* the groups — one change-mask pass finds every
    boundary, ``reduceat`` (or the order-preserving fallback) folds each
    segment, and groups emit in input order."""
    table = concat_array_batches(list(batches))
    if table.length == 0 or not table.columns:
        return
    key_columns = [table.column(a) for a in group_by]
    starts = _run_boundaries(key_columns, table.length)
    stops = np.append(starts[1:], table.length)
    counts = stops - starts

    def positions_for(start: int, stop: int) -> np.ndarray:
        return np.arange(start, stop, dtype=np.intp)

    columns: ArrayColumns = {
        a: column[starts] for a, column in zip(group_by, key_columns)
    }
    for aggregate in aggregates:
        column = (
            None
            if aggregate.argument is None
            else table.column(aggregate.argument)
        )
        columns[aggregate.output] = _segment_reduce(
            aggregate, column, starts, stops, counts, positions_for
        )
    yield from emit_chunks(ArrayBatch(columns, len(starts)), batch_size)


def hash_aggregate_array_batches(
    batches: Iterator[ArrayBatch],
    group_by: Sequence[Attribute],
    aggregates: Sequence[AggregateSpec],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[ArrayBatch]:
    """Hash aggregation via stable-sort segmentation.

    One stable argsort partitions the rows into contiguous key groups (the
    array-world hash table); each group's earliest original position
    recovers the streaming engines' **first-appearance** emission order.
    Order-sensitive aggregates fold each group's rows in original input
    order, so float sums match the dict-based engines bit for bit.
    Unorderable key values (no total order, so no argsort) degrade to the
    vector engine's dict grouping over native rows.
    """
    table = concat_array_batches(list(batches))
    if table.length == 0 or not table.columns:
        return
    key_columns = [table.column(a) for a in group_by]
    try:
        order = stable_order(key_columns, table.length)
    except TypeError:
        for batch in hash_aggregate_batches(
            iter([table.to_batch()]), group_by, aggregates, batch_size
        ):
            yield ArrayBatch.from_batch(batch)
        return
    sorted_keys = [column[order] for column in key_columns]
    starts = _run_boundaries(sorted_keys, table.length)
    stops = np.append(starts[1:], table.length)
    counts = stops - starts
    # Earliest original row position of each group == the moment the
    # streaming hash aggregate would have inserted its dict entry.
    first_seen = np.minimum.reduceat(order, starts)
    emit_order = np.argsort(first_seen, kind="stable")

    def positions_for(start: int, stop: int) -> np.ndarray:
        return np.sort(order[start:stop])

    columns: ArrayColumns = {
        a: column[starts][emit_order]
        for a, column in zip(group_by, sorted_keys)
    }
    for aggregate in aggregates:
        column = (
            None
            if aggregate.argument is None
            else table.column(aggregate.argument)
        )
        columns[aggregate.output] = _segment_reduce(
            aggregate, column, starts, stops, counts, positions_for
        )[emit_order]
    yield from emit_chunks(ArrayBatch(columns, len(starts)), batch_size)
