"""Morsel-driven pipeline fragments: the worker-side half of parallel execution.

A *fragment* is the largest plan region the morsel scheduler can run
data-parallel: a spine of joins followed left-downward from a node until the
first non-join operator (the fragment's *source*).  Joins qualify because
every engine emits them in **left-input-major** order — so executing the
probe side morsel by morsel and concatenating the per-morsel outputs in
morsel-index order reproduces the serial emission order bit-for-bit.
Everything else (sort enforcers, index scans, the source itself when it is
not a plain base-relation scan) is inherently order-dependent or a pipeline
breaker and stays serial in the parent.

The module is deliberately engine-agnostic and plan-free on the worker
side: the scheduler (:mod:`repro.exec.parallel`) compiles a fragment into a
:class:`FragmentPayload` — the materialized source, the per-morsel
selections, and one prebuilt join *build* per spine node — and workers only
ever see that payload plus a ``[start, stop)`` row span.  Payloads contain
no :class:`~repro.plangen.plan.PlanNode` objects, so they pickle cheaply to
process workers; counters travel back keyed by stable fragment-node
indexes (spine position, top-down) instead of object identity.

Build sides are shared across morsels, not rebuilt per morsel:

* vector hash joins get a :class:`VectorHashBuild` — the bucket index
  partitioned by key-hash into ``n_partitions`` dicts (one probe hashes
  its key, picks the partition, and reads the bucket);
* NumPy hash joins reuse :class:`~repro.exec.numpy_kernels.ArrayHashBuild`
  — one stable argsort partitions the build into contiguous key groups;
* merge and nested-loop joins share the materialized build batch itself —
  each contiguous probe morsel merged against the full (sorted) build
  reproduces the streaming merge's output for exactly those probe rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..core.attributes import Attribute
from ..plangen.plan import HASH_JOIN, MERGE_JOIN, NL_JOIN, PlanNode
from .aggregate import new_states, update_state
from .batch import Batch
from .executor import oriented_keys
from .vectorized import (
    DEFAULT_BATCH_SIZE,
    filter_indices,
    merge_join_batches,
    nl_join_batches,
    probe_hash_batches,
)

try:  # The NumPy flavor is optional, like the engine it serves.
    from .numpy_kernels import (
        ArrayHashBuild,
        concat_array_batches,
        filter_positions,
        merge_join_array_batches,
        nl_join_array_batches,
        probe_hash_array_batches,
    )

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only without numpy
    NUMPY_AVAILABLE = False

#: Default rows per morsel.  Large enough that per-morsel dispatch and
#: result shipping amortize, small enough that a 100k-row scan still fans
#: out across a handful of workers.
DEFAULT_MORSEL_SIZE = 8192

#: Operators a fragment spine may contain: all joins emit left-input-major,
#: so per-morsel execution over the left (probe) side is order-preserving.
PARALLEL_JOIN_OPS = frozenset({HASH_JOIN, MERGE_JOIN, NL_JOIN})

#: Per-morsel counter records: (fragment-node index, rows out, batches out).
MorselCounters = List[Tuple[int, int, int]]


@dataclass(frozen=True)
class Fragment:
    """A parallelizable plan region: a join spine over one source."""

    spine: tuple[PlanNode, ...]
    """The joins, top-down: ``spine[0]`` is the fragment root, each
    ``spine[i + 1]`` is ``spine[i].left``."""

    source: PlanNode
    """The first non-join node below the spine — the morsel source."""

    @property
    def source_index(self) -> int:
        """The source's stable counter index (spine nodes take 0..n-1)."""
        return len(self.spine)

    def nodes(self) -> tuple[PlanNode, ...]:
        """Fragment nodes by stable index: the spine, then the source."""
        return (*self.spine, self.source)


def extract_fragment(node: PlanNode) -> Fragment | None:
    """The join spine rooted at ``node``, or ``None`` for non-join roots.

    Follows left children only: the left side of every join is the probe
    side — the one whose order the output carries, hence the one that can
    be cut into contiguous morsels.  Build (right) sides are materialized
    serially by the scheduler, however deep their own subtrees are (a
    nested join spine on a build side becomes its own fragment when the
    scheduler compiles that subtree).
    """
    spine: list[PlanNode] = []
    current = node
    while current.op in PARALLEL_JOIN_OPS:
        spine.append(current)
        assert current.left is not None
        current = current.left
    if not spine:
        return None
    return Fragment(tuple(spine), current)


class VectorHashBuild:
    """A hash-join build partitioned by key-hash into shared partitions.

    ``n_partitions`` dicts, bucket ``hash(key) % n_partitions``; inside a
    bucket, positions keep build input order (insertion order), so probes
    emit bit-identically to the serial join's single-dict index.  The
    partitions are built once in the parent and shared read-only by every
    morsel — in process mode each worker receives them exactly once via
    the payload broadcast.
    """

    __slots__ = ("batch", "partitions", "n_partitions")

    def __init__(self, batch: Batch, right_key: Attribute, n_partitions: int = 1) -> None:
        self.batch = batch
        self.n_partitions = max(1, n_partitions)
        partitions: list[dict[object, list[int]]] = [
            {} for _ in range(self.n_partitions)
        ]
        for j, value in enumerate(batch.column(right_key)):
            partitions[hash(value) % self.n_partitions].setdefault(value, []).append(j)
        self.partitions = partitions

    def lookup(self, key: object) -> list[int] | None:
        """Build-row positions matching ``key`` (``None``: no match)."""
        return self.partitions[hash(key) % self.n_partitions].get(key)


@dataclass(frozen=True)
class JoinStep:
    """One spine join, compiled for per-morsel execution."""

    op: str
    index: int
    """Stable fragment-node index (spine position, top-down) — the key the
    parent uses to map worker counters back onto plan nodes."""

    left_key: Attribute | None
    right_key: Attribute | None
    residuals: tuple
    predicates: tuple
    """All predicates, nested-loop joins only (equi-joins split theirs into
    the oriented key pair plus ``residuals``)."""

    build: object
    """The shared build: :class:`VectorHashBuild` /
    :class:`~repro.exec.numpy_kernels.ArrayHashBuild` for hash joins, the
    materialized build batch for merge and nested-loop joins."""


@dataclass(frozen=True)
class FragmentPayload:
    """Everything a worker needs to run any morsel of one fragment."""

    flavor: str
    """``"vector"`` (list-column batches) or ``"numpy"`` (array batches)."""

    source: object
    """The morsel source: the base table (scan sources — selections are
    applied per morsel) or the serially materialized source output."""

    selections: tuple
    """Pushed-down selections of a scan source (empty otherwise — a
    materialized source is already filtered)."""

    source_index: int | None
    """Counter index workers report scan-source output under, or ``None``
    when the parent already counted the source while materializing it."""

    steps: tuple[JoinStep, ...]
    """The spine joins bottom-up — per-morsel execution order."""

    batch_size: int = DEFAULT_BATCH_SIZE
    check_merge_inputs: bool = False

    group_by: tuple = ()
    """Grouping keys of a partial-aggregation fragment (empty otherwise);
    set only when the scheduler runs morsels through
    :func:`run_morsel_aggregate`."""

    aggregates: tuple = ()
    """The :class:`~repro.query.query.AggregateSpec` set matching
    ``group_by`` — every function must merge exactly across morsel
    partitions (the scheduler gates on that before choosing this path)."""


def fragment_steps(
    fragment: Fragment,
    builds: Sequence[object],
    flavor: str,
    n_partitions: int = 1,
) -> tuple[JoinStep, ...]:
    """Compile a fragment's spine into bottom-up :class:`JoinStep`\\ s.

    ``builds`` are the materialized build batches aligned with
    ``fragment.spine`` (top-down).  Hash-join builds are indexed here, once,
    into the flavor's shared-build form.
    """
    steps: list[JoinStep] = []
    for position in reversed(range(len(fragment.spine))):
        node = fragment.spine[position]
        build = builds[position]
        if node.op == NL_JOIN:
            steps.append(
                JoinStep(
                    op=node.op,
                    index=position,
                    left_key=None,
                    right_key=None,
                    residuals=(),
                    predicates=tuple(node.predicates),
                    build=build,
                )
            )
            continue
        left_key, right_key = oriented_keys(node)
        if node.op == HASH_JOIN:
            if flavor == "numpy":
                build = ArrayHashBuild(build, right_key)
            else:
                build = VectorHashBuild(build, right_key, n_partitions)
        steps.append(
            JoinStep(
                op=node.op,
                index=position,
                left_key=left_key,
                right_key=right_key,
                residuals=tuple(node.predicates[1:]),
                predicates=(),
                build=build,
            )
        )
    return tuple(steps)


def _filtered_morsel(flavor: str, morsel, selections: Sequence):
    """Apply scan selections to one morsel, preserving row order."""
    if flavor == "numpy":
        positions = filter_positions(morsel, selections)
        return morsel if positions is None else morsel.take(positions)
    indices = filter_indices(morsel, selections)
    return morsel if indices is None else morsel.take(indices)


def _run_vector_step(step: JoinStep, batches: Iterable[Batch], payload: FragmentPayload):
    if step.op == HASH_JOIN:
        build: VectorHashBuild = step.build  # type: ignore[assignment]
        return probe_hash_batches(
            iter(batches),
            build.batch,
            build.lookup,
            step.left_key,
            step.residuals,
            payload.batch_size,
        )
    if step.op == MERGE_JOIN:
        # A contiguous morsel of a sorted probe stream is itself sorted, so
        # merging it against the full build reproduces the streaming merge
        # for exactly these probe rows.  The sortedness guard, when on,
        # checks within the morsel; cross-morsel boundaries are sorted by
        # construction (contiguous slices of one sorted source).
        return merge_join_batches(
            iter(batches),
            iter([step.build]),
            step.left_key,
            step.right_key,
            step.residuals,
            payload.batch_size,
            check_sorted=payload.check_merge_inputs,
        )
    return nl_join_batches(
        iter(batches), iter([step.build]), step.predicates, payload.batch_size
    )


def _run_numpy_step(step: JoinStep, batches: Iterable, payload: FragmentPayload):
    if step.op == HASH_JOIN:
        return probe_hash_array_batches(
            concat_array_batches(list(batches)),
            step.build,
            step.left_key,
            step.residuals,
            payload.batch_size,
        )
    if step.op == MERGE_JOIN:
        return merge_join_array_batches(
            iter(batches),
            iter([step.build]),
            step.left_key,
            step.right_key,
            step.residuals,
            payload.batch_size,
            check_sorted=payload.check_merge_inputs,
        )
    return nl_join_array_batches(
        iter(batches), iter([step.build]), step.predicates, payload.batch_size
    )


def run_morsel(
    payload: FragmentPayload, start: int, stop: int
) -> tuple[list, MorselCounters]:
    """Execute one ``[start, stop)`` morsel through the fragment pipeline.

    Returns the output batches (in emission order — the caller re-sequences
    whole morsels by morsel index) and the per-node counter records.  Runs
    identically inline, on a pool thread, or in a worker process; it only
    reads the payload, so one payload serves any number of concurrent
    morsels.
    """
    run_step = _run_numpy_step if payload.flavor == "numpy" else _run_vector_step
    morsel = payload.source.slice(start, stop)
    if payload.selections:
        morsel = _filtered_morsel(payload.flavor, morsel, payload.selections)
    counters: MorselCounters = []
    batches = [morsel] if morsel.length else []
    if payload.source_index is not None:
        counters.append((payload.source_index, morsel.length, len(batches)))
    for step in payload.steps:
        batches = list(run_step(step, batches, payload))
        counters.append(
            (step.index, sum(batch.length for batch in batches), len(batches))
        )
    return batches, counters


#: Per-morsel partial aggregate: (key tuple, accumulator states), in the
#: morsel's first-appearance order.
MorselPartials = List[Tuple[tuple, list]]


def run_morsel_aggregate(
    payload: FragmentPayload, start: int, stop: int
) -> tuple[MorselPartials, MorselCounters]:
    """Run one morsel through the fragment pipeline, then pre-aggregate its
    output into partial accumulator states.

    Partials come back in the morsel's first-appearance order; the parent
    merges whole morsels in submission order, so a key's global first
    appearance — and therefore the final emission order — is exactly the
    serial hash aggregate's dict insertion order.  Array batches are
    converted to native scalars *before* accumulation: states cross a
    process boundary and are merged with states from other morsels, so
    every partial must be built from the same value representation the
    serial engines fold.

    The aggregate operator's own counters are *not* reported here — the
    number of groups only exists after the parent's merge.
    """
    batches, counters = run_morsel(payload, start, stop)
    group_by = payload.group_by
    aggregates = payload.aggregates
    groups: "dict[tuple, list]" = {}
    for batch in batches:
        if payload.flavor == "numpy":
            batch = batch.to_batch()
        keys = batch.key_tuples(group_by)
        argument_columns = {
            a.argument: batch.column(a.argument)
            for a in aggregates
            if a.argument is not None
        }
        for i, key in enumerate(keys):
            states = groups.get(key)
            if states is None:
                states = groups[key] = new_states(aggregates)
            for j, aggregate in enumerate(aggregates):
                value = (
                    None
                    if aggregate.argument is None
                    else argument_columns[aggregate.argument][i]
                )
                states[j] = update_state(aggregate.function, states[j], value)
    return list(groups.items()), counters
