"""Typed columnar batches backed by NumPy arrays.

An :class:`ArrayBatch` is the NumPy engine's counterpart of
:class:`~repro.exec.batch.Batch`: the same parallel-columns layout keyed by
alias-qualified :class:`~repro.core.attributes.Attribute`, but every column
is an ``np.ndarray`` instead of a Python list, so gathers, sorts, and join
expansions run as array kernels instead of interpreter loops.

Dtype inference (:func:`infer_array`) maps the reproduction's value world
onto three array types:

* all-``int`` columns become ``int64`` (values outside the 64-bit range
  fall back to ``object`` — bit-identity beats speed);
* all-``str`` columns become fixed-width unicode (``<U``);
* anything mixed or exotic becomes ``object`` — NumPy then compares with
  the *Python* operators, so results stay bit-identical with the
  pure-Python engines by construction.

A catalog :class:`~repro.catalog.schema.Column` may carry an explicit
``dtype`` hint (``"int"`` / ``"str"`` / ``"float"``); hints take precedence
over value scanning and give empty columns a real dtype.

Conversion back to the row world always goes through ``ndarray.tolist()``,
which yields native Python scalars — ``repr``-based differential
comparison (:meth:`ExecutionResult.multiset`) would otherwise see
``np.int64(5)`` where the row engine produced ``5``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence

import numpy as np

from ..core.attributes import Attribute
from .batch import Batch
from .data import Row

ArrayColumns = Dict[Attribute, np.ndarray]

#: Catalog dtype hints understood by :func:`infer_array`.
DTYPE_HINTS = ("int", "str", "float")

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def infer_array(values: Sequence, hint: str | None = None) -> np.ndarray:
    """A one-dimensional array for a column's values, dtype-inferred.

    ``hint`` pins the dtype from the catalog schema; without one the values
    are scanned.  ``object`` is the safe harbor: NumPy falls back to Python
    comparisons there, so no inference miss can change an answer.
    """
    if hint is not None:
        if hint == "int":
            return np.asarray(values, dtype=np.int64)
        if hint == "str":
            return np.asarray(values, dtype=np.str_)
        if hint == "float":
            return np.asarray(values, dtype=np.float64)
        raise ValueError(
            f"unknown dtype hint {hint!r}; available: {', '.join(DTYPE_HINTS)}"
        )
    if values is not None and len(values):
        # `type(v) is ...`, not isinstance: bool is an int subclass, and a
        # bool column silently becoming int64 would change its repr.
        if all(
            type(v) is int and _INT64_MIN <= v <= _INT64_MAX for v in values
        ):
            return np.asarray(values, dtype=np.int64)
        if all(type(v) is str for v in values):
            return np.asarray(values, dtype=np.str_)
    array = np.empty(len(values) if values is not None else 0, dtype=object)
    if len(array):
        array[:] = values
    return array


def _as_python_scalars(column: np.ndarray) -> list:
    """Native Python values of a column (``tolist`` demotes NumPy scalars)."""
    return column.tolist()


class ArrayBatch:
    """A fixed set of NumPy columns, all of the same length.

    Mirrors the :class:`~repro.exec.batch.Batch` surface the engines rely
    on (``length`` / ``to_rows`` / ``take`` / ``slice`` / ``key_tuples``),
    so :class:`~repro.exec.engine.ExecutionResult` and
    :func:`~repro.exec.batch.batches_to_rows` accept either kind.
    Columns are treated as immutable; ``slice`` returns views, ``take``
    fresh arrays.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: ArrayColumns, length: int | None = None) -> None:
        if length is None:
            length = len(next(iter(columns.values()))) if columns else 0
        for attribute, values in columns.items():
            if values.ndim != 1:
                raise ValueError(f"column {attribute} must be one-dimensional")
            if len(values) != length:
                raise ValueError(
                    f"column {attribute} has {len(values)} values, "
                    f"expected {length}"
                )
        self.columns = columns
        self.length = length

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Row],
        hints: Mapping[Attribute, str | None] | None = None,
    ) -> "ArrayBatch":
        """Transpose a row list into typed columns (empty input: no columns)."""
        return cls.from_batch(Batch.from_rows(rows), hints)

    @classmethod
    def from_batch(
        cls,
        batch: Batch,
        hints: Mapping[Attribute, str | None] | None = None,
    ) -> "ArrayBatch":
        """Convert a list-columned batch, inferring (or hinting) dtypes."""
        hints = hints or {}
        return cls(
            {
                attribute: infer_array(values, hints.get(attribute))
                for attribute, values in batch.columns.items()
            },
            batch.length,
        )

    # -- conversion -----------------------------------------------------------

    def to_batch(self) -> Batch:
        """Back to list columns (native Python scalars throughout)."""
        return Batch(
            {a: _as_python_scalars(v) for a, v in self.columns.items()},
            self.length,
        )

    def to_rows(self) -> List[Row]:
        """Transpose into the row engine's dict-per-tuple form."""
        return self.to_batch().to_rows()

    def iter_rows(self) -> Iterator[Row]:
        return iter(self.to_rows())

    # -- columnar operations --------------------------------------------------

    def column(self, attribute: Attribute) -> np.ndarray:
        try:
            return self.columns[attribute]
        except KeyError:
            raise KeyError(f"batch has no column {attribute}") from None

    def take(self, indices) -> "ArrayBatch":
        """Gather rows by position (fancy indexing, one kernel per column)."""
        indices = np.asarray(indices, dtype=np.intp)
        return ArrayBatch(
            {a: values[indices] for a, values in self.columns.items()},
            len(indices),
        )

    def slice(self, start: int, stop: int) -> "ArrayBatch":
        """Contiguous row range ``[start, stop)`` as views, zero-copy."""
        start = max(0, start)
        stop = min(self.length, stop)
        stop = max(start, stop)
        return ArrayBatch(
            {a: values[start:stop] for a, values in self.columns.items()},
            stop - start,
        )

    def key_tuples(self, attributes: Sequence[Attribute]) -> list[tuple]:
        """Per-row key tuples as native Python values (verify/sort keys)."""
        columns = [_as_python_scalars(self.column(a)) for a in attributes]
        return list(zip(*columns)) if columns else [()] * self.length

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"ArrayBatch({self.length} rows x {len(self.columns)} cols)"


def concat_array_batches(batches: Sequence[ArrayBatch]) -> ArrayBatch:
    """Materialize a batch sequence into one batch.

    Mirrors :func:`~repro.exec.batch.concat_batches`: all batches must share
    a column set, zero-column empties are skipped, and a single live batch
    is returned as-is (the dominant case once an operator has concatenated
    its input — no copy).
    """
    live = [b for b in batches if b.columns]
    if not live:
        return ArrayBatch({}, 0)
    if len(live) == 1:
        return live[0]
    first = live[0]
    for batch in live[1:]:
        if batch.columns.keys() != first.columns.keys():
            raise ValueError("cannot concatenate batches with different columns")
    return ArrayBatch(
        {
            a: np.concatenate([b.columns[a] for b in live])
            for a in first.columns
        },
        sum(b.length for b in live),
    )


def emit_chunks(batch: ArrayBatch, batch_size: int) -> Iterator[ArrayBatch]:
    """Re-emit one materialized result in ~``batch_size`` row views."""
    if batch.length == 0 or not batch.columns:
        return
    for start in range(0, batch.length, batch_size):
        yield batch.slice(start, start + batch_size)


def stable_order(key_columns: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Stable lexicographic argsort over multiple key columns.

    Composed from per-key stable argsorts, least-significant key first —
    the classic radix-style composition.  Works uniformly for ``int64``,
    unicode, and ``object`` columns (``np.lexsort`` rejects some object
    cases), and an empty key list degenerates to the identity permutation,
    matching the row engine's stable no-op sort.
    """
    indices = np.arange(length, dtype=np.intp)
    for column in reversed(key_columns):
        indices = indices[np.argsort(column[indices], kind="stable")]
    return indices
