"""The columnar batch: the unit of data flow of the vectorized engine.

A :class:`Batch` holds ``length`` tuples as *parallel column lists* keyed by
alias-qualified :class:`~repro.core.attributes.Attribute`.  Every column list
has exactly ``length`` elements; row ``i`` of the batch is the ``i``-th
element of every column.  This is the classic vectorized layout: operators
touch whole columns with list-level operations (slice, gather, extend)
instead of building one ``dict`` per tuple, which is where the row engine
spends most of its time.

Batches are value containers, not streams — streaming is the job of the
generator operators in :mod:`repro.exec.vectorized`, which pass batches
along a pipeline.  A batch never mutates a column list it received; gather
and slice build fresh lists (the source may be a shared base table).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence

from ..core.attributes import Attribute
from .data import Row

Columns = Dict[Attribute, list]


class Batch:
    """A fixed set of columns, all of the same length."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Columns, length: int | None = None) -> None:
        if length is None:
            length = len(next(iter(columns.values()))) if columns else 0
        for attribute, values in columns.items():
            if len(values) != length:
                raise ValueError(
                    f"column {attribute} has {len(values)} values, "
                    f"expected {length}"
                )
        self.columns = columns
        self.length = length

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "Batch":
        """Transpose a row list into columns (empty input yields no columns)."""
        if not rows:
            return cls({}, 0)
        columns: Columns = {attribute: [] for attribute in rows[0]}
        for row in rows:
            for attribute, values in columns.items():
                values.append(row[attribute])
        return cls(columns, len(rows))

    # -- conversion -----------------------------------------------------------

    def to_rows(self) -> List[Row]:
        """Transpose back into the row engine's dict-per-tuple form."""
        attributes = tuple(self.columns)
        columns = tuple(self.columns[a] for a in attributes)
        return [
            dict(zip(attributes, values)) for values in zip(*columns)
        ] if attributes else []

    def iter_rows(self) -> Iterator[Row]:
        attributes = tuple(self.columns)
        for i in range(self.length):
            yield {a: self.columns[a][i] for a in attributes}

    # -- columnar operations --------------------------------------------------

    def column(self, attribute: Attribute) -> list:
        try:
            return self.columns[attribute]
        except KeyError:
            raise KeyError(f"batch has no column {attribute}") from None

    def take(self, indices: Sequence[int]) -> "Batch":
        """Gather rows by position (the vectorized filter/sort primitive)."""
        return Batch(
            {
                attribute: [values[i] for i in indices]
                for attribute, values in self.columns.items()
            },
            len(indices),
        )

    def slice(self, start: int, stop: int) -> "Batch":
        """Contiguous row range ``[start, stop)`` as a new batch."""
        start = max(0, start)
        stop = min(self.length, stop)
        return Batch(
            {a: values[start:stop] for a, values in self.columns.items()},
            max(0, stop - start),
        )

    def key_tuples(self, attributes: Sequence[Attribute]) -> list[tuple]:
        """Per-row key tuples over the given attributes (sort/verify keys)."""
        columns = [self.column(a) for a in attributes]
        return list(zip(*columns)) if columns else [()] * self.length

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Batch({self.length} rows x {len(self.columns)} cols)"


def concat_batches(batches: Sequence[Batch]) -> Batch:
    """Materialize a batch sequence into one batch (the sort enforcer's and
    hash build's primitive).  All batches must share a column set; empty
    zero-column batches (from empty inputs) are skipped."""
    live = [b for b in batches if b.columns]
    if not live:
        return Batch({}, 0)
    first = live[0]
    columns: Columns = {a: list(values) for a, values in first.columns.items()}
    for batch in live[1:]:
        if batch.columns.keys() != columns.keys():
            raise ValueError("cannot concatenate batches with different columns")
        for attribute, values in batch.columns.items():
            columns[attribute].extend(values)
    return Batch(columns)


def batches_to_rows(batches: Sequence[Batch]) -> List[Row]:
    """Flatten a batch sequence into the row representation, in order."""
    rows: List[Row] = []
    for batch in batches:
        rows.extend(batch.to_rows())
    return rows


def rows_to_batches(
    rows: Sequence[Row], batch_size: int
) -> Iterator[Batch]:
    """Chunk a row list into batches of at most ``batch_size``."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(rows), batch_size):
        yield Batch.from_rows(rows[start : start + batch_size])


def empty_like(columns: Mapping[Attribute, list]) -> Columns:
    """Fresh empty output columns with the same attribute set."""
    return {attribute: [] for attribute in columns}
