"""Morsel scheduler: parallel engines over the serial kernels.

:class:`ParallelVectorEngine` and :class:`ParallelNumpyEngine` subclass
their serial counterparts and intercept exactly one seam — ``_compile`` —
so everything else (plan dispatch, counters, sort accounting, the
``workers=1`` path) *is* the serial engine, not a reimplementation of it.
When ``config.workers > 1`` and the node roots a parallelizable fragment
(a join spine over one source, :func:`~repro.exec.morsel.extract_fragment`),
the scheduler takes over:

1. **Build phase (serial, top-down).**  Each spine join's build (right)
   side is compiled through the ordinary serial ``_compile`` — counters
   and physical-sort accounting included — and materialized.  An empty
   build short-circuits the whole fragment exactly like the serial hash
   join does: the join emits nothing and nothing below it is pulled (its
   subtree stays ``not executed`` in ``explain analyze``).  Build subtrees
   may themselves contain join spines; those recurse into the scheduler,
   so bushy plans parallelize on both sides (one side at a time — only
   the driving thread dispatches).
2. **Morsel phase (parallel).**  The fragment source is cut into
   fixed-size morsels: a plain base-relation scan is sliced directly
   (zero-copy for array batches) with its selections applied per-morsel
   inside the workers; any other source (sort enforcers, index scans —
   the inherently order-dependent fragments) is materialized serially
   first and only the join pipeline above it fans out.  Workers run
   :func:`~repro.exec.morsel.run_morsel` over a shared
   :class:`~repro.exec.morsel.FragmentPayload`.
3. **Order-preserving merge.**  Futures are consumed strictly in
   submission order, so the concatenated output is the serial emission
   order bit-for-bit — no re-sort, no epilogue pass — and per-worker
   counters come back keyed by stable fragment-node indexes and are
   aggregated into the parent's :class:`~repro.exec.engine.ExecutionStats`.

Two dispatch modes share persistent pools (keyed by mode × worker count,
shut down atexit): ``thread`` for NumPy kernels that release the GIL and
for deterministic in-process testing, ``process`` for pure-Python vector
kernels that need real cores.  ``auto`` picks by flavor.  Process mode
ships each payload once per query as a pickled temp file — workers load
and cache it by path (mirroring ``service/pool.py``'s ship-once
``process_batch`` plumbing), so per-morsel submissions carry only the
``[start, stop)`` span instead of re-pickling the dataset per morsel.
"""

from __future__ import annotations

import atexit
import os
import pickle
import tempfile
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterator, Sequence

from ..plangen.plan import HASH_AGGREGATE, SCAN, PlanNode
from ..query.query import QuerySpec
from .aggregate import merge_states
from .batch import Batch, concat_batches
from .data import schema_dtype_hints
from .engine import ExecutionResult, ExecutionStats, NumpyEngine, VectorEngine
from .morsel import (
    Fragment,
    FragmentPayload,
    extract_fragment,
    fragment_steps,
    run_morsel,
    run_morsel_aggregate,
)
from .vectorized import grouped_output_batches

PARALLEL_MODES = ("auto", "thread", "process")


def resolve_parallel_mode(mode: str, flavor: str) -> str:
    """``auto`` → ``thread`` for NumPy kernels (they release the GIL in
    the hot loops), ``process`` for the pure-Python vector kernels (real
    cores or nothing)."""
    if mode == "auto":
        return "thread" if flavor == "numpy" else "process"
    return mode


# -- persistent pools ---------------------------------------------------------

_POOLS: dict[tuple[str, int], ThreadPoolExecutor | ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _pool(mode: str, workers: int):
    """The shared pool for (mode, workers) — created once, reused across
    queries so process workers keep their payload caches warm."""
    key = (mode, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if mode == "process":
                pool = ProcessPoolExecutor(max_workers=workers)
            else:
                pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-morsel"
                )
            _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every shared morsel pool (idempotent; re-created on use)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


atexit.register(shutdown_pools)


# -- process-mode payload shipping -------------------------------------------

#: Worker-side payload cache, keyed by broadcast-file path.  Bounded: a
#: long-lived pool would otherwise accumulate one dataset-sized payload
#: per query ever run through it.
_WORKER_PAYLOADS: dict[str, FragmentPayload] = {}
_WORKER_PAYLOAD_CACHE_SIZE = 4


def _load_payload(path: str) -> FragmentPayload:
    payload = _WORKER_PAYLOADS.get(path)
    if payload is None:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        while len(_WORKER_PAYLOADS) >= _WORKER_PAYLOAD_CACHE_SIZE:
            _WORKER_PAYLOADS.pop(next(iter(_WORKER_PAYLOADS)))
        _WORKER_PAYLOADS[path] = payload
    return payload


def _run_morsel_from_file(path: str, start: int, stop: int):
    """Process-pool entry point: load-and-cache the payload, run the morsel."""
    return run_morsel(_load_payload(path), start, stop)


def _run_morsel_aggregate_from_file(path: str, start: int, stop: int):
    """Process-pool entry point of the partial-aggregation path."""
    return run_morsel_aggregate(_load_payload(path), start, stop)


def partial_aggregation_exact(spec: QuerySpec) -> bool:
    """Whether per-morsel partial aggregation provably matches serial.

    ``count``/``min``/``max`` merge exactly under any partitioning.  ``sum``
    and ``avg`` reassociate additions across morsel boundaries, which is
    exact for integers but not for floats (IEEE addition is not
    associative) — so they qualify only when the catalog *declares* the
    argument column integer-typed.  Anything else keeps the serial hash
    aggregate (still running atop a parallelized join spine), preserving
    the bit-identical cross-engine contract.
    """
    for aggregate in spec.aggregates:
        if aggregate.function in ("sum", "avg"):
            attribute = aggregate.argument
            assert attribute is not None  # sum/avg always take a column
            hints = schema_dtype_hints(spec, attribute.relation)
            if hints.get(attribute) != "int":
                return False
    return True


def _broadcast_payload(payload: FragmentPayload) -> str:
    handle = tempfile.NamedTemporaryFile(
        prefix="repro-morsel-", suffix=".pkl", delete=False
    )
    with handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return handle.name


def _morsel_spans(length: int, size: int) -> list[tuple[int, int]]:
    return [(start, min(start + size, length)) for start in range(0, length, size)]


# -- the scheduler mixin ------------------------------------------------------


class _MorselMixin:
    """The scheduler, layered over a serial engine's ``_compile`` seam."""

    flavor = "vector"

    def execute(self, plan, spec, data) -> ExecutionResult:
        result = super().execute(plan, spec, data)
        result.stats.workers = self.config.workers
        return result

    def _compile(self, node, spec, dataset, stats) -> Iterator[Batch]:
        if self.config.workers > 1:
            if node.op == HASH_AGGREGATE and node.left is not None:
                # Partial aggregation: workers pre-aggregate their morsels
                # and the parent merges states — but only when every
                # aggregate merges exactly across partitions.  Otherwise
                # (and for stream aggregates, which fall through to the
                # serial compile below) the serial operator runs atop the
                # parallelized join spine: its child compile re-enters
                # this seam.
                fragment = extract_fragment(node.left)
                if fragment is not None and partial_aggregation_exact(spec):
                    return self._run_aggregate_fragment(
                        node, fragment, spec, dataset, stats
                    )
            fragment = extract_fragment(node)
            if fragment is not None:
                return self._run_fragment(fragment, spec, dataset, stats)
        return super()._compile(node, spec, dataset, stats)

    # -- fragment compilation (parent side, serial) ---------------------------

    def _materialize(self, node, spec, dataset, stats):
        """One subtree, drained through the counted compile (which may
        itself recurse into the scheduler for nested join spines)."""
        return self._concat(list(self._compile(node, spec, dataset, stats)))

    def _concat(self, batches):
        return concat_batches(batches)

    def _source_table(self, spec, dataset, alias):
        return dataset.batch(alias)

    def _prepare_fragment(
        self,
        fragment: Fragment,
        spec,
        dataset,
        stats: ExecutionStats,
        group_by: tuple = (),
        aggregates: tuple = (),
    ):
        """The serial prelude of a fragment run: builds, source, payload.

        Returns ``(payload, spans)`` — or ``None`` on an empty build side,
        the whole-fragment short-circuit (lower spine nodes and the source
        are never pulled and stay "not executed", exactly like the serial
        hash join's empty-build short-circuit).
        """
        # Build phase: drain build sides top-down.  Touching counters first
        # mirrors the serial engine, where pulling a join's output creates
        # its counter entry before the build side is consumed.
        builds = []
        for node in fragment.spine:
            stats.counters_for(node)
            build = self._materialize(node.right, spec, dataset, stats)
            if build.length == 0:
                return None
            builds.append(build)

        source_node = fragment.source
        if source_node.op == SCAN:
            # Scan sources are morselized in place: workers slice the base
            # table and apply the pushed-down selections per morsel.
            table = self._source_table(spec, dataset, source_node.alias)
            selections = tuple(spec.selections_for(source_node.alias))
            source_index = fragment.source_index
            stats.counters_for(source_node)
        else:
            # Order-dependent sources (sort enforcers, index scans) run
            # serially — counted and sort-accounted by the serial compile —
            # and only the join pipeline above them fans out.
            table = self._materialize(source_node, spec, dataset, stats)
            selections = ()
            source_index = None

        payload = FragmentPayload(
            flavor=self.flavor,
            source=table,
            selections=selections,
            source_index=source_index,
            steps=fragment_steps(
                fragment, builds, self.flavor, n_partitions=self.config.workers
            ),
            batch_size=self.config.batch_size,
            check_merge_inputs=self.config.check_merge_inputs,
            group_by=group_by,
            aggregates=aggregates,
        )
        return payload, _morsel_spans(table.length, self.config.morsel_size)

    def _apply_counters(self, counter_records, node_by_index, stats) -> None:
        for index, rows, batch_count in counter_records:
            counters = stats.counters_for(node_by_index[index])
            counters.rows += rows
            counters.batches += batch_count

    def _run_fragment(
        self, fragment: Fragment, spec, dataset, stats: ExecutionStats
    ) -> Iterator[Batch]:
        prepared = self._prepare_fragment(fragment, spec, dataset, stats)
        if prepared is None:
            return
        payload, spans = prepared
        node_by_index = fragment.nodes()
        for batches, counter_records in self._dispatch(payload, spans):
            self._apply_counters(counter_records, node_by_index, stats)
            yield from batches

    def _run_aggregate_fragment(
        self,
        node: PlanNode,
        fragment: Fragment,
        spec,
        dataset,
        stats: ExecutionStats,
    ) -> Iterator[Batch]:
        """Partial hash aggregation: morsels pre-aggregate, the parent
        merges.

        Each worker folds its morsel's join output into per-group partial
        states (:func:`~repro.exec.morsel.run_morsel_aggregate`); the
        parent merges whole morsels in submission order, so a group's
        global first appearance — the serial dict insertion order — is
        preserved, then finalizes and re-emits in ``batch_size`` chunks
        exactly like the serial hash aggregate.  Counters for the
        aggregate node itself are taken here (groups only exist after the
        merge); fragment counters travel back from the workers as usual.
        """
        counters = stats.counters_for(node)
        prepared = self._prepare_fragment(
            fragment,
            spec,
            dataset,
            stats,
            group_by=tuple(spec.group_by),
            aggregates=tuple(spec.aggregates),
        )
        if prepared is None:
            return
        payload, spans = prepared
        node_by_index = fragment.nodes()
        merged: dict[tuple, list] = {}
        for partials, counter_records in self._dispatch(
            payload, spans, aggregate=True
        ):
            self._apply_counters(counter_records, node_by_index, stats)
            for key, states in partials:
                existing = merged.get(key)
                if existing is None:
                    merged[key] = states
                else:
                    merged[key] = merge_states(spec.aggregates, existing, states)
        for batch in grouped_output_batches(
            merged, spec.group_by, spec.aggregates, self.config.batch_size
        ):
            batch = self._output_batch(batch)
            counters.rows += batch.length
            counters.batches += 1
            yield batch

    def _output_batch(self, batch: Batch):
        """Flavor hook: merged aggregate output leaves here as the engine's
        native batch kind (list columns for vector, arrays for NumPy)."""
        return batch

    # -- morsel dispatch ------------------------------------------------------

    def _dispatch(
        self,
        payload: FragmentPayload,
        spans: Sequence[tuple[int, int]],
        *,
        aggregate: bool = False,
    ):
        """Run every morsel; yield (batches, counters) in morsel order.

        Consuming futures strictly in submission order is the whole
        order-preservation story: morsel outputs concatenate back into the
        serial emission order, whatever order workers finished in.  With
        ``aggregate`` set, morsels run through the partial-aggregation
        entry point and yield (partials, counters) instead.
        """
        runner = run_morsel_aggregate if aggregate else run_morsel
        if len(spans) <= 1:
            for start, stop in spans:
                yield runner(payload, start, stop)
            return
        mode = resolve_parallel_mode(self.config.parallel_mode, self.flavor)
        if mode == "thread":
            pool = _pool("thread", self.config.workers)
            futures = [
                pool.submit(runner, payload, start, stop)
                for start, stop in spans
            ]
            yield from _drain_in_order(futures)
            return
        file_runner = (
            _run_morsel_aggregate_from_file if aggregate else _run_morsel_from_file
        )
        path = _broadcast_payload(payload)
        try:
            pool = _pool("process", self.config.workers)
            futures = [
                pool.submit(file_runner, path, start, stop)
                for start, stop in spans
            ]
            yield from _drain_in_order(futures)
        finally:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass


def _drain_in_order(futures: list[Future]):
    try:
        for future in futures:
            yield future.result()
    finally:
        for future in futures:
            future.cancel()


class ParallelVectorEngine(_MorselMixin, VectorEngine):
    """Morsel-parallel vector engine (process pool by default)."""

    name = "parallel-vector"
    flavor = "vector"


class ParallelNumpyEngine(_MorselMixin, NumpyEngine):
    """Morsel-parallel NumPy engine (thread pool by default — the array
    kernels spend their time in NumPy ufuncs, which release the GIL)."""

    name = "parallel-numpy"
    flavor = "numpy"

    def _concat(self, batches):
        from .numpy_kernels import concat_array_batches

        return concat_array_batches(batches)

    def _source_table(self, spec, dataset, alias):
        return self._table(spec, dataset, alias)

    def _output_batch(self, batch: Batch):
        from .arraybatch import ArrayBatch

        return ArrayBatch.from_batch(batch)


PARALLEL_ENGINE_TYPES = {
    ParallelVectorEngine.name: ParallelVectorEngine,
    ParallelNumpyEngine.name: ParallelNumpyEngine,
}
