"""Admission control: bounded pending work plus per-client token buckets.

A serving tier that accepts every request degrades for *everyone* when
offered load exceeds capacity: queues grow without bound, every client's
latency climbs together, and the process eventually dies of memory instead
of answering anybody.  The admission controller sheds load at the door
instead:

* a **bounded global queue** — at most ``max_pending`` admitted requests
  may be in flight (queued or executing) at once; request number
  ``max_pending + 1`` is turned away immediately with
  ``REJECTED(queue_full)``;
* **per-client token buckets** — each client identity holds a bucket of
  ``Quota.burst`` tokens refilled at ``Quota.per_second``; a request with
  an empty bucket is turned away with ``REJECTED(quota)`` while every
  other client's traffic proceeds untouched.

Rejections are *structured replies*, not dropped connections: the client
always learns why (:class:`Rejection` renders the ``REJECTED(reason)``
protocol line), and the controller counts every decision so saturation is
observable before it becomes latency.

Time is injectable (``clock``) so quota behavior is deterministic under
test: a fake clock makes "one second passed, the bucket refilled" an exact
statement instead of a sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

#: Rejection reasons the serving tier can reply with.
REASON_QUEUE_FULL = "queue_full"
REASON_QUOTA = "quota"
REASON_DRAINING = "draining"


@dataclass(frozen=True)
class Rejection:
    """A structured shed-load decision (never an exception)."""

    reason: str
    client: str | None = None

    def reply_line(self) -> str:
        """The protocol reply — deterministic, so journals replay exactly."""
        return f"REJECTED({self.reason})"


@dataclass(frozen=True)
class Quota:
    """Per-client token-bucket parameters.

    ``burst`` tokens may be spent instantly; sustained throughput refills
    at ``per_second``.  ``per_second=0`` never refills — the bucket is a
    hard per-client request budget (useful for deterministic tests).
    """

    burst: int = 32
    per_second: float = 64.0

    def __post_init__(self) -> None:
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")
        if self.per_second < 0:
            raise ValueError(
                f"quota refill rate must be >= 0, got {self.per_second}"
            )


class TokenBucket:
    """One client's bucket: lazy refill on each acquire, no timer thread."""

    def __init__(
        self, quota: Quota, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._quota = quota
        self._clock = clock
        self._tokens = float(quota.burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Spend one token if available; refills for the time since the
        last call first (so a long-idle client regains its full burst)."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._stamp)
            self._stamp = now
            self._tokens = min(
                float(self._quota.burst),
                self._tokens + elapsed * self._quota.per_second,
            )
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token level (monitoring only; not refilled first)."""
        return self._tokens


class AdmissionTicket:
    """Proof of admission; release it when the request finishes.

    Releasing is idempotent — the done-callback path and an error path may
    both fire without double-freeing the pending slot.
    """

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass
class AdmissionStats:
    """Decision counters (rendered into the serving statistics)."""

    admitted: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    depth: int = 0
    high_water: int = 0

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def describe(self) -> str:
        by_reason = (
            ", ".join(
                f"{reason}={count}" for reason, count in sorted(self.rejected.items())
            )
            or "none"
        )
        return (
            f"admission         : {self.admitted} admitted, "
            f"{self.rejected_total} rejected ({by_reason}); "
            f"depth {self.depth} (high-water {self.high_water})"
        )


class AdmissionController:
    """Admit or shed each request before any parsing or routing happens.

    >>> control = AdmissionController(max_pending=2)
    >>> ticket = control.admit("alice")
    >>> isinstance(ticket, AdmissionTicket)
    True
    >>> ticket.release()

    The quota check runs first: an over-quota client is told ``quota`` even
    when the queue has room (its rejection is *its own fault*, and the slot
    stays free for in-quota traffic).  ``quota=None`` disables per-client
    limiting; ``max_pending`` always applies.
    """

    def __init__(
        self,
        *,
        max_pending: int = 256,
        quota: Quota | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.quota = quota
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._pending = 0
        self._admitted = 0
        self._rejected: dict[str, int] = {}
        self._high_water = 0

    # -- decisions ------------------------------------------------------------

    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            # Racy double-create is harmless (one bucket wins, one token
            # check is generous once); a lock here would serialize admits.
            bucket = self._buckets.setdefault(
                client, TokenBucket(self.quota, self._clock)
            )
        return bucket

    def admit(self, client: str | None = None) -> AdmissionTicket | Rejection:
        """One decision: a ticket (release it when done) or a rejection."""
        if self.quota is not None and client is not None:
            if not self._bucket(client).try_acquire():
                return self._reject(REASON_QUOTA, client)
        with self._lock:
            if self._pending >= self.max_pending:
                pass  # fall through to reject outside the lock
            else:
                self._pending += 1
                self._admitted += 1
                self._high_water = max(self._high_water, self._pending)
                return AdmissionTicket(self)
        return self._reject(REASON_QUEUE_FULL, client)

    def _reject(self, reason: str, client: str | None) -> Rejection:
        with self._lock:
            self._rejected[reason] = self._rejected.get(reason, 0) + 1
        return Rejection(reason, client)

    def _release(self) -> None:
        with self._lock:
            self._pending -= 1

    # -- introspection --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Admitted requests currently in flight (queued or executing)."""
        return self._pending

    def statistics(self) -> AdmissionStats:
        with self._lock:
            return AdmissionStats(
                admitted=self._admitted,
                rejected=dict(self._rejected),
                depth=self._pending,
                high_water=self._high_water,
            )

    def describe(self) -> str:
        return self.statistics().describe()
