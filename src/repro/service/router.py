"""Multi-process serving: consistent-hash shard routing with coalescing
and admission control in front.

The sharded :class:`~repro.service.pool.SessionPool` scales the paper's
prepared-state reuse across *threads*, but the GIL caps one process at
roughly one core of plan generation.  Serving a million-query stream needs
processes.  This module is that tier, assembled from three pieces:

**Serving frontends.**  :class:`ServingFrontend` is the request pipeline
every deployment shape shares: *admit* (shed load at the door with a
structured ``REJECTED(reason)`` reply — never an exception, never a
dropped request), *coalesce* (concurrent identical request lines collapse
onto one in-flight computation), *dispatch* (subclass-specific).
``submit(line)`` returns a future that always resolves to a
:class:`Reply`; ``ask`` is the blocking facade.  Two dispatch strategies:

* :class:`PoolFrontend` — in-process, over one :class:`SessionPool`
  (what a single-process ``serve`` uses);
* :class:`ShardRouter` — the tentpole: N **worker processes**, each
  hosting its own ``SessionPool``, fed over per-worker request queues and
  one shared response queue.

**Consistent-hash routing.**  The router places workers on a
:class:`HashRing` (sha256 points, ``replicas`` virtual nodes each) and
routes every request by the digest of its canonical *preparation
fingerprint* — the same template-stable key the pool's shards use.  All
variants of a template therefore land in one worker, whose prepared-state
cache amortizes the paper's one-time preparation exactly as in a single
process; and because the ring is consistent, resizing the fleet from N to
N+1 workers remaps only ~1/(N+1) of the templates instead of reshuffling
everything (pinned by ``tests/service/test_router.py``).  Routing needs
the fingerprint, which needs a parse — the parent caches the route per
*constant-masked* request line (:func:`template_signature`), so the
steady-state routing cost is one regex and one dict hit, with parsing
left to the workers where it parallelizes.

**Shared warm starts.**  Workers receive the same
:class:`~repro.service.session.SessionConfig`; when it names an
``artifact_dir``, every worker opens the same on-disk
:class:`~repro.service.artifacts.ArtifactStore`, so a preparation paid by
one process warm-starts the whole fleet.

Worker processes use the ``spawn`` start method (the parent runs threads;
forking a threaded process is a latent deadlock) and are daemons, so an
abandoned router can never orphan a worker past parent exit.  Graceful
shutdown is explicit: :meth:`ServingFrontend.drain` refuses new requests
with ``REJECTED(draining)`` and waits for in-flight replies, then
``close`` sends each worker a sentinel, collects its final statistics,
and joins it.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import queue as queue_module
import re
import threading
import time
from bisect import bisect_right
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable

from ..catalog.schema import Catalog
from ..core.optimizer import preparation_fingerprint
from ..plangen.dp import PlanGenResult
from ..query.sql import sql_to_query
from .admission import REASON_DRAINING, AdmissionController, Rejection
from .cache import LRUCache
from .coalesce import CoalesceStats, SingleFlight
from .pool import SessionPool
from .session import SessionConfig, SessionStatistics, analyze_for_config

#: Reply statuses.  ``rejected`` replies carry the structured
#: ``REJECTED(reason)`` line from admission control.
OK = "ok"
ERROR = "error"
REJECTED = "rejected"

#: Parsed-spec cache capacity (per worker / per frontend): request lines
#: repeat heavily under template skew, so parsing is worth memoizing, but
#: the cache must not grow with the constant-space of the workload.
_SPEC_CACHE_SIZE = 4096


@dataclass(frozen=True)
class Reply:
    """One serving answer: status, deterministic body, measured latency.

    The body is a pure function of the request (plan text and cost for
    ``ok``, the error line for ``error``, ``REJECTED(reason)`` for
    ``rejected``) — *no timing inside the body* — which is what makes a
    recorded journal replayable bit-for-bit.  ``elapsed_ms`` is stamped by
    the frontend (submit-to-reply, queueing included) and carried
    alongside; coalesced followers share their leader's measurement.
    """

    status: str
    body: str
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK


def render_plan(result: PlanGenResult) -> str:
    """The deterministic ``ok`` body: operator tree plus a cost trailer."""
    return (
        f"{result.best_plan.explain()}\n"
        f"-- cost {result.best_plan.cost:,.0f}, "
        f"{result.stats.plans_created} plans"
    )


def _reply_from_future(done: "Future[PlanGenResult]") -> Reply:
    error = done.exception()
    if error is not None:
        return Reply(ERROR, f"error: {error}")
    return Reply(OK, render_plan(done.result()))


def _resolved(reply: Reply) -> "Future[Reply]":
    future: "Future[Reply]" = Future()
    future.set_result(reply)
    return future


#: SQL constants: a quoted string or a bare number.  Replacing them with
#: ``?`` turns every variant of a template into one signature.
_CONSTANTS = re.compile(r"'[^']*'|\b\d+(?:\.\d+)?\b")


def template_signature(line: str) -> str:
    """Mask the constants out of a request line.

    ``SELECT ... WHERE a = 3`` and ``... WHERE a = 7`` share a signature —
    and, by construction of the preparation fingerprint (constants never
    enter it), the same route.  This is a *lexical* approximation of the
    fingerprint used purely as a route-cache key: a miss falls back to the
    real parse-analyze-fingerprint pipeline, so a query the mask treats as
    novel is merely routed the slow way, never routed wrong.
    """
    return _CONSTANTS.sub("?", line)


class HashRing:
    """Consistent hashing over ``slots`` targets with virtual nodes.

    Each slot contributes ``replicas`` sha256 points on a ring; a key is
    owned by the first point at or after its own hash.  Keys spread evenly
    (the virtual nodes smooth the gaps), and growing the ring from N to
    N+1 slots moves only the keys falling into the new slot's arcs —
    ~1/(N+1) of them — which is what lets a fleet resize without
    invalidating every worker's warm prepared-state cache.
    """

    def __init__(self, slots: int, *, replicas: int = 64) -> None:
        if slots < 1:
            raise ValueError(f"need at least one slot, got {slots}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.slots = slots
        self.replicas = replicas
        points = []
        for slot in range(slots):
            for replica in range(replicas):
                token = hashlib.sha256(f"slot-{slot}/{replica}".encode()).hexdigest()
                points.append((int(token[:16], 16), slot))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [slot for _, slot in points]

    def route(self, key: str) -> int:
        """The slot owning ``key`` (stable across processes and runs)."""
        point = int(hashlib.sha256(key.encode()).hexdigest()[:16], 16)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._owners[index]


# -- the serving pipeline ------------------------------------------------------


class ServingFrontend:
    """Admit -> coalesce -> dispatch; the pipeline every deployment shares.

    ``submit`` never raises and its future never carries an exception:
    every outcome — answer, optimizer error, shed load — is a
    :class:`Reply`, so a load harness can account for all offered requests
    ("zero dropped") by construction.  Subclasses implement ``_dispatch``
    (called on the single dispatcher thread; must eventually invoke the
    ``finish`` callback exactly once) and ``_collect`` (statistics).
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        admission: AdmissionController | None = None,
    ) -> None:
        self.catalog = catalog
        self.admission = admission
        self._flight = SingleFlight()
        # One dispatcher thread: route caches need no locks, and dispatch
        # itself is microseconds (the heavy work happens elsewhere).
        self._dispatcher = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="dispatch"
        )
        self._draining = False
        self._closed = False
        self._reject_lock = threading.Lock()
        self._draining_rejected = 0

    # -- the request path ------------------------------------------------------

    def submit(self, line: str, *, client: str | None = None) -> "Future[Reply]":
        """Serve one request line; the future always resolves to a Reply."""
        line = line.strip().rstrip(";")
        if self._draining or self._closed:
            with self._reject_lock:
                self._draining_rejected += 1
            return _resolved(
                Reply(REJECTED, Rejection(REASON_DRAINING, client).reply_line())
            )
        ticket = None
        if self.admission is not None:
            decision = self.admission.admit(client)
            if isinstance(decision, Rejection):
                return _resolved(Reply(REJECTED, decision.reply_line()))
            ticket = decision
        flight, leader = self._flight.lead_or_join(line)
        if not leader:
            # The follower frees its pending slot immediately — exactly one
            # unit of queued work exists for the key.  Its quota token stays
            # spent: the client did make a request.
            if ticket is not None:
                ticket.release()
            return flight
        started = time.monotonic()

        def finish(reply: Reply) -> None:
            stamped = replace(
                reply, elapsed_ms=(time.monotonic() - started) * 1000.0
            )
            if ticket is not None:
                ticket.release()
            self._flight.finish(line, flight, stamped)

        try:
            self._dispatcher.submit(self._dispatch, line, finish)
        except RuntimeError as error:  # shutdown raced the submit
            finish(Reply(ERROR, f"error: {error}"))
        return flight

    def ask(self, line: str, *, client: str | None = None) -> Reply:
        """Blocking facade over :meth:`submit`."""
        return self.submit(line, client=client).result()

    def _dispatch(self, line: str, finish: Callable[[Reply], None]) -> None:
        raise NotImplementedError

    # -- introspection ---------------------------------------------------------

    def _collect(self) -> SessionStatistics:
        raise NotImplementedError

    def statistics(self) -> SessionStatistics:
        """Aggregated serving statistics (sessions + coalescing layers).

        Frontend-level *joins* (identical lines collapsed before dispatch)
        are folded into the coalescing counters; frontend leads are not —
        every led request reaches the session layer below, which already
        counts it.  The exact balance ``queries + coalesce.joins ==
        requests admitted`` therefore holds across both layers.
        """
        stats = self._collect()
        stats.coalesce = CoalesceStats(
            leads=stats.coalesce.leads,
            joins=stats.coalesce.joins + self._flight.stats.joins,
        )
        return stats

    def _describe_extra(self) -> str:
        return ""

    def describe(self) -> str:
        """The ``\\stats`` rendering: sessions, admission, frontend."""
        parts = [self.statistics().describe()]
        if self.admission is not None:
            parts.append(self.admission.describe())
        extra = self._describe_extra()
        if extra:
            parts.append(extra)
        return "\n".join(parts)

    # -- lifecycle -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 30.0) -> bool:
        """Refuse new requests and wait for in-flight replies.

        Every request submitted after this point resolves immediately with
        ``REJECTED(draining)``; every request already in flight completes
        normally.  Returns True when the tier went quiet in time.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        while self._flight.in_flight():
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)
        return True

    def _shutdown(self) -> None:
        raise NotImplementedError

    def close(self, timeout: float = 30.0) -> None:
        """Drain, then release every resource (idempotent)."""
        if self._closed:
            return
        self.drain(timeout)
        self._closed = True
        self._dispatcher.shutdown(wait=True)
        self._shutdown()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PoolFrontend(ServingFrontend):
    """The in-process deployment shape: one shared :class:`SessionPool`.

    >>> from repro.catalog.tpch import tpch_catalog
    >>> with PoolFrontend(tpch_catalog(), n_shards=2) as frontend:
    ...     reply = frontend.ask(
    ...         "SELECT * FROM orders, lineitem "
    ...         "WHERE orders.o_orderkey = lineitem.l_orderkey"
    ...     )
    >>> reply.status
    'ok'

    An existing pool can be injected (``pool=``) — the frontend then
    leaves closing it to its owner, which is how :class:`PlanServer`
    wraps the pool it is handed.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        pool: SessionPool | None = None,
        n_shards: int = 4,
        config: SessionConfig | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        super().__init__(catalog, admission=admission)
        self._owns_pool = pool is None
        self.pool = (
            pool
            if pool is not None
            else SessionPool(catalog, n_shards=n_shards, config=config)
        )
        self.config = self.pool.config
        self._specs: LRUCache = LRUCache(_SPEC_CACHE_SIZE)

    def _dispatch(self, line: str, finish: Callable[[Reply], None]) -> None:
        try:
            spec = self._specs.get(line)
            if spec is None:
                spec = sql_to_query(line, self.catalog)
                self._specs.put(line, spec)
            inner = self.pool.submit(spec)
        except Exception as error:  # serving must survive a bad query
            finish(Reply(ERROR, f"error: {error}"))
            return
        inner.add_done_callback(lambda done: finish(_reply_from_future(done)))

    def _collect(self) -> SessionStatistics:
        return self.pool.statistics()

    def _shutdown(self) -> None:
        if self._owns_pool:
            self.pool.close()


# -- the multi-process router --------------------------------------------------


def _worker_serve(  # pragma: no cover - runs inside the spawned worker
    pool: SessionPool,
    catalog: Catalog,
    line: str,
    specs: LRUCache,
    responses,
    worker_id: int,
    request_id: int,
) -> None:
    """Serve one routed line inside a worker: parse, submit, reply async.

    The worker's main thread only parses (memoized) and submits; the
    shard's done-callback posts the reply, so a worker with several shards
    keeps them all busy instead of serializing behind one optimization.
    """
    try:
        spec = specs.get(line)
        if spec is None:
            spec = sql_to_query(line, catalog)
            specs.put(line, spec)
        inner = pool.submit(spec)
    except Exception as error:  # a bad query must never kill a worker
        responses.put(("reply", worker_id, request_id, Reply(ERROR, f"error: {error}")))
        return
    inner.add_done_callback(
        lambda done: responses.put(
            ("reply", worker_id, request_id, _reply_from_future(done))
        )
    )


def _worker_main(  # pragma: no cover - runs inside the spawned worker
    worker_id: int,
    catalog: Catalog,
    config: SessionConfig,
    n_shards: int,
    requests,
    responses,
) -> None:
    """Worker-process entry: one SessionPool served off a request queue.

    Top-level (picklable) by necessity under the spawn start method.
    Lifecycle: announce ``ready``, answer ``req``/``stats`` messages until
    the ``None`` sentinel, then drain, report final statistics (``bye``),
    and exit.  The final snapshot is taken with the drained-statistics
    path, which queues behind every in-flight optimization on its shard
    thread — and shard done-callbacks run before that snapshot task does,
    so every reply is flushed to the queue before the ``bye``.
    """
    pool = SessionPool(catalog, n_shards=n_shards, config=config)
    specs: LRUCache = LRUCache(_SPEC_CACHE_SIZE)
    responses.put(("ready", worker_id))
    try:
        while True:
            message = requests.get()
            if message is None:
                break
            kind = message[0]
            if kind == "req":
                _, request_id, line = message
                _worker_serve(
                    pool, catalog, line, specs, responses, worker_id, request_id
                )
            elif kind == "stats":
                responses.put(("stats", worker_id, pool.statistics()))
    finally:
        final = pool.statistics()  # drains: flushes in-flight replies first
        pool.close()
        responses.put(("bye", worker_id, final))


class ShardRouter(ServingFrontend):
    """Route request lines across N worker processes by template.

    The parent holds no optimizer state at all: it masks each line's
    constants (:func:`template_signature`), looks the signature up in an
    LRU route cache, and on a miss runs the real
    parse -> analyze -> fingerprint pipeline once to place the template on
    the :class:`HashRing`.  Workers do everything else — so plan
    generation, the CPU that matters, scales with processes while the
    parent's per-request cost stays at a regex plus two queue hops.

    Replies come back over one shared response queue serviced by a reader
    thread that resolves the submit futures; a worker that dies with
    requests outstanding fails exactly those requests with ``error``
    replies instead of hanging them.
    """

    #: How long `close` waits for worker byes / joins.
    _CLOSE_TIMEOUT = 30.0

    def __init__(
        self,
        catalog: Catalog,
        *,
        procs: int = 2,
        shards_per_proc: int = 2,
        config: SessionConfig | None = None,
        admission: AdmissionController | None = None,
        replicas: int = 64,
        start_method: str = "spawn",
        route_cache_size: int = 4096,
        ready_timeout: float = 120.0,
    ) -> None:
        super().__init__(catalog, admission=admission)
        if procs < 1:
            raise ValueError(f"need at least one worker process, got {procs}")
        self.procs = procs
        self.config = config or SessionConfig()
        self._ring = HashRing(procs, replicas=replicas)
        self._routes: LRUCache = LRUCache(route_cache_size)
        context = multiprocessing.get_context(start_method)
        self._requests = [context.Queue() for _ in range(procs)]
        self._responses = context.Queue()
        self._pending: dict[int, tuple[Callable[[Reply], None], int]] = {}
        self._pending_lock = threading.Lock()
        self._request_ids = itertools.count()
        self._outstanding = [0] * procs
        self._worker_stats: dict[int, SessionStatistics] = {}
        self._final_stats: dict[int, SessionStatistics] = {}
        self._stats_cond = threading.Condition()
        self._collect_lock = threading.Lock()
        self._stop_reader = False
        self._workers = [
            context.Process(
                target=_worker_main,
                args=(
                    index,
                    catalog,
                    self.config,
                    shards_per_proc,
                    self._requests[index],
                    self._responses,
                ),
                daemon=True,  # backstop: never orphan a worker past parent exit
                name=f"plan-worker-{index}",
            )
            for index in range(procs)
        ]
        for worker in self._workers:
            worker.start()
        self._await_ready(ready_timeout)
        self._reader = threading.Thread(
            target=self._read_responses, daemon=True, name="router-reader"
        )
        self._reader.start()

    # -- startup ---------------------------------------------------------------

    def _await_ready(self, timeout: float) -> None:
        """Block until every worker announced readiness (or fail loudly)."""
        deadline = time.monotonic() + timeout
        ready: set[int] = set()
        while len(ready) < self.procs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._abort_startup()
                raise RuntimeError(
                    f"worker processes failed to start within {timeout:.0f}s"
                )
            try:
                message = self._responses.get(timeout=min(remaining, 0.5))
            except queue_module.Empty:
                if any(not worker.is_alive() for worker in self._workers):
                    self._abort_startup()
                    raise RuntimeError("a worker process died during startup")
                continue
            if message[0] == "ready":
                ready.add(message[1])

    def _abort_startup(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
            worker.join(timeout=5.0)
        self._closed = True

    # -- dispatch --------------------------------------------------------------

    def _route(self, line: str) -> int:
        signature = template_signature(line)
        cached = self._routes.get(signature)
        if cached is not None:
            return cached
        spec = sql_to_query(line, self.catalog)
        info = analyze_for_config(spec, self.config)
        digest = preparation_fingerprint(
            info.interesting, info.fdsets, self.config.builder_options
        ).digest()
        worker_id = self._ring.route(digest)
        self._routes.put(signature, worker_id)
        return worker_id

    def _dispatch(self, line: str, finish: Callable[[Reply], None]) -> None:
        try:
            worker_id = self._route(line)
        except Exception as error:  # unparseable: answered by the parent
            finish(Reply(ERROR, f"error: {error}"))
            return
        request_id = next(self._request_ids)
        with self._pending_lock:
            self._pending[request_id] = (finish, worker_id)
            self._outstanding[worker_id] += 1
        self._requests[worker_id].put(("req", request_id, line))

    # -- the response reader ---------------------------------------------------

    def _read_responses(self) -> None:
        while True:
            try:
                message = self._responses.get(timeout=0.25)
            except queue_module.Empty:
                if self._stop_reader:
                    return
                self._fail_pending_of_dead_workers()
                continue
            kind = message[0]
            if kind == "reply":
                _, worker_id, request_id, reply = message
                with self._pending_lock:
                    entry = self._pending.pop(request_id, None)
                    if entry is not None:
                        self._outstanding[worker_id] -= 1
                if entry is not None:
                    entry[0](reply)
            elif kind == "stats":
                _, worker_id, stats = message
                with self._stats_cond:
                    self._worker_stats[worker_id] = stats
                    self._stats_cond.notify_all()
            elif kind == "bye":
                _, worker_id, stats = message
                with self._stats_cond:
                    self._final_stats[worker_id] = stats
                    self._stats_cond.notify_all()

    def _fail_pending_of_dead_workers(self) -> None:
        """Requests routed to a crashed worker get error replies, not hangs."""
        if self._closed:
            return
        dead = {
            index
            for index, worker in enumerate(self._workers)
            if not worker.is_alive()
        }
        if not dead:
            return
        victims: list[tuple[Callable[[Reply], None], int]] = []
        with self._pending_lock:
            for request_id, (finish, worker_id) in list(self._pending.items()):
                if worker_id in dead:
                    del self._pending[request_id]
                    self._outstanding[worker_id] -= 1
                    victims.append((finish, worker_id))
        for finish, worker_id in victims:
            finish(Reply(ERROR, f"error: worker process {worker_id} died"))

    # -- introspection ---------------------------------------------------------

    def queue_depths(self) -> tuple[int, ...]:
        """Requests outstanding per worker (dispatched, reply not yet in)."""
        with self._pending_lock:
            return tuple(self._outstanding)

    def _collect(self) -> SessionStatistics:
        with self._collect_lock:
            if self._closed:
                snapshots = list(self._final_stats.values())
            else:
                with self._stats_cond:
                    self._worker_stats.clear()
                for requests in self._requests:
                    requests.put(("stats",))
                with self._stats_cond:
                    self._stats_cond.wait_for(
                        lambda: len(self._worker_stats) + len(self._final_stats)
                        >= self.procs,
                        timeout=self._CLOSE_TIMEOUT,
                    )
                    snapshots = list(self._worker_stats.values()) + list(
                        self._final_stats.values()
                    )
        total = SessionStatistics()
        for snapshot in snapshots:
            total = total.add(snapshot)
        return total

    def _describe_extra(self) -> str:
        depths = ", ".join(str(depth) for depth in self.queue_depths())
        with self._reject_lock:
            draining = self._draining_rejected
        return (
            f"router            : {self.procs} worker process(es); "
            f"[{depths}] outstanding; {draining} draining rejection(s)"
        )

    # -- lifecycle -------------------------------------------------------------

    def _shutdown(self) -> None:
        for requests in self._requests:
            requests.put(None)
        with self._stats_cond:
            self._stats_cond.wait_for(
                lambda: len(self._final_stats) >= self.procs,
                timeout=self._CLOSE_TIMEOUT,
            )
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - crash-only path
                worker.terminate()
                worker.join(timeout=5.0)
        self._stop_reader = True
        self._reader.join(timeout=5.0)
        for channel in [*self._requests, self._responses]:
            channel.close()
