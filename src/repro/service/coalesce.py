"""Single-flight request coalescing.

Under template-skewed serving traffic the same request often arrives many
times *concurrently* — a burst of clients all asking for the hot template
while its preparation is still cold.  Without coalescing every one of them
queues its own optimization behind the shard thread; the answers are
identical, so all but the first are pure waste.  :class:`SingleFlight`
collapses the burst: the first arrival for a key becomes the **leader** and
actually performs the work, every concurrently-arriving duplicate becomes a
**follower** that waits on the leader's future and shares its result.  The
acceptance property (pinned by ``tests/service/test_coalesce.py``): K
concurrent identical cold requests perform exactly one preparation.

The map holds only *in-flight* work — an entry is removed the moment its
future resolves, so coalescing never caches results (that is the plan
cache's job) and never serves a stale answer.  Failures propagate to every
follower: if the leader's work raises, all coalesced waiters see the same
exception, exactly as if each had run the work itself.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

V = TypeVar("V")


@dataclass
class CoalesceStats:
    """Counters of one single-flight map (surfaced via pool statistics)."""

    leads: int = 0
    """Keys that dispatched real work (the cache-miss analogue)."""

    joins: int = 0
    """Requests that piggybacked on an already-in-flight identical key —
    each one is a whole optimization (or preparation) that never ran."""

    def add(self, other: "CoalesceStats") -> "CoalesceStats":
        return CoalesceStats(
            leads=self.leads + other.leads, joins=self.joins + other.joins
        )

    def describe(self) -> str:
        return f"{self.leads} led, {self.joins} joined"


class SingleFlight:
    """Coalesce concurrent work for identical keys onto one future.

    ``lead_or_join(key)`` returns ``(future, leader)``: the leader must
    eventually call :meth:`finish` (or :meth:`abandon` on a dispatch
    failure) with that key and future; followers just wait on the shared
    future.  ``run(key, supplier)`` is the blocking convenience wrapper for
    callers that do the work inline.

    Thread-safe; the lock only guards the in-flight map, never the work.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight: dict[Hashable, Future] = {}
        self.stats = CoalesceStats()

    def lead_or_join(self, key: Hashable) -> "tuple[Future, bool]":
        """Join the in-flight future for ``key``, or lead a new one."""
        with self._lock:
            future = self._in_flight.get(key)
            if future is not None:
                self.stats.joins += 1
                return future, False
            future = Future()
            self._in_flight[key] = future
            self.stats.leads += 1
            return future, True

    def _forget(self, key: Hashable, future: Future) -> None:
        with self._lock:
            if self._in_flight.get(key) is future:
                del self._in_flight[key]

    def finish(self, key: Hashable, future: Future, result: object) -> None:
        """Leader-side completion: publish ``result`` to every waiter.

        The entry leaves the map *before* the future resolves, so a request
        arriving after completion leads a fresh flight instead of being
        handed a stale answer.
        """
        self._forget(key, future)
        future.set_result(result)

    def fail(self, key: Hashable, future: Future, error: BaseException) -> None:
        """Leader-side failure: every coalesced waiter sees ``error``."""
        self._forget(key, future)
        future.set_exception(error)

    def resolve_with(self, key: Hashable, future: Future, source: Future) -> None:
        """Chain the flight's future to ``source`` (an async leader's real
        work): result or exception is copied over when ``source`` resolves,
        and the in-flight entry is dropped at that moment."""

        def copy(done: Future) -> None:
            self._forget(key, future)
            error = done.exception()
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(done.result())

        source.add_done_callback(copy)

    def run(self, key: Hashable, supplier: Callable[[], V]) -> "tuple[V, bool]":
        """Blocking convenience: do (or await) the work for ``key``.

        Returns ``(value, led)`` — ``led`` is True when this call actually
        ran ``supplier``.  Exceptions propagate to the leader *and* every
        follower alike.
        """
        future, leader = self.lead_or_join(key)
        if not leader:
            return future.result(), False
        try:
            value = supplier()
        except BaseException as error:
            self.fail(key, future, error)
            raise
        self.finish(key, future, value)
        return value, True

    def in_flight(self) -> int:
        """Number of keys currently being worked on."""
        with self._lock:
            return len(self._in_flight)
