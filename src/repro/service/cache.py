"""A small LRU cache with hit/miss/eviction statistics.

Both session caches (prepared FSM state and finished plans) are instances
of :class:`LRUCache`; the cache itself is policy-free — what makes each
cache sound is its *key* (see :mod:`repro.service.session` for the key
semantics).  Capacity 0 disables a cache entirely: every lookup is a miss
and nothing is ever stored, which gives an honest "caching off" baseline
for the benchmarks without a second code path.

Concurrency: caches are intentionally lock-free and therefore single-owner.
The supported concurrent path is :class:`repro.service.pool.SessionPool`,
which shards sessions by preparation fingerprint so each cache is only ever
touched by its shard's worker thread; ``check_owner=True`` asserts that
ownership discipline at runtime.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterator, TypeVar

V = TypeVar("V")


@dataclass
class CacheStats:
    """Lookup counters of one cache (reported by ``serve``/``batch``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def add(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (aggregating per-shard counters)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def describe(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.evictions} eviction(s), hit-rate {self.hit_rate:.1%}"
        )


class LRUCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction.

    ``get`` counts a hit or a miss and refreshes recency; ``put`` inserts
    (or refreshes) and evicts the least recently used entry when the
    capacity is exceeded.  Not thread-safe, deliberately: a session is a
    single-owner object, and the concurrent path is
    :class:`repro.service.pool.SessionPool`, which shards whole sessions
    (one dedicated worker thread per shard) so every cache stays
    single-threaded and lock-free.

    ``check_owner=True`` turns the convention into an enforced invariant:
    the first mutating access (``get``/``put``/``clear``) binds the cache to
    the calling thread and any later mutating access from a different
    thread raises ``RuntimeError``.  The pool enables this on its shard
    sessions; direct :class:`~repro.service.session.OptimizationSession`
    users can opt in via ``SessionConfig(enforce_single_owner=True)``.
    Read-only introspection (``len``, ``in``, ``keys``, ``stats``) is not
    checked — statistics snapshots are taken from the facade thread.

    ``on_evict`` is called with ``(key, value)`` for every entry that
    leaves the cache — LRU eviction in ``put`` and ``clear`` — *never*
    for a ``put`` that refreshes an existing key.  The session uses it to
    bank per-entry counters (materialized DFSM states) before the entry
    disappears, keeping cumulative statistics monotone across evictions.
    The hook runs on the owner thread and must not touch the cache
    reentrantly.
    """

    def __init__(
        self,
        capacity: int,
        *,
        check_owner: bool = False,
        on_evict: Callable[[Hashable, V], None] | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, V] = OrderedDict()
        self._check_owner = check_owner
        self._on_evict = on_evict
        self._owner: int | None = None

    def _assert_owner(self) -> None:
        if not self._check_owner:
            return
        ident = threading.get_ident()
        if self._owner is None:
            self._owner = ident
        elif self._owner != ident:
            raise RuntimeError(
                "LRUCache is single-owner (bound to the thread of its first "
                "access); route concurrent traffic through "
                "repro.service.pool.SessionPool instead of sharing a session "
                "across threads"
            )

    def get(self, key: Hashable) -> V | None:
        """Look up ``key``, counting a hit or miss; hits become most recent."""
        self._assert_owner()
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert ``key``; evicts the LRU entry beyond capacity."""
        self._assert_owner()
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted_key, evicted_value)

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value, building and storing it on a miss."""
        value = self.get(key)
        if value is None:
            value = factory()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (statistics are kept; ``on_evict`` sees each)."""
        self._assert_owner()
        if self._on_evict is not None:
            for key, value in self._entries.items():
                self._on_evict(key, value)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """Keys from least to most recently used."""
        return iter(self._entries.keys())

    def values(self) -> list[V]:
        """A snapshot of the values, least to most recently used.

        Read-only introspection: does not count lookups, refresh recency, or
        check ownership — the session uses it to aggregate statistics over
        live entries.  Returns a materialized list (not a live iterator) and
        retries the copy if the owner thread mutates the dict mid-copy, so
        the pool's ``drain=False`` monitoring glimpse stays safe: it may see
        a slightly stale snapshot, never an iteration error."""
        for _ in range(4):
            try:
                return list(self._entries.values())
            except RuntimeError:  # pragma: no cover - needs a mid-copy race
                continue
        return []  # pragma: no cover - persistent contention; glimpse empty
