"""Sharded concurrent serving: a pool of single-owner optimization sessions.

:class:`repro.service.session.OptimizationSession` is deliberately
single-threaded — its LRU caches are lock-free.  This module scales it out
without adding a single lock to the hot path:

**Shard-by-fingerprint.**  A :class:`SessionPool` owns ``n_shards``
sessions, each bound to a dedicated worker thread (a one-thread executor).
A query is routed by hashing the canonical
:class:`~repro.core.optimizer.PreparationFingerprint` of its preparation
input: every structurally equivalent query — the same template with
different constants — lands on the same shard, so each prepared DFSM is
built exactly once, lives in exactly one shard, and is only ever touched by
that shard's thread.  The caches therefore need no locks (the shard
sessions are created with ``enforce_single_owner=True``, which *asserts*
that discipline rather than assuming it).  Routing requires the query
analysis, which the pool performs in the calling thread and hands to the
session, so no work is repeated.

**Thread facade.**  ``optimize`` / ``optimize_batch`` are safe to call from
any number of client threads: they submit to the shard executors and block
on the future.  ``submit`` exposes the future itself for async callers (the
line-protocol server awaits it via ``asyncio.wrap_future``).  Statistics
are aggregated over shards; per-shard counters are only mutated by the
owning shard thread, so sums taken at quiescence are exact (no lost
updates).

**Process path.**  For CPU-bound *cold* batches the GIL makes threads a
correctness-only device; :func:`process_batch` partitions a workload over a
``ProcessPoolExecutor`` with the same fingerprint routing (template
variants stay together, preserving the amortization inside each worker).
It requires query specs, prepared optimizer state, and plan results to be
picklable — guarded by ``tests/service/test_pool.py``.  Worker processes
cannot receive a live ``backend_factory`` closure, so the process path
names its backend (``"fsm"`` / ``"simmen"``) and each worker builds a fresh
session around it.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from ..catalog.schema import Catalog
from ..core.optimizer import preparation_fingerprint
from ..plangen.backends import FsmBackend, OrderingBackend, SimmenBackend
from ..plangen.cost import DEFAULT_COST_MODEL, CostModel
from ..plangen.dp import PlanGenResult
from ..query.analyzer import QueryOrderInfo
from ..query.query import QuerySpec
from .artifacts import ArtifactStore
from .coalesce import CoalesceStats, SingleFlight
from .session import (
    OptimizationSession,
    SessionConfig,
    SessionStatistics,
    analyze_for_config,
    canonical_query_key,
)


class SessionPool:
    """Shard query traffic across N single-owner optimization sessions.

    >>> from repro.workloads import template_workload
    >>> pool = SessionPool(n_shards=2)
    >>> results = pool.optimize_batch(template_workload(2, 2))
    >>> pool.statistics().queries
    4
    >>> pool.close()

    The pool is a context manager (``with SessionPool() as pool: ...``);
    ``close`` drains the shard executors.  Plans are identical to a
    single-threaded session run — sharding changes *where* a query is
    answered, never the answer (guarded by the concurrency stress test).
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        *,
        n_shards: int = 4,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend_factory: Callable[[], OrderingBackend] | None = None,
        config: SessionConfig | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        # `config or SessionConfig()` at call time: the default reads
        # REPRO_PREPARE_MODE, which must track the live environment.
        self.config = replace(config or SessionConfig(), enforce_single_owner=True)
        # One persistent artifact store shared by every shard: its counters
        # are lock-protected and the files publish atomically, so shard
        # threads need no further coordination.  (The process path shares
        # through the filesystem instead — the directory travels in the
        # pickled config and every worker opens its own store over it.)
        self._artifact_store = (
            ArtifactStore(self.config.artifact_dir)
            if self.config.artifact_dir
            else None
        )
        self._sessions = [
            OptimizationSession(
                catalog,
                cost_model=cost_model,
                backend_factory=backend_factory,
                config=self.config,
                artifact_store=self._artifact_store,
            )
            for _ in range(n_shards)
        ]
        self._executors = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"shard-{i}")
            for i in range(n_shards)
        ]
        # Single-flight coalescing over the *whole pool*: concurrently
        # arriving identical requests (same canonical query key) dispatch
        # exactly one shard task; followers share the leader's future.  The
        # map only ever holds in-flight work, so results are never served
        # stale — re-asking after completion goes through the caches.
        self._single_flight = SingleFlight()
        # Per-shard pending counts (submitted, not yet completed).  Guarded
        # by one lock: depth bookkeeping is two integer ops per request,
        # nowhere near the contention that would justify per-shard locks.
        self._depths = [0] * n_shards
        self._depth_lock = threading.Lock()
        self._closed = False

    @property
    def artifact_store(self) -> ArtifactStore | None:
        """The store every shard session shares, if one is configured."""
        return self._artifact_store

    # -- routing --------------------------------------------------------------

    def shard_of(self, info: QueryOrderInfo) -> int:
        """Shard index of an analyzed query: hash of its fingerprint.

        The fingerprint digest is a stable hex string (sha256 prefix), so
        routing is deterministic across runs and across processes — the
        process path reuses it to partition batches.  Routing uses the
        *base* fingerprint (no enumerator component): the sessions record
        the resolved enumeration strategy in their own prepared-cache keys,
        and since resolution is a pure function of the query's relation
        count, every variant of a template still lands on one shard with
        one strategy.
        """
        fingerprint = preparation_fingerprint(
            info.interesting, info.fdsets, self.config.builder_options
        )
        return int(fingerprint.digest(), 16) % self.n_shards

    # -- the service API ------------------------------------------------------

    def submit(self, spec: QuerySpec) -> "Future[PlanGenResult]":
        """Route one query to its shard; returns a future for its result.

        Analysis (cheap, stateless) runs in the calling thread; everything
        that touches a cache runs on the shard's own thread.  Concurrent
        submissions of the *same* canonical query coalesce: only the first
        dispatches a shard task, the rest receive the same future (counted
        in ``statistics().coalesce``).  A failure anywhere — analysis in
        this thread, optimization on the shard — resolves the shared future
        with that exception for leader and followers alike.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        key = canonical_query_key(spec)
        flight, leader = self._single_flight.lead_or_join(key)
        if not leader:
            return flight
        try:
            info = analyze_for_config(spec, self.config)
            shard = self.shard_of(info)
            with self._depth_lock:
                self._depths[shard] += 1
            inner = self._executors[shard].submit(
                self._sessions[shard].optimize, spec, info=info
            )
        except BaseException as error:
            self._single_flight.fail(key, flight, error)
            raise

        def drop_depth(_: Future, shard: int = shard) -> None:
            with self._depth_lock:
                self._depths[shard] -= 1

        inner.add_done_callback(drop_depth)
        self._single_flight.resolve_with(key, flight, inner)
        return flight

    def optimize(self, spec: QuerySpec) -> PlanGenResult:
        """Optimize one query (blocking thread-safe facade)."""
        return self.submit(spec).result()

    def submit_execute(self, spec: QuerySpec, **kwargs) -> Future:
        """Route one query to its shard, optimize it there, and *execute*
        the chosen plan on that shard's thread (single-owner discipline
        covers the execution counters too).  Keyword arguments are those of
        :meth:`OptimizationSession.execute`."""
        if self._closed:
            raise RuntimeError("pool is closed")
        info = analyze_for_config(spec, self.config)
        shard = self.shard_of(info)

        def run() -> object:
            return self._sessions[shard].execute(spec, **kwargs)

        return self._executors[shard].submit(run)

    def execute(self, spec: QuerySpec, **kwargs):
        """Optimize and execute one query (blocking thread-safe facade);
        returns the :class:`~repro.exec.engine.ExecutionResult`."""
        return self.submit_execute(spec, **kwargs).result()

    def optimize_batch(self, specs: Iterable[QuerySpec]) -> list[PlanGenResult]:
        """Optimize a workload, fanning out across shards.

        Results come back in input order; distinct templates proceed in
        parallel on their shards while same-template queries are serialized
        behind their shard's thread (which is what keeps caches lock-free).
        """
        return [future.result() for future in [self.submit(s) for s in specs]]

    # -- introspection / lifecycle --------------------------------------------

    def statistics(self) -> SessionStatistics:
        """Aggregated counters over all shards."""
        return self.shard_statistics(drain=True)

    def shard_statistics(self, *, drain: bool = True) -> SessionStatistics:
        """Aggregated counters, optionally drained behind in-flight work.

        With ``drain=True`` (default) each snapshot is taken *on* its shard
        thread, queued behind any in-flight queries, so the sums are exact:
        counters are only ever mutated by the owning shard thread, which
        makes the aggregation free of lost updates by construction.
        ``drain=False`` reads concurrently — a cheap, possibly mid-query
        glimpse for monitoring.
        """
        if drain and not self._closed:
            snapshots = [
                executor.submit(session.statistics).result()
                for executor, session in zip(self._executors, self._sessions)
            ]
        else:
            snapshots = [session.statistics() for session in self._sessions]
        total = SessionStatistics()
        for snapshot in snapshots:
            total = total.add(snapshot)
        # Pool-level observability: the sessions know nothing about the
        # traffic that never reached them (coalesced joins) or about queue
        # pressure — both live here, in the routing layer.
        flight = self._single_flight.stats
        total.coalesce = CoalesceStats(leads=flight.leads, joins=flight.joins)
        with self._depth_lock:
            total.shard_depths = tuple(self._depths)
        return total

    def clear_caches(self) -> None:
        """Drop all cached state on every shard (on the shard threads)."""
        for future in [
            executor.submit(session.clear_caches)
            for executor, session in zip(self._executors, self._sessions)
        ]:
            future.result()

    def close(self) -> None:
        """Drain and shut down the shard executors (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the process path ----------------------------------------------------------

#: Backends the process path can name across a pickle boundary.  ``None``
#: (the default) is the session's own default: a cache-wired FsmBackend.
PROCESS_BACKENDS: dict[str, Callable[[], OrderingBackend]] = {
    "fsm": FsmBackend,
    "simmen": SimmenBackend,
}


def _optimize_chunk(
    payload: tuple[
        list[tuple[QuerySpec, QueryOrderInfo]], SessionConfig, str | None
    ]
) -> tuple[list[PlanGenResult], SessionStatistics]:
    """Worker entry: one fresh session optimizes one fingerprint-chunk.

    Top-level (picklable) by necessity.  The chunk arrives as one object
    graph, so specs sharing a catalog or template pickle it once; each spec
    travels with the analysis the parent already ran for routing, so
    workers never repeat it.
    """
    analyzed, config, backend_name = payload
    factory = PROCESS_BACKENDS[backend_name] if backend_name else None
    session = OptimizationSession(config=config, backend_factory=factory)
    results = [session.optimize(spec, info=info) for spec, info in analyzed]
    return results, session.statistics()


def process_batch(
    specs: Sequence[QuerySpec],
    *,
    workers: int | None = None,
    config: SessionConfig | None = None,
    backend: str | None = None,
) -> tuple[list[PlanGenResult], SessionStatistics]:
    """Optimize a cold batch on a process pool; returns (results, stats).

    Queries are partitioned by preparation-fingerprint hash — the same
    routing the thread pool uses — so all variants of a template land in
    one worker and are served from that worker's prepared-state cache.
    Results are returned in input order; statistics are the sum over
    workers.  Unlike :class:`SessionPool` the workers are ephemeral:
    nothing stays warm after the call, which is why this path targets
    *cold* CPU-bound batches (then the preparation work itself is what the
    extra cores buy back).
    """
    specs = list(specs)
    if config is None:
        config = SessionConfig()
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if backend is not None and backend not in PROCESS_BACKENDS:
        raise ValueError(
            f"unknown process backend {backend!r}; "
            f"available: {', '.join(sorted(PROCESS_BACKENDS))}"
        )

    analyzed = [(spec, analyze_for_config(spec, config)) for spec in specs]
    chunks: list[list[int]] = [[] for _ in range(workers)]
    for index, (_, info) in enumerate(analyzed):
        fingerprint = preparation_fingerprint(
            info.interesting, info.fdsets, config.builder_options
        )
        chunks[int(fingerprint.digest(), 16) % workers].append(index)
    occupied = [chunk for chunk in chunks if chunk]

    if len(occupied) <= 1 or workers == 1:
        # Nothing to parallelize — skip the fork entirely.
        results, stats = _optimize_chunk((analyzed, config, backend))
        return results, stats

    ordered: list[PlanGenResult | None] = [None] * len(specs)
    totals = SessionStatistics()
    with ProcessPoolExecutor(max_workers=min(workers, len(occupied))) as pool:
        futures = [
            (
                chunk,
                pool.submit(
                    _optimize_chunk,
                    ([analyzed[i] for i in chunk], config, backend),
                ),
            )
            for chunk in occupied
        ]
        for chunk, future in futures:
            results, stats = future.result()
            totals = totals.add(stats)
            for index, result in zip(chunk, results):
                ordered[index] = result
    return [r for r in ordered if r is not None], totals
