"""Persistent preparation artifacts: the one-time cost, amortized across
process restarts.

The paper's central trade is a one-time preparation cost (NFSM → DFSM
determinization + order tables) amortized over many plan-generation
calls.  The in-memory prepared-state cache amortizes it *within* a
process; this module amortizes it *across* processes: a prepared
:class:`~repro.core.optimizer.OrderOptimizer` is serialized once into a
versioned on-disk artifact keyed by its canonical
:class:`~repro.core.optimizer.PreparationFingerprint`, and every later
process (server restart, batch worker, CI leg) loads the finished machine
back instead of re-paying determinization.

**File format** (``<canonical digest>.ropt``)::

    magic   b"ROPT"
    u16 LE  format version
    u32 LE  header length
    JSON    header: format/codec versions, fingerprint digest,
            schema key, commit key, section lengths, body crc32
    bytes   pickle section  (symbolic state — see repro.core.serialize)
    bytes   table section   (numeric state — one frombytes on load)

**Self-invalidation, never a wrong plan.**  :meth:`ArtifactStore.load`
*never raises*: anything unexpected — a missing file, a truncated or
bit-flipped body, a foreign format version, an artifact written by a
different schema/commit, even a digest collision — is recorded under an
invalidation reason in :class:`ArtifactStats` and answered with ``None``,
which the caller treats as a plain cache miss (cold build).  The
commit/schema keys are checked *before* the pickle section is touched, so
a stale on-disk layout is rejected by its header, not by an unpickling
crash.  Degrading to a cold build is always correct because the artifact
is a pure cache: the cold path recomputes exactly the same machine.

**Concurrency.**  Saves write to a temporary file in the store directory
and publish with :func:`os.replace`, so a concurrent reader sees either
the previous artifact or the complete new one — never a torn write.  Two
processes racing to save the same fingerprint both succeed (identical
content; last replace wins).  Within one process the counters are
lock-protected, so a :class:`~repro.service.pool.SessionPool` can hand a
single store to every shard thread.
"""

from __future__ import annotations

import json
import os
import struct
import subprocess
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path

from .. import __version__
from ..core.optimizer import OrderOptimizer, PreparationFingerprint
from ..core.serialize import (
    TABLE_CODEC_VERSION,
    SerializationError,
    decode_optimizer,
    encode_optimizer,
)

MAGIC = b"ROPT"
FORMAT_VERSION = 1
ARTIFACT_SUFFIX = ".ropt"

_HEAD = struct.Struct("<4sHI")  # magic, format version, header length


def canonical_fingerprint(
    fingerprint: PreparationFingerprint,
) -> PreparationFingerprint:
    """The store key of a fingerprint: enumerator/mode stripped.

    Prepared state is independent of both the enumeration strategy and the
    preparation mode (a frozen lazy machine answers identically to an eager
    one), so the session cache's ``enumerator``/``mode`` key components
    would only fragment the store and re-pay determinization per mode.
    One artifact serves them all.
    """
    return replace(fingerprint, enumerator="", mode="eager")


def default_schema_key() -> str:
    """Layout key baked into every artifact header.

    Combines the package version with the table-codec version: either
    moving means the pickled dataclasses or the numeric sections may have
    changed shape, and artifacts from the other layout must cold-build.
    """
    return f"repro-{__version__}/tables-{TABLE_CODEC_VERSION}"


def default_commit_key() -> str:
    """The repository HEAD commit, or the schema key outside a checkout.

    Deployments that run from an installed package (no git) still get a
    meaningful key — the package version — rather than an always-equal
    constant.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - no git
        return default_schema_key()
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else default_schema_key()


@dataclass
class ArtifactStats:
    """Counters of one store (mirrored per-session into
    :class:`~repro.service.session.SessionStatistics`)."""

    hits: int = 0
    misses: int = 0
    saves: int = 0
    save_failures: int = 0
    invalidations: dict[str, int] = field(default_factory=dict)
    """Rejected loads by reason: ``corrupt`` (bad magic/header/crc/decode),
    ``truncated`` (body shorter than the header claims), ``version``
    (foreign format or table-codec version), ``schema`` / ``commit``
    (written by a different layout or source tree), ``fingerprint``
    (digest filename collision).  Every one degrades to a cold build."""

    @property
    def loads(self) -> int:
        return self.hits + self.misses

    def add(self, other: "ArtifactStats") -> "ArtifactStats":
        """Element-wise sum (aggregating per-worker stores)."""
        invalidations = dict(self.invalidations)
        for reason, count in other.invalidations.items():
            invalidations[reason] = invalidations.get(reason, 0) + count
        return ArtifactStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            saves=self.saves + other.saves,
            save_failures=self.save_failures + other.save_failures,
            invalidations=invalidations,
        )

    def describe(self) -> str:
        by_reason = (
            ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.invalidations.items())
            )
            or "none"
        )
        return (
            f"{self.hits} warm load(s), {self.misses} miss(es), "
            f"{self.saves} save(s), invalidations: {by_reason}"
        )


class ArtifactStore:
    """A directory of preparation artifacts keyed by canonical fingerprint.

    >>> store = ArtifactStore(tmp_path)
    >>> store.save(optimizer)          # after a cold prepare
    >>> warm = store.load(fingerprint) # next process: finished machine
    >>> warm is None                   # ... or None — plain cache miss
    False

    ``schema_key``/``commit`` default to the current source tree's keys;
    tests inject foreign values to exercise the self-invalidation paths.
    ``check_commit=False`` accepts artifacts across commits that share a
    schema key (an explicit opt-in for long-lived fleets; the default is
    the conservative one).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        schema_key: str | None = None,
        commit: str | None = None,
        check_commit: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.schema_key = schema_key if schema_key is not None else default_schema_key()
        self.commit = commit if commit is not None else default_commit_key()
        self.check_commit = check_commit
        self.stats = ArtifactStats()
        self._lock = threading.Lock()

    def path_for(self, fingerprint: PreparationFingerprint) -> Path:
        """Where the artifact for ``fingerprint`` lives (existing or not)."""
        return self.directory / (
            canonical_fingerprint(fingerprint).digest() + ARTIFACT_SUFFIX
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*" + ARTIFACT_SUFFIX))

    # -- save -----------------------------------------------------------------

    def save(self, optimizer: OrderOptimizer) -> Path | None:
        """Persist a prepared component; returns the path, or ``None``.

        ``None`` means the component is unsaveable (no fingerprint — only
        hand-rolled constructions lack one) or the write failed; a failed
        save is counted, not raised — artifact persistence is an
        optimization and must never take down the serving path.  A lazy
        component is frozen dense first (forcing full materialization:
        the artifact holds the complete machine, so a warm load replaces
        the *whole* build cost).
        """
        fingerprint = optimizer.fingerprint
        if fingerprint is None:
            with self._lock:
                self.stats.save_failures += 1
            return None
        path = self.path_for(fingerprint)
        try:
            table_meta, pickle_blob, table_blob = encode_optimizer(optimizer)
            header = json.dumps(
                {
                    "format": FORMAT_VERSION,
                    "tables": table_meta,
                    "digest": canonical_fingerprint(fingerprint).digest(),
                    "schema": self.schema_key,
                    "commit": self.commit,
                    "pickle_len": len(pickle_blob),
                    "table_len": len(table_blob),
                    "crc": zlib.crc32(pickle_blob + table_blob),
                },
                sort_keys=True,
            ).encode("utf-8")
            payload = (
                _HEAD.pack(MAGIC, FORMAT_VERSION, len(header))
                + header
                + pickle_blob
                + table_blob
            )
            # Atomic publish: a concurrent reader sees the old artifact or
            # the whole new one, never a partial write.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=ARTIFACT_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            with self._lock:
                self.stats.save_failures += 1
            return None
        with self._lock:
            self.stats.saves += 1
        return path

    # -- load -----------------------------------------------------------------

    def load(self, fingerprint: PreparationFingerprint) -> OrderOptimizer | None:
        """The stored prepared component for ``fingerprint``, or ``None``.

        Never raises.  ``None`` covers both a plain miss (no artifact) and
        every invalidation (see :class:`ArtifactStats.invalidations`) — the
        caller cold-builds either way, which is always correct because the
        artifact is a pure cache of a deterministic computation.
        """
        started = time.perf_counter()
        path = self.path_for(fingerprint)
        try:
            raw = path.read_bytes()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return None
        reason = "corrupt"
        try:
            if len(raw) < _HEAD.size:
                raise SerializationError("shorter than the fixed head")
            magic, version, header_len = _HEAD.unpack_from(raw)
            if magic != MAGIC:
                raise SerializationError(f"bad magic {magic!r}")
            if version != FORMAT_VERSION:
                reason = "version"
                raise SerializationError(f"format version {version}")
            body_at = _HEAD.size + header_len
            header = json.loads(raw[_HEAD.size : body_at].decode("utf-8"))
            if header.get("format") != FORMAT_VERSION:
                reason = "version"
                raise SerializationError("header format disagrees with head")
            if header.get("schema") != self.schema_key:
                reason = "schema"
                raise SerializationError(f"schema {header.get('schema')!r}")
            if self.check_commit and header.get("commit") != self.commit:
                reason = "commit"
                raise SerializationError(f"commit {header.get('commit')!r}")
            wanted = canonical_fingerprint(fingerprint)
            if header.get("digest") != wanted.digest():
                reason = "fingerprint"
                raise SerializationError("digest names a different preparation")
            pickle_len = int(header["pickle_len"])
            table_len = int(header["table_len"])
            body = raw[body_at:]
            if len(body) != pickle_len + table_len:
                reason = "truncated"
                raise SerializationError(
                    f"body is {len(body)} byte(s), "
                    f"header claims {pickle_len + table_len}"
                )
            if zlib.crc32(body) != header.get("crc"):
                raise SerializationError("body crc mismatch")
            optimizer = decode_optimizer(
                header["tables"], body[:pickle_len], body[pickle_len:]
            )
            loaded = optimizer.fingerprint
            if loaded is None or canonical_fingerprint(loaded) != wanted:
                # The digest matched but the full fingerprint does not: a
                # 64-bit collision (or a hand-edited file).  Serving it
                # would be a wrong plan; a cold build never is.
                reason = "fingerprint"
                raise SerializationError("fingerprint collision")
        except Exception:
            with self._lock:
                self.stats.misses += 1
                self.stats.invalidations[reason] = (
                    self.stats.invalidations.get(reason, 0) + 1
                )
            return None
        optimizer.stats.stage_ms["artifact_load"] = (
            time.perf_counter() - started
        ) * 1000.0
        with self._lock:
            self.stats.hits += 1
        return optimizer


__all__ = [
    "ARTIFACT_SUFFIX",
    "ArtifactStats",
    "ArtifactStore",
    "FORMAT_VERSION",
    "MAGIC",
    "canonical_fingerprint",
    "default_commit_key",
    "default_schema_key",
]
