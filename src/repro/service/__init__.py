"""Service layer: session-oriented optimization with shared-preparation caching.

The paper's economy is *pay preparation once, amortize it over O(1)-per-
lookup plan generation*.  This package extends that economy across
**queries**: an :class:`OptimizationSession` holds a prepared-state cache
(keyed by the order-insensitive preparation fingerprint, so structurally
equivalent queries — the same template with different constants — share one
NFSM/DFSM build) and a plan cache (keyed by the canonicalized query spec).
See :mod:`repro.service.session` for the exact cache-key semantics and
:class:`repro.service.cache.LRUCache` for the eviction policy/statistics.

Concurrent serving is layered on top without touching the session:
:class:`repro.service.pool.SessionPool` shards query traffic across N
single-owner sessions by preparation fingerprint (each prepared DFSM lives
in exactly one shard; caches stay lock-free), offers a thread-safe
``optimize``/``optimize_batch``/``submit`` facade with aggregated
statistics, and a :func:`repro.service.pool.process_batch` path for
CPU-bound cold batches.  :class:`repro.service.server.PlanServer` serves
the pool to concurrent network clients over an asyncio line protocol.

Serving at scale stacks three more layers (:mod:`repro.service.router`,
:mod:`repro.service.coalesce`, :mod:`repro.service.admission`): a
:class:`ShardRouter` consistent-hash-routes request lines by preparation
fingerprint across N worker *processes* (each hosting its own pool, all
sharing one artifact store for warm starts), a :class:`SingleFlight` map
collapses concurrent identical requests onto one computation, and an
:class:`AdmissionController` sheds overload with structured
``REJECTED(reason)`` replies — bounded queue globally, token-bucket
quotas per client.

The amortization even survives the process: an
:class:`repro.service.artifacts.ArtifactStore` persists prepared machines
as versioned on-disk artifacts keyed by canonical fingerprint, so a server
restart (or a fresh batch worker) warm-loads the finished DFSM + tables
instead of re-paying determinization.  Point ``SessionConfig(artifact_dir=
...)`` (or ``REPRO_ARTIFACT_DIR``) at a directory and every session and
pool shard checks the store before cold-building.

Quickstart::

    from repro.catalog.tpch import tpch_catalog
    from repro.service import OptimizationSession
    from repro.query.sql import sql_to_query

    catalog = tpch_catalog()
    session = OptimizationSession(catalog)
    result = session.optimize(sql_to_query("select * from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "order by orders.o_orderkey", catalog))
    print(result.best_plan.explain())
    print(session.statistics().describe())
"""

from .admission import (
    AdmissionController,
    AdmissionStats,
    Quota,
    Rejection,
    TokenBucket,
)
from .artifacts import ArtifactStats, ArtifactStore, canonical_fingerprint
from .cache import CacheStats, LRUCache
from .coalesce import CoalesceStats, SingleFlight
from .pool import SessionPool, process_batch
from .router import (
    HashRing,
    PoolFrontend,
    Reply,
    ServingFrontend,
    ShardRouter,
    render_plan,
    template_signature,
)
from .server import PlanServer, make_frontend, run_server
from .session import (
    OptimizationSession,
    SessionConfig,
    SessionStatistics,
    analyze_for_config,
    canonical_query_key,
    default_artifact_dir,
    default_prepare_mode,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "ArtifactStats",
    "ArtifactStore",
    "CacheStats",
    "CoalesceStats",
    "HashRing",
    "LRUCache",
    "OptimizationSession",
    "PlanServer",
    "PoolFrontend",
    "Quota",
    "Rejection",
    "Reply",
    "ServingFrontend",
    "SessionConfig",
    "SessionPool",
    "SessionStatistics",
    "ShardRouter",
    "SingleFlight",
    "TokenBucket",
    "analyze_for_config",
    "canonical_fingerprint",
    "canonical_query_key",
    "default_artifact_dir",
    "default_prepare_mode",
    "make_frontend",
    "process_batch",
    "render_plan",
    "run_server",
    "template_signature",
]
