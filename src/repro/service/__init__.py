"""Service layer: session-oriented optimization with shared-preparation caching.

The paper's economy is *pay preparation once, amortize it over O(1)-per-
lookup plan generation*.  This package extends that economy across
**queries**: an :class:`OptimizationSession` holds a prepared-state cache
(keyed by the order-insensitive preparation fingerprint, so structurally
equivalent queries — the same template with different constants — share one
NFSM/DFSM build) and a plan cache (keyed by the canonicalized query spec).
See :mod:`repro.service.session` for the exact cache-key semantics and
:class:`repro.service.cache.LRUCache` for the eviction policy/statistics.

This is the seam future scaling work (sharding, async serving,
multi-backend routing) plugs into: everything above it sees only
``optimize`` / ``optimize_batch``.

Quickstart::

    from repro.catalog.tpch import tpch_catalog
    from repro.service import OptimizationSession
    from repro.query.sql import sql_to_query

    catalog = tpch_catalog()
    session = OptimizationSession(catalog)
    result = session.optimize(sql_to_query("select * from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "order by orders.o_orderkey", catalog))
    print(result.best_plan.explain())
    print(session.statistics().describe())
"""

from .cache import CacheStats, LRUCache
from .session import (
    OptimizationSession,
    SessionConfig,
    SessionStatistics,
    canonical_query_key,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "OptimizationSession",
    "SessionConfig",
    "SessionStatistics",
    "canonical_query_key",
]
