"""Asyncio line-protocol plan server over a sharded session pool.

Replaces the blocking stdin ``serve`` loop for network traffic: an
:class:`asyncio` server accepts any number of concurrent client
connections; each line is one request, each response is a newline-framed
block terminated by a single blank line, so clients can stream requests
without knowing response lengths up front.

Protocol (text, one request per line):

* ``<SQL statement>``  — answered with the plan tree followed by a
  ``-- cost ..., N plans, M ms`` trailer;
* ``\\stats``          — aggregated pool statistics;
* ``\\quit`` / ``\\q`` — close this connection (EOF does the same);
* anything that fails to parse/bind/optimize is answered with a single
  ``error: ...`` line — a bad query must never take the server down.

Every response, including errors, ends with one empty line (the frame
terminator).  The event loop never runs optimizer work: parsing, analysis,
and plan generation happen on the pool's threads via ``run_in_executor``,
so a slow query only occupies its shard, not the accept loop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable

from ..bench import timed
from ..catalog.schema import Catalog
from ..query.sql import sql_to_query
from .pool import SessionPool
from .session import SessionConfig

#: Frame terminator: responses end with exactly one empty line.
END_OF_RESPONSE = "\n\n"


class PlanServer:
    """Serve plans to concurrent line-protocol clients from one pool.

    >>> # inside a running event loop:
    >>> # server = PlanServer(pool, catalog)
    >>> # await server.start(); ...; await server.stop()

    ``port=0`` binds an ephemeral port; the chosen one is in ``.port``
    after :meth:`start` (which is how the tests avoid collisions).
    """

    def __init__(
        self,
        pool: SessionPool,
        catalog: Catalog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.pool = pool
        self.catalog = catalog
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self.connections_served = 0
        self.connections_reset = 0
        """Connections that ended abruptly (client reset / broken pipe
        mid-frame) instead of via EOF or ``\\quit``.  Handled, counted, and
        otherwise identical to a clean close — an rude client must neither
        crash its handler task nor leak the connection accounting."""

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- per-connection loop ---------------------------------------------------

    def _answer(self, line: str) -> str:
        """Parse, route, optimize, render — runs on an executor thread."""
        try:
            with timed() as sw:
                result = self.pool.optimize(sql_to_query(line, self.catalog))
        except Exception as error:  # serving must survive a bad query
            return f"error: {error}"
        return (
            f"{result.best_plan.explain()}\n"
            f"-- cost {result.best_plan.cost:,.0f}, "
            f"{result.stats.plans_created} plans, {sw.ms:.1f} ms"
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                raw = await reader.readline()
                if not raw:  # EOF
                    break
                line = raw.decode("utf-8", errors="replace").strip().rstrip(";")
                if not line:
                    continue
                if line in ("\\quit", "\\q"):
                    break
                if line == "\\stats":
                    # The drained snapshot queues behind in-flight queries
                    # on every shard — keep that wait off the event loop
                    # too, or one heavy query would freeze all clients.
                    response = await loop.run_in_executor(
                        None, lambda: self.pool.statistics().describe()
                    )
                else:
                    # The blocking part (parse + shard round-trip) runs off
                    # the event loop; concurrent clients interleave freely.
                    response = await loop.run_in_executor(
                        None, self._answer, line
                    )
                writer.write(response.encode() + END_OF_RESPONSE.encode())
                await writer.drain()
        except asyncio.CancelledError:
            # Loop shutdown while idle in readline(): close quietly; a
            # connection handler has nobody upstream to propagate to.
            pass
        except ConnectionError:
            # The client vanished mid-conversation: readline() raises
            # ConnectionResetError on an RST, write()/drain() raise
            # BrokenPipeError once the peer is gone.  Nobody is left to
            # answer, so treat it as a disconnect — never let it escape as
            # an unhandled task exception.
            self.connections_reset += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass


def run_server(
    catalog: Catalog,
    *,
    host: str = "127.0.0.1",
    port: int = 7777,
    n_shards: int = 4,
    config: "SessionConfig | None" = None,
    started: "Callable[[PlanServer], None] | None" = None,
    shutdown: "threading.Event | None" = None,
) -> SessionPool:
    """Blocking entry point for the CLI: serve until interrupted.

    ``started`` is called with the live server once the port is bound
    (embedders and tests use it to learn an ephemeral port); setting the
    ``shutdown`` event from any thread stops the server cooperatively —
    without one, only ``KeyboardInterrupt`` ends the loop.  ``config``
    configures the shard sessions (notably ``artifact_dir`` for a
    warm-started fleet).  Returns the (closed) pool so the caller can
    print final statistics.
    """
    pool = SessionPool(catalog, n_shards=n_shards, config=config)

    async def main() -> None:
        server = PlanServer(pool, catalog, host=host, port=port)
        await server.start()
        print(
            f"serving on {server.host}:{server.port} with {n_shards} "
            "shard(s) — one SQL statement per line, responses are "
            "blank-line terminated; \\stats, \\quit"
        )
        if started is not None:
            started(server)
        try:
            if shutdown is None:  # pragma: no cover - interactive only
                await server.serve_forever()
            else:
                while not shutdown.is_set():
                    await asyncio.sleep(0.02)
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        pool.close()
    return pool
