"""Asyncio line-protocol plan server over a serving frontend.

Replaces the blocking stdin ``serve`` loop for network traffic: an
:class:`asyncio` server accepts any number of concurrent client
connections; each line is one request, each response is a newline-framed
block terminated by a single blank line, so clients can stream requests
without knowing response lengths up front.

Protocol (text, one request per line):

* ``<SQL statement>``   — answered with the plan tree followed by a
  ``-- cost ..., N plans`` trailer, or a structured
  ``REJECTED(reason)`` line when admission control sheds the request;
* ``\\client <name>``   — bind this connection's client identity (the
  per-client quota key; default ``conn-<n>``);
* ``\\stats``           — aggregated serving statistics;
* ``\\quit`` / ``\\q``  — close this connection (EOF does the same);
* anything that fails to parse/bind/optimize is answered with a single
  ``error: ...`` line — a bad query must never take the server down.

Every response, including errors and rejections, ends with one empty line
(the frame terminator).  The event loop never runs optimizer work: each
request is submitted to a :class:`~repro.service.router.ServingFrontend`
— an in-process :class:`~repro.service.router.PoolFrontend` or the
multi-process :class:`~repro.service.router.ShardRouter` — and awaited
via ``asyncio.wrap_future``, so a slow query only occupies its shard (or
its worker process), never the accept loop.

Shutdown is graceful: :func:`run_server` installs SIGINT/SIGTERM handlers
that *drain* — the listener closes (no new connections), in-flight
requests complete and their responses are written, then the frontend is
closed, which joins every worker process before the function returns.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from typing import Callable

from ..catalog.schema import Catalog
from .admission import AdmissionController
from .pool import SessionPool
from .router import PoolFrontend, ServingFrontend, ShardRouter
from .session import SessionConfig

#: Frame terminator: responses end with exactly one empty line.
END_OF_RESPONSE = "\n\n"

#: Signals run_server treats as a graceful-drain request.
_DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class PlanServer:
    """Serve plans to concurrent line-protocol clients from one frontend.

    >>> # inside a running event loop:
    >>> # server = PlanServer(pool, catalog)
    >>> # await server.start(); ...; await server.drain()

    The first argument is either a :class:`SessionPool` (wrapped in a
    :class:`PoolFrontend`; closing the pool stays the caller's job — the
    historical embedding contract) or a ready-made
    :class:`ServingFrontend` (used as is).  ``port=0`` binds an ephemeral
    port; the chosen one is in ``.port`` after :meth:`start` (which is
    how the tests avoid collisions).
    """

    def __init__(
        self,
        backend: "SessionPool | ServingFrontend",
        catalog: Catalog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if isinstance(backend, ServingFrontend):
            self.frontend = backend
            self.pool = backend.pool if isinstance(backend, PoolFrontend) else None
        else:
            self.pool = backend
            self.frontend = PoolFrontend(catalog, pool=backend)
        self.catalog = catalog
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        """Requests currently submitted and not yet answered — what
        :meth:`drain` waits out (touched only on the event loop)."""
        self.connections_served = 0
        self.connections_reset = 0
        """Connections that ended abruptly (client reset / broken pipe
        mid-frame) instead of via EOF or ``\\quit``.  Handled, counted, and
        otherwise identical to a clean close — a rude client must neither
        crash its handler task nor leak the connection accounting."""

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener immediately (in-flight requests are left to
        their handlers; use :meth:`drain` for the graceful variant)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self) -> None:
        """Graceful shutdown: refuse new connections, finish in-flight work.

        After this returns every submitted request has written its
        response; idle connections are still open (their handler tasks die
        with the loop) and the frontend is still running — the caller
        closes it once the loop is done.
        """
        await self.stop()
        while self._inflight:
            await asyncio.sleep(0.01)

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- per-connection loop ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        client_id = f"conn-{self.connections_served}"
        loop = asyncio.get_running_loop()
        try:
            while True:
                raw = await reader.readline()
                if not raw:  # EOF
                    break
                line = raw.decode("utf-8", errors="replace").strip().rstrip(";")
                if not line:
                    continue
                if line in ("\\quit", "\\q"):
                    break
                if line.startswith("\\client"):
                    name = line[len("\\client") :].strip()
                    if name:
                        client_id = name
                        response = f"ok client {client_id}"
                    else:
                        response = "error: \\client needs a name"
                elif line == "\\stats":
                    # The drained snapshot queues behind in-flight queries
                    # on every shard — keep that wait off the event loop
                    # too, or one heavy query would freeze all clients.
                    response = await loop.run_in_executor(
                        None, self.frontend.describe
                    )
                else:
                    # The frontend pipeline (admission, coalescing, shard
                    # or worker-process dispatch) runs entirely off the
                    # event loop; the future always resolves to a Reply.
                    self._inflight += 1
                    try:
                        reply = await asyncio.wrap_future(
                            self.frontend.submit(line, client=client_id)
                        )
                    finally:
                        self._inflight -= 1
                    response = reply.body
                writer.write(response.encode() + END_OF_RESPONSE.encode())
                await writer.drain()
        except asyncio.CancelledError:
            # Loop shutdown while idle in readline(): close quietly; a
            # connection handler has nobody upstream to propagate to.
            pass
        except ConnectionError:
            # The client vanished mid-conversation: readline() raises
            # ConnectionResetError on an RST, write()/drain() raise
            # BrokenPipeError once the peer is gone.  Nobody is left to
            # answer, so treat it as a disconnect — never let it escape as
            # an unhandled task exception.
            self.connections_reset += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass


def make_frontend(
    catalog: Catalog,
    *,
    procs: int = 1,
    n_shards: int = 4,
    config: "SessionConfig | None" = None,
    admission: "AdmissionController | None" = None,
) -> ServingFrontend:
    """The deployment-shape switch shared by ``serve`` and ``loadtest``:
    one process -> :class:`PoolFrontend` over ``n_shards`` shard threads;
    more -> :class:`ShardRouter` with ``procs`` worker processes of
    ``n_shards`` shards each."""
    if procs <= 1:
        return PoolFrontend(
            catalog, n_shards=n_shards, config=config, admission=admission
        )
    return ShardRouter(
        catalog,
        procs=procs,
        shards_per_proc=n_shards,
        config=config,
        admission=admission,
    )


def run_server(
    catalog: Catalog,
    *,
    host: str = "127.0.0.1",
    port: int = 7777,
    n_shards: int = 4,
    procs: int = 1,
    config: "SessionConfig | None" = None,
    admission: "AdmissionController | None" = None,
    started: "Callable[[PlanServer], None] | None" = None,
    shutdown: "threading.Event | None" = None,
) -> ServingFrontend:
    """Blocking entry point for the CLI: serve until interrupted.

    ``started`` is called with the live server once the port is bound
    (embedders and tests use it to learn an ephemeral port); setting the
    ``shutdown`` event from any thread stops the server cooperatively, and
    SIGINT/SIGTERM do the same when the loop runs on the main thread.
    Every stop is a *graceful drain*: new connections are refused,
    in-flight requests answer, worker processes are joined.  ``procs > 1``
    serves through a multi-process :class:`ShardRouter` (``n_shards``
    shard threads per worker); ``config`` configures the sessions (notably
    ``artifact_dir`` for a warm-started fleet) and ``admission`` bounds
    the offered load.  Returns the (closed) frontend so the caller can
    print final statistics.
    """
    frontend = make_frontend(
        catalog,
        procs=procs,
        n_shards=n_shards,
        config=config,
        admission=admission,
    )

    async def main() -> None:
        server = PlanServer(frontend, catalog, host=host, port=port)
        await server.start()
        workers = (
            f"{procs} worker process(es) x {n_shards} shard(s)"
            if procs > 1
            else f"{n_shards} shard(s)"
        )
        print(
            f"serving on {server.host}:{server.port} with {workers} "
            "— one SQL statement per line, responses are "
            "blank-line terminated; \\client <name>, \\stats, \\quit"
        )
        if started is not None:
            started(server)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in _DRAIN_SIGNALS:
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (ValueError, OSError, NotImplementedError, RuntimeError):
                pass  # non-main-thread embedding (tests) or bare platform
        try:
            if shutdown is None:
                await stop.wait()
            else:
                while not shutdown.is_set() and not stop.is_set():
                    await asyncio.sleep(0.02)
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.drain()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - handler-less platforms
        pass
    finally:
        frontend.close()
    return frontend
