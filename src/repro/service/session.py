"""The session-oriented optimization pipeline.

An :class:`OptimizationSession` fixes everything that is *not* the query —
catalog, cost model, builder options, plan-generation config, ordering
backend — and exposes ``optimize(query)`` / ``optimize_batch(queries)``.
Across queries it amortizes the paper's preparation phase through two
caches:

**Prepared-state cache** — keyed by the canonical
:class:`~repro.core.optimizer.PreparationFingerprint` of the preparation
inputs: the *sets* (order-insensitive) of produced/tested interesting
orders and groupings, the *set* of operator FD sets, and the builder
options.  Constant values never enter the key (an equality selection
contributes ``∅ -> attribute``, not the constant), so the same query
template issued with different constants — the dominant shape of real
workloads — fingerprints identically and skips NFSM/DFSM construction
entirely.  Reuse is sound because every :class:`OrderOptimizer` lookup is
by value, never by input position.

**Plan cache** — keyed by the canonicalized :class:`QuerySpec`
(:func:`canonical_query_key`): catalog identity, the relation/join/selection
*sets* (clause order is irrelevant), the ``ORDER BY`` / ``GROUP BY``
sequences (their order matters), selection constants (two queries with
different constants are different queries, even though they share prepared
state), and any selectivity overrides.  A hit skips plan generation
entirely and returns the previously computed :class:`PlanGenResult`.

Both caches are LRU with hit/miss/eviction statistics
(:class:`~repro.service.cache.CacheStats`), surfaced via
:meth:`OptimizationSession.statistics`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Hashable, Iterable

from ..catalog.schema import Catalog
from ..core.optimizer import (
    BuilderOptions,
    OrderOptimizer,
    PreparationFingerprint,
    preparation_fingerprint,
    resolve_preparation_mode,
)
from ..exec.data import Dataset, generate_dataset
from ..exec.engine import (
    ExecutionConfig,
    ExecutionResult,
    default_engine_name,
    default_worker_count,
    make_engine,
    parallel_engine_name,
    render_analyze,
)
from ..plangen.backends import FsmBackend, OrderingBackend
from ..plangen.cost import DEFAULT_COST_MODEL, CostModel
from ..plangen.dp import PlanGenConfig, PlanGenerator, PlanGenResult
from ..plangen.enumerate import resolve_enumerator
from ..query.analyzer import QueryOrderInfo, analyze
from ..query.predicates import EqualsConstant, RangePredicate
from ..query.query import QuerySpec
from .artifacts import ArtifactStore
from .cache import CacheStats, LRUCache
from .coalesce import CoalesceStats


def canonical_query_key(spec: QuerySpec) -> Hashable:
    """Canonical plan-cache key of a query.

    Two specs map to the same key exactly when they are the same query over
    the same catalog up to clause *ordering*: relations, joins, and
    selections are compared as sorted multisets (``FROM a, b`` equals
    ``FROM b, a``; a *repeated* predicate is kept — the cardinality model
    applies its selectivity per occurrence, so it changes the plan), while
    ``ORDER BY`` and ``GROUP BY`` keep their attribute sequence
    (``ORDER BY a, b`` differs from ``ORDER BY b, a``), and the aggregate
    list keeps its sequence too — it is the output column order.  Selection
    constants
    are part of the key — unlike the preparation fingerprint, a plan is an
    answer to one concrete query.  Constants are keyed by ``repr`` so
    unhashable values cannot break the cache.
    """
    selections = []
    for s in spec.selections:
        if isinstance(s, EqualsConstant):
            selections.append(("eq", s.attribute, repr(s.value)))
        elif isinstance(s, RangePredicate):
            selections.append(
                ("range", s.attribute, s.operator, repr(s.value), repr(s.upper_value))
            )
        else:  # pragma: no cover - SelectionPredicate is a closed union
            raise TypeError(f"unknown selection {s!r}")
    return (
        id(spec.catalog),
        tuple(sorted((r.table, r.alias) for r in spec.relations)),
        tuple(sorted(spec.joins, key=str)),
        tuple(sorted(selections)),
        None if spec.order_by is None else spec.order_by.attributes,
        spec.group_by,
        spec.aggregates,
        frozenset(spec.join_selectivities.items()),
    )


def default_prepare_mode() -> str:
    """The environment-configured preparation mode (``REPRO_PREPARE_MODE``).

    Read per :class:`SessionConfig` construction, so a test or a CI matrix
    leg can flip the whole service stack to lazy preparation without
    touching call sites.  Unset or empty means eager — the paper's default.
    A typo'd value raises here, at config construction, not per-query deep
    inside a shard thread.
    """
    mode = os.environ.get("REPRO_PREPARE_MODE", "") or "eager"
    resolve_preparation_mode(mode)  # fail fast on unknown names
    return mode


def default_artifact_dir() -> str:
    """The environment-configured artifact directory (``REPRO_ARTIFACT_DIR``).

    Read per :class:`SessionConfig` construction, like the preparation
    mode: a deployment or CI leg points the whole service stack at a
    persistent store without touching call sites.  Unset or empty means no
    store — sessions cold-build exactly as before.
    """
    return os.environ.get("REPRO_ARTIFACT_DIR", "")


@dataclass(frozen=True)
class SessionConfig:
    """Cache sizing and optimizer configuration of one session.

    A capacity of 0 disables the corresponding cache (honest baseline for
    the cold-vs-warm benchmark).  ``enforce_single_owner`` makes both
    caches assert that every mutating access comes from one thread — the
    discipline :class:`repro.service.pool.SessionPool` relies on (it turns
    this on for its shard sessions).
    """

    prepared_cache_size: int = 128
    plan_cache_size: int = 512
    builder_options: BuilderOptions = BuilderOptions()
    plangen: PlanGenConfig = PlanGenConfig(enable_aggregation=True)
    """Plan-generation options.  The service stack enables aggregation by
    default — sessions plan GROUP BY / DISTINCT queries with the
    grouping-aware operators (stream- or hash-aggregate); the low-level
    :class:`PlanGenConfig` keeps aggregation off so library callers opt in
    explicitly."""
    enforce_single_owner: bool = False
    prepare_mode: str = field(default_factory=default_prepare_mode)
    """Preparation mode for cache-built components (``"eager"`` / ``"lazy"``,
    see :data:`repro.core.optimizer.PREPARATION_MODES`).  Defaults to the
    ``REPRO_PREPARE_MODE`` environment variable, falling back to eager.
    Lazy keeps prepared-cache entries *warm in a stronger sense*: the LRU
    holds the growing machine, so every state one query materializes is a
    free O(1) lookup for every later query of the same template."""

    engine: str = field(default_factory=default_engine_name)
    """Execution engine ``execute``/``explain_analyze`` run plans on:
    ``"row"`` — the materializing reference oracle, ``"vector"`` — the
    streaming columnar engine, or ``"numpy"`` — the NumPy-accelerated
    columnar backend (requires the ``[speed]`` extra; without NumPy it
    falls back to the vector engine with a warning).  Defaults to the
    ``REPRO_EXEC_ENGINE`` environment variable, falling back to vector."""

    batch_size: int = 1024
    """Target rows per batch of the vectorized execution pipeline."""

    workers: int = field(default_factory=default_worker_count)
    """Morsel workers for plan execution (``REPRO_EXEC_WORKERS``; 1 =
    serial).  Above 1, ``execute``/``explain_analyze`` upgrade the
    configured ``vector``/``numpy`` engine to its morsel-parallel
    counterpart (:func:`~repro.exec.engine.parallel_engine_name`); the
    ``row`` reference oracle always stays serial."""

    artifact_dir: str = field(default_factory=default_artifact_dir)
    """Directory of the persistent preparation-artifact store
    (:class:`repro.service.artifacts.ArtifactStore`), or ``""`` for none.
    With a store, a prepared-cache miss first tries to *load* the finished
    machine from disk (warm start — the one-time cost was paid by an
    earlier process) and saves what it cold-builds for the next one.
    Defaults to the ``REPRO_ARTIFACT_DIR`` environment variable.  A plain
    string so the config pickles to ``process_batch`` workers unchanged —
    every worker opens its own store over the shared directory."""


def analyze_for_config(spec: QuerySpec, config: SessionConfig) -> QueryOrderInfo:
    """Run query analysis with exactly the flags ``config`` implies.

    Factored out so the sharded pool can analyze (and fingerprint) a query
    for routing *before* it reaches a session, and hand the session the
    finished analysis instead of repeating it.
    """
    return analyze(
        spec,
        include_tested_selections=config.plangen.include_tested_selections,
        include_groupings=config.plangen.enable_aggregation,
    )


@dataclass
class SessionStatistics:
    """Cumulative counters of one session (what ``serve``/``batch`` print)."""

    queries: int = 0
    prepared: CacheStats = field(default_factory=CacheStats)
    plans: CacheStats = field(default_factory=CacheStats)
    prepared_entries: int = 0
    plan_entries: int = 0
    enumerators: dict[str, int] = field(default_factory=dict)
    """Queries served per resolved join-enumeration strategy (``auto``
    resolves per query by relation count, so a mixed workload shows e.g.
    ``{"dpccp": 40, "greedy": 2}``).  Plan-cache hits count too: the
    strategy answered the query, whether freshly or from cache."""

    prepare_modes: dict[str, int] = field(default_factory=dict)
    """Queries served per preparation mode: the config's mode for the
    default backend, an injected FsmBackend's own ``prepare_mode`` for a
    factory session, nothing for backends without a preparation phase
    (Simmen).  A cap-triggered eager→lazy fallback still counts under the
    requested mode, matching the cache key."""

    states_materialized: int = 0
    """DFSM states materialized across the session's prepared-cache
    entries: the live entries' current counts *plus* the counts banked from
    every evicted entry (via the cache's eviction hook), so the counter is
    monotone across snapshots — an eviction between two reads can no longer
    make it go backwards.  Under eager preparation this tracks the summed
    full machine sizes; under lazy it is the working set the served queries
    actually reached."""

    states_total_known: int = 0
    """Summed full machine sizes over the entries whose total is known
    (eager entries; lazy entries don't know theirs without forcing the
    power set, which is the point).  Like ``states_materialized``, evicted
    entries stay counted — the metric is cumulative, not a live snapshot."""

    artifact_hits: int = 0
    """Prepared-cache misses served by a *warm load* from the persistent
    artifact store instead of a cold build.  Counted per session (each
    session counts its own loads), so per-shard statistics sum correctly
    even when every shard shares one store."""

    artifact_misses: int = 0
    """Prepared-cache misses the store could not serve (no artifact, or a
    stale/corrupt one that self-invalidated) — each one cold-built.  Zero
    on sessions without a configured store."""

    artifact_saves: int = 0
    """Cold-built components persisted to the artifact store for the next
    process to warm-load."""

    coalesce: CoalesceStats = field(default_factory=CoalesceStats)
    """Single-flight coalescing counters of the serving layer above the
    sessions: ``leads`` requests dispatched real work, ``joins`` arrived
    while an identical request was already in flight and shared its result
    without ever reaching a session.  A plain session reports zeros — the
    counters are filled in by :class:`~repro.service.pool.SessionPool` (and
    the multi-process router), whose coalesced requests are exactly the
    queries *missing* from ``queries``/``plans.lookups``: the exact balance
    is ``queries + coalesce.joins == requests offered``."""

    shard_depths: tuple[int, ...] = ()
    """Per-shard pending-request queue depths at snapshot time (submitted
    but not yet completed, including the one executing).  Empty for a plain
    session; the pool reports one slot per shard and the multi-process
    router concatenates worker pools' slots, so ``add`` concatenates rather
    than sums — depth is observability (is a shard saturating?), not a
    cumulative counter."""

    executions: int = 0
    """Plans physically executed through ``execute``/``explain_analyze``."""

    exec_rows: int = 0
    """Result rows those executions emitted (root operator output)."""

    exec_engines: dict[str, int] = field(default_factory=dict)
    """Executions served per engine, e.g. ``{"vector": 40, "row": 2}``."""

    exec_operators: dict[str, dict[str, int]] = field(default_factory=dict)
    """Cumulative per-operator execution counters: operator name →
    ``{"rows": ..., "batches": ..., "sorts": ...}`` summed over every
    executed plan.  The ``sort``/``index_scan`` entries carry the physical
    sort count — the number the paper's framework exists to minimize."""

    @property
    def exec_sorts(self) -> int:
        """Physical sorts performed across all executions."""
        return sum(entry.get("sorts", 0) for entry in self.exec_operators.values())

    @staticmethod
    def _merge_counts(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
        merged = dict(a)
        for name, count in b.items():
            merged[name] = merged.get(name, 0) + count
        return merged

    def add(self, other: "SessionStatistics") -> "SessionStatistics":
        """Element-wise sum, for aggregating per-shard statistics."""
        merged_operators = {
            op: dict(entry) for op, entry in self.exec_operators.items()
        }
        for op, entry in other.exec_operators.items():
            merged_operators[op] = self._merge_counts(
                merged_operators.get(op, {}), entry
            )
        return SessionStatistics(
            queries=self.queries + other.queries,
            prepared=self.prepared.add(other.prepared),
            plans=self.plans.add(other.plans),
            prepared_entries=self.prepared_entries + other.prepared_entries,
            plan_entries=self.plan_entries + other.plan_entries,
            enumerators=self._merge_counts(self.enumerators, other.enumerators),
            prepare_modes=self._merge_counts(
                self.prepare_modes, other.prepare_modes
            ),
            states_materialized=self.states_materialized
            + other.states_materialized,
            states_total_known=self.states_total_known + other.states_total_known,
            artifact_hits=self.artifact_hits + other.artifact_hits,
            artifact_misses=self.artifact_misses + other.artifact_misses,
            artifact_saves=self.artifact_saves + other.artifact_saves,
            coalesce=self.coalesce.add(other.coalesce),
            shard_depths=self.shard_depths + other.shard_depths,
            executions=self.executions + other.executions,
            exec_rows=self.exec_rows + other.exec_rows,
            exec_engines=self._merge_counts(self.exec_engines, other.exec_engines),
            exec_operators=merged_operators,
        )

    def describe(self) -> str:
        by_strategy = (
            ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.enumerators.items())
            )
            or "none"
        )
        by_mode = (
            ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.prepare_modes.items())
            )
            or "none"
        )
        by_engine = (
            ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.exec_engines.items())
            )
            or "none"
        )
        if self.shard_depths:
            depths = (
                f"[{', '.join(str(d) for d in self.shard_depths)}] pending "
                f"(max {max(self.shard_depths)})"
            )
        else:
            depths = "none (unsharded)"
        return "\n".join(
            (
                f"queries optimized : {self.queries}",
                f"prepared cache    : {self.prepared.describe()}, "
                f"{self.prepared_entries} entry(ies)",
                f"plan cache        : {self.plans.describe()}, "
                f"{self.plan_entries} entry(ies)",
                f"coalescing        : {self.coalesce.describe()}",
                f"shard queues      : {depths}",
                f"enumerators       : {by_strategy}",
                f"preparation       : {by_mode}; "
                f"{self.states_materialized} DFSM state(s) materialized "
                f"({self.states_total_known} known-total)",
                f"artifacts         : {self.artifact_hits} warm load(s), "
                f"{self.artifact_misses} cold build(s), "
                f"{self.artifact_saves} save(s)",
                f"executions        : {self.executions} run(s) ({by_engine}); "
                f"{self.exec_rows} result row(s), "
                f"{self.exec_sorts} physical sort(s)",
            )
        )


class OptimizationSession:
    """A reusable optimization service: one catalog, many queries.

    >>> from repro.catalog.tpch import tpch_catalog
    >>> from repro.workloads import q8_query
    >>> session = OptimizationSession(tpch_catalog())
    >>> result = session.optimize(q8_query())
    >>> session.statistics().queries
    1

    The default backend is the paper's FSM component with the session's
    prepared-state cache injected.  A custom ``backend_factory`` must
    return a *fresh* backend per call (backends hold per-query state);
    factory-made :class:`FsmBackend` instances without their own
    ``preparer`` are wired to the session cache automatically, other
    backend types simply bypass the prepared cache (the Simmen baseline
    has no preparation phase to amortize — that is the point of the
    comparison).
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend_factory: Callable[[], OrderingBackend] | None = None,
        config: SessionConfig | None = None,
        artifact_store: ArtifactStore | None = None,
    ) -> None:
        # Built per call, not as an import-time default argument: the config
        # default reads REPRO_PREPARE_MODE, which must reflect the
        # environment at session construction (and an invalid value must
        # fail the constructor, never `import repro`).
        self.catalog = catalog
        self.cost_model = cost_model
        self.config = config or SessionConfig()
        config = self.config
        self._backend_factory = backend_factory
        # The persistent preparation-artifact store: an injected instance
        # wins (the pool shares one across all shards); otherwise the
        # config's directory, if any, gets a private store.
        if artifact_store is not None:
            self._artifacts: ArtifactStore | None = artifact_store
        elif config.artifact_dir:
            self._artifacts = ArtifactStore(config.artifact_dir)
        else:
            self._artifacts = None
        self._artifact_hits = 0
        self._artifact_misses = 0
        self._artifact_saves = 0
        # Counts banked from evicted entries keep the states-materialized
        # statistics monotone: an eviction moves an entry's contribution
        # from the live sum into these totals instead of dropping it.
        self._states_retired = 0
        self._states_total_retired = 0
        self._prepared: LRUCache[OrderOptimizer] = LRUCache(
            config.prepared_cache_size,
            check_owner=config.enforce_single_owner,
            on_evict=self._retire_prepared,
        )
        # Plan-cache values keep the spec alive so the id(catalog) component
        # of the key cannot be recycled while the entry is cached.
        self._plans: LRUCache[tuple[QuerySpec, PlanGenResult]] = LRUCache(
            config.plan_cache_size, check_owner=config.enforce_single_owner
        )
        self._queries = 0
        self._enumerator_counts: dict[str, int] = {}
        self._mode_counts: dict[str, int] = {}
        self._executions = 0
        self._exec_rows = 0
        self._exec_engines: dict[str, int] = {}
        self._exec_operators: dict[str, dict[str, int]] = {}
        # The preparation mode queries will actually be served under: the
        # config's for the default backend, the factory backend's own for an
        # injected FsmBackend, and none at all for backends without a
        # preparation phase (Simmen) — their sessions report no modes.
        if backend_factory is None:
            self._served_mode: str | None = self.config.prepare_mode
        else:
            probe = backend_factory()
            self._served_mode = (
                probe.prepare_mode if isinstance(probe, FsmBackend) else None
            )

    # -- prepared-state cache -------------------------------------------------

    def _retire_prepared(self, key: object, optimizer: OrderOptimizer) -> None:
        """Bank an evicted entry's materialization counts.

        Installed as the prepared cache's eviction hook so
        ``states_materialized`` / ``states_total_known`` stay monotone: the
        entry's contribution moves from the live sum into the retired
        totals the moment it leaves the cache, instead of silently
        vanishing between two ``statistics()`` snapshots."""
        tables = optimizer.tables
        self._states_retired += tables.states_materialized
        total = tables.states_total
        if total is not None:
            self._states_total_retired += total

    def _cached_prepare(
        self,
        info: QueryOrderInfo,
        options: BuilderOptions,
        enumerator: str,
        mode: str,
    ) -> OrderOptimizer:
        """Serve a prepared component from the cache, building it on a miss.

        The cache key records the resolved enumeration strategy and the
        preparation mode alongside the preparation inputs.  Prepared state
        is enumerator-independent, and within one session a template always
        resolves to the same strategy (resolution depends only on relation
        count), so this never costs an extra miss — it just keeps every
        fingerprint attributable to the enumeration context it served.

        A cached *lazy* entry is where the laziness pays twice: the entry
        holds the incrementally-growing machine, so the determinization work
        one query performs is permanently banked for every later query of
        the same template (until eviction).
        """
        key = preparation_fingerprint(
            info.interesting, info.fdsets, options, enumerator=enumerator, mode=mode
        )
        return self._prepared.get_or_create(key, lambda: self._prepare(key, info, mode))

    def _prepare(
        self, key: PreparationFingerprint, info: QueryOrderInfo, mode: str
    ) -> OrderOptimizer:
        """Produce a prepared component on a cache miss.

        With an artifact store, a warm load comes first: an earlier process
        already paid determinization for this fingerprint, so the finished
        machine streams back from disk.  Anything the store cannot serve
        (miss, stale, corrupt — it never raises) is cold-built here and
        saved for the next process.
        """
        options = key.options
        if self._artifacts is not None:
            loaded = self._artifacts.load(key)
            if loaded is not None:
                self._artifact_hits += 1
                return loaded
            self._artifact_misses += 1
        built = OrderOptimizer.prepare(
            info.interesting, info.fdsets, options, mode=mode
        )
        if self._artifacts is not None and self._artifacts.save(built) is not None:
            self._artifact_saves += 1
        return built

    def resolve_enumerator_for(self, spec: QuerySpec) -> str:
        """The enumeration strategy this session's config picks for ``spec``."""
        plangen = self.config.plangen
        return resolve_enumerator(
            plangen.enumerator, len(spec.relations), plangen.greedy_threshold
        )

    def _make_backend(self, enumerator: str) -> OrderingBackend:
        if self._backend_factory is None:
            options = self.config.builder_options
            mode = self.config.prepare_mode
            return FsmBackend(
                options,
                prepare_mode=mode,
                preparer=lambda info: self._cached_prepare(
                    info, options, enumerator, mode
                ),
            )
        backend = self._backend_factory()
        if isinstance(backend, FsmBackend) and backend.preparer is None:
            options = backend.options
            mode = backend.prepare_mode
            backend.preparer = lambda info: self._cached_prepare(
                info, options, enumerator, mode
            )
        return backend

    # -- the service API ------------------------------------------------------

    def optimize(
        self, spec: QuerySpec, *, info: QueryOrderInfo | None = None
    ) -> PlanGenResult:
        """Optimize one query, consulting both caches.

        ``info`` injects an already-computed analysis (it must come from
        :func:`analyze_for_config` with this session's config — the sharded
        pool analyzes once for routing and passes it along); when ``None``
        the session analyzes on a plan-cache miss, as before.
        """
        if self.catalog is not None and spec.catalog is not self.catalog:
            raise ValueError(
                f"query {spec.name} was bound against a different catalog "
                "than this session's"
            )
        self._queries += 1
        enumerator = self.resolve_enumerator_for(spec)
        self._enumerator_counts[enumerator] = (
            self._enumerator_counts.get(enumerator, 0) + 1
        )
        if self._served_mode is not None:
            self._mode_counts[self._served_mode] = (
                self._mode_counts.get(self._served_mode, 0) + 1
            )
        key = canonical_query_key(spec)
        hit = self._plans.get(key)
        if hit is not None:
            return hit[1]
        if info is None:
            info = analyze_for_config(spec, self.config)
        result = PlanGenerator(
            spec,
            self._make_backend(enumerator),
            self.cost_model,
            self.config.plangen,
            info=info,
        ).run()
        self._plans.put(key, (spec, result))
        return result

    def optimize_batch(self, specs: Iterable[QuerySpec]) -> list[PlanGenResult]:
        """Optimize a workload; equivalent to ``[optimize(q) for q in specs]``.

        Plans are identical to one-by-one optimization — batching changes
        only the amortization (later queries reuse state cached by earlier
        ones), never the answer.
        """
        return [self.optimize(spec) for spec in specs]

    # -- execution ------------------------------------------------------------

    def _execution_config(
        self, batch_size: int | None, check_merge_inputs: bool, workers: int | None
    ) -> ExecutionConfig:
        return ExecutionConfig(
            batch_size=batch_size or self.config.batch_size,
            check_merge_inputs=check_merge_inputs,
            workers=workers or self.config.workers,
        )

    def execute(
        self,
        spec: QuerySpec,
        *,
        data: Dataset | dict | None = None,
        engine: str | None = None,
        batch_size: int | None = None,
        check_merge_inputs: bool = False,
        rows_per_table: int | None = None,
        scale: float | None = None,
        seed: int = 0,
        workers: int | None = None,
    ) -> ExecutionResult:
        """Optimize a query (through both caches) and *run* the chosen plan.

        ``data`` supplies the tuples (a :class:`~repro.exec.data.Dataset`
        or a per-alias row-list dict); with ``None`` a catalog-driven
        synthetic dataset is generated — ``rows_per_table`` / ``scale`` /
        ``seed`` are forwarded to
        :func:`~repro.exec.data.generate_dataset`.  ``engine`` overrides
        the session's configured engine for this call, ``workers`` its
        morsel worker count (above 1 the serial columnar engines upgrade
        to their parallel counterparts).  Per-operator row/batch/sort
        counters are folded into the session statistics.
        """
        result = self.optimize(spec)
        if data is None:
            data = generate_dataset(
                spec, rows_per_table=rows_per_table, scale=scale, seed=seed
            )
        exec_config = self._execution_config(batch_size, check_merge_inputs, workers)
        runner = make_engine(
            parallel_engine_name(engine or self.config.engine, exec_config.workers),
            exec_config,
        )
        execution = runner.execute(result.best_plan, spec, data)
        self._executions += 1
        self._exec_rows += execution.row_count
        self._exec_engines[runner.name] = self._exec_engines.get(runner.name, 0) + 1
        for op, entry in execution.stats.by_operator().items():
            totals = self._exec_operators.setdefault(
                op, {"rows": 0, "batches": 0, "sorts": 0}
            )
            for key, value in entry.items():
                totals[key] += value
        return execution

    def explain_analyze(
        self,
        spec: QuerySpec,
        *,
        data: Dataset | dict | None = None,
        engine: str | None = None,
        batch_size: int | None = None,
        check_merge_inputs: bool = False,
        rows_per_table: int | None = None,
        scale: float | None = None,
        seed: int = 0,
        workers: int | None = None,
    ) -> str:
        """Execute the chosen plan and render the operator tree with the
        *actual* per-operator row/batch counts and sort/no-sort markers.

        The header names the engine that actually ran (after any NumPy
        fallback) and, for parallel runs, its worker count — so a
        differential failure pasted from a CI log identifies which backend
        diverged without further digging.
        """
        execution = self.execute(
            spec,
            data=data,
            engine=engine,
            batch_size=batch_size,
            check_merge_inputs=check_merge_inputs,
            rows_per_table=rows_per_table,
            scale=scale,
            seed=seed,
            workers=workers,
        )
        engine_label = execution.engine
        if execution.stats.workers > 1:
            engine_label = f"{engine_label} workers={execution.stats.workers}"
        return render_analyze(
            execution,
            header=f"explain analyze {spec.name} (engine={engine_label}):",
        )

    # -- introspection --------------------------------------------------------

    @property
    def artifact_store(self) -> ArtifactStore | None:
        """The session's persistent artifact store, if one is configured."""
        return self._artifacts

    def statistics(self) -> SessionStatistics:
        """Snapshot of the session's cumulative cache counters."""
        # Live entries plus the counts banked by the eviction hook: the
        # materialization counters are cumulative, so an eviction between
        # two snapshots can never make them go backwards.
        states_materialized = self._states_retired
        states_total_known = self._states_total_retired
        for optimizer in self._prepared.values():
            tables = optimizer.tables
            states_materialized += tables.states_materialized
            total = tables.states_total
            if total is not None:
                states_total_known += total
        return SessionStatistics(
            queries=self._queries,
            prepared=replace(self._prepared.stats),
            plans=replace(self._plans.stats),
            prepared_entries=len(self._prepared),
            plan_entries=len(self._plans),
            enumerators=dict(self._enumerator_counts),
            prepare_modes=dict(self._mode_counts),
            states_materialized=states_materialized,
            states_total_known=states_total_known,
            artifact_hits=self._artifact_hits,
            artifact_misses=self._artifact_misses,
            artifact_saves=self._artifact_saves,
            executions=self._executions,
            exec_rows=self._exec_rows,
            exec_engines=dict(self._exec_engines),
            exec_operators={
                op: dict(entry) for op, entry in self._exec_operators.items()
            },
        )

    def clear_caches(self) -> None:
        """Drop all cached state (counters are kept); the next query is cold."""
        self._prepared.clear()
        self._plans.clear()
