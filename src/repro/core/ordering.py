"""Logical orderings: duplicate-free sequences of attributes.

An ordering ``(a, b, c)`` states that a tuple stream is sorted
lexicographically by ``a``, then ``b``, then ``c`` (the formal condition is
given in Section 2 of the paper and implemented verbatim in
:mod:`repro.exec.verify`).  Orderings are immutable value objects; the empty
ordering is a valid object (it is the ordering of an unsorted stream) and is
exposed as :data:`EMPTY_ORDERING`.

The operations provided here are exactly those the order-inference rules of
the paper need: prefix enumeration, prefix tests, insertion of an attribute
at a position, substitution of one attribute by another, and truncation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, overload

from .attributes import Attribute


class Ordering:
    """An immutable sequence of pairwise distinct attributes."""

    __slots__ = ("_attrs", "_hash")

    def __init__(self, attributes: Iterable[Attribute] = ()) -> None:
        attrs_tuple = tuple(attributes)
        seen: set[Attribute] = set()
        for attribute in attrs_tuple:
            if not isinstance(attribute, Attribute):
                raise TypeError(f"ordering elements must be Attribute, got {attribute!r}")
            if attribute in seen:
                raise ValueError(f"duplicate attribute {attribute} in ordering {attrs_tuple}")
            seen.add(attribute)
        self._attrs: tuple[Attribute, ...] = attrs_tuple
        self._hash = hash(attrs_tuple)

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def __bool__(self) -> bool:
        return bool(self._attrs)

    @overload
    def __getitem__(self, index: int) -> Attribute: ...

    @overload
    def __getitem__(self, index: slice) -> "Ordering": ...

    def __getitem__(self, index: int | slice) -> "Attribute | Ordering":
        if isinstance(index, slice):
            return Ordering(self._attrs[index])
        return self._attrs[index]

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attrs

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ordering):
            return self._attrs == other._attrs
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    # -- pickling -----------------------------------------------------------------

    def __getstate__(self) -> tuple[Attribute, ...]:
        # The cached hash must NOT travel: it is derived from string hashes,
        # which are salted per process (PYTHONHASHSEED), so a pickled value
        # would be inconsistent with __eq__ in any other process — silently
        # breaking every set/dict an unpickled ordering lands in (worker
        # pools, on-disk preparation artifacts).  Ship the attributes alone
        # and rehash on arrival.
        return self._attrs

    def __setstate__(self, state: tuple[Attribute, ...]) -> None:
        self._attrs = state
        self._hash = hash(state)

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self._attrs)
        return f"({inner})"

    # -- accessors ----------------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The underlying attribute tuple."""
        return self._attrs

    @property
    def attribute_set(self) -> frozenset[Attribute]:
        """The set of attributes appearing in the ordering."""
        return frozenset(self._attrs)

    def index(self, attribute: Attribute) -> int:
        """Position of ``attribute``; raises ``ValueError`` when absent."""
        return self._attrs.index(attribute)

    # -- prefix machinery ---------------------------------------------------------

    def prefixes(self, *, proper: bool = True, include_empty: bool = False) -> Iterator["Ordering"]:
        """Yield prefixes from shortest to longest.

        By default only *proper, non-empty* prefixes are produced, which is
        the prefix-closure convention of the paper (the ordering itself is
        trivially satisfied and the empty ordering carries no information).
        """
        start = 0 if include_empty else 1
        stop = len(self._attrs) if proper else len(self._attrs) + 1
        for length in range(start, stop):
            yield Ordering(self._attrs[:length])

    def is_prefix_of(self, other: "Ordering") -> bool:
        """True when ``self`` is a (non-strict) prefix of ``other``."""
        return self._attrs == other._attrs[: len(self._attrs)]

    def startswith(self, prefix: "Ordering") -> bool:
        """True when ``prefix`` is a (non-strict) prefix of ``self``."""
        return prefix.is_prefix_of(self)

    # -- derivation helpers (used by the inference rules) --------------------------

    def insert(self, position: int, attribute: Attribute) -> "Ordering":
        """Return a new ordering with ``attribute`` inserted at ``position``."""
        if not 0 <= position <= len(self._attrs):
            raise IndexError(f"insert position {position} out of range for {self!r}")
        return Ordering(self._attrs[:position] + (attribute,) + self._attrs[position:])

    def replace(self, position: int, attribute: Attribute) -> "Ordering":
        """Return a new ordering with the element at ``position`` replaced."""
        if not 0 <= position < len(self._attrs):
            raise IndexError(f"replace position {position} out of range for {self!r}")
        return Ordering(self._attrs[:position] + (attribute,) + self._attrs[position + 1 :])

    def truncate(self, length: int) -> "Ordering":
        """Return the prefix of at most ``length`` attributes."""
        if length < 0:
            raise ValueError("truncate length must be non-negative")
        if length >= len(self._attrs):
            return self
        return Ordering(self._attrs[:length])

    def concat(self, other: "Ordering") -> "Ordering":
        """Concatenate, skipping attributes already present in ``self``."""
        extra = tuple(a for a in other._attrs if a not in self._attrs)
        return Ordering(self._attrs + extra)


EMPTY_ORDERING = Ordering(())


def ordering(*names: str) -> Ordering:
    """Build an ordering from attribute names.

    >>> ordering("a", "b")
    (a, b)
    """
    return Ordering(Attribute.parse(n) for n in names)
