"""Core order-optimization framework (the paper's contribution).

Public surface:

* data model — :class:`Attribute`, :class:`Ordering`,
  :class:`FunctionalDependency`, :class:`Equation`, :class:`ConstantBinding`,
  :class:`FDSet`, :class:`InterestingOrders`;
* the executable specification — :func:`omega` (the ``Ω(O, F)`` closure of
  Section 2) and friends in :mod:`repro.core.inference`;
* the prepared component — :class:`OrderOptimizer` with
  :class:`BuilderOptions` / :data:`NO_PRUNING`, exposing the O(1) ADT
  operations of Section 5.6.
"""

from .attributes import Attribute, attr, attrs
from .dfsm import DFSM, LazyDFSM, StateCapExceeded, fd_successor, subset_construction
from .equivalence import EquivalenceClasses
from .fd import (
    ConstantBinding,
    Equation,
    FDItem,
    FDSet,
    FunctionalDependency,
    normalize_fd,
)
from .grouping import Grouping, grouping, grouping_closure
from .inference import Bounds, derive_item, omega, omega_new, prefix_closure
from .interesting import InterestingOrders
from .nfsm import NFSM, START
from .optimizer import (
    NO_PRUNING,
    PREPARATION_MODES,
    BuilderOptions,
    EagerPreparation,
    LazyPreparation,
    OrderOptimizer,
    PreparationFingerprint,
    PreparationMode,
    PreparationPlan,
    PreparationStage,
    PreparationStatistics,
    PreparationStats,
    preparation_fingerprint,
    resolve_preparation_mode,
)
from .ordering import EMPTY_ORDERING, Ordering, ordering
from .tables import LazyTables, PreparedTables, build_tables
from .trie import PrefixTrie

__all__ = [
    "Attribute",
    "attr",
    "attrs",
    "Ordering",
    "ordering",
    "EMPTY_ORDERING",
    "FunctionalDependency",
    "Equation",
    "ConstantBinding",
    "FDItem",
    "FDSet",
    "normalize_fd",
    "EquivalenceClasses",
    "PrefixTrie",
    "Grouping",
    "grouping",
    "grouping_closure",
    "Bounds",
    "derive_item",
    "omega",
    "omega_new",
    "prefix_closure",
    "InterestingOrders",
    "NFSM",
    "START",
    "DFSM",
    "LazyDFSM",
    "StateCapExceeded",
    "fd_successor",
    "subset_construction",
    "PreparedTables",
    "LazyTables",
    "build_tables",
    "OrderOptimizer",
    "BuilderOptions",
    "NO_PRUNING",
    "PreparationStats",
    "PreparationStatistics",
    "PreparationMode",
    "EagerPreparation",
    "LazyPreparation",
    "PreparationPlan",
    "PreparationStage",
    "PREPARATION_MODES",
    "resolve_preparation_mode",
    "PreparationFingerprint",
    "preparation_fingerprint",
]
