"""Groupings: the order-optimization extension of the paper's follow-up work.

A *grouping* ``{a, b}`` is satisfied by a tuple stream when all rows with
equal ``(a, b)`` combinations are adjacent — the property a streaming
aggregation or DISTINCT needs.  Groupings are weaker than orderings in one
direction (any stream sorted by ``(a, b)`` is grouped by ``{a}`` and
``{a, b}``) and incomparable in the other (grouped-by-``{a,b}`` implies
*neither* grouped-by-``{a}`` nor any ordering).

Functional dependencies act on groupings by set growth:

* FD ``lhs -> b`` with ``lhs ⊆ g``: the stream is also grouped by
  ``g ∪ {b}`` (within a ``g``-group, ``b`` is constant);
* equation ``a = b`` with ``a ∈ g``: grouped by ``g ∪ {b}`` and by the
  substitution ``(g \\ {a}) ∪ {b}``;
* constant ``x``: grouped by ``g ∪ {x}``.

Unlike orderings, groupings have **no prefix deduction**: the node for a
grouping satisfies exactly itself.  The NFSM integration (see
:mod:`repro.core.nfsm`) adds grouping nodes, ε-edges from every ordering
node to the groupings of its prefixes, and closure FD edges computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .attributes import Attribute
from .equivalence import EquivalenceClasses
from .fd import ConstantBinding, Equation, FDItem, FDSet
from .fd import FunctionalDependency
from .ordering import Ordering


@dataclass(frozen=True)
class Grouping:
    """An immutable, non-empty set of attributes."""

    attributes: frozenset[Attribute]

    def __post_init__(self) -> None:
        if not isinstance(self.attributes, frozenset):
            object.__setattr__(self, "attributes", frozenset(self.attributes))
        if not self.attributes:
            raise ValueError("a grouping must contain at least one attribute")
        for attribute in self.attributes:
            if not isinstance(attribute, Attribute):
                raise TypeError(f"grouping elements must be Attribute: {attribute!r}")

    @classmethod
    def of(cls, *attributes: Attribute) -> "Grouping":
        return cls(frozenset(attributes))

    @classmethod
    def from_ordering(cls, order: Ordering) -> "Grouping":
        return cls(order.attribute_set)

    def union(self, attribute: Attribute) -> "Grouping":
        return Grouping(self.attributes | {attribute})

    def substitute(self, old: Attribute, new: Attribute) -> "Grouping":
        return Grouping((self.attributes - {old}) | {new})

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.attributes

    def __iter__(self) -> Iterator[Attribute]:
        return iter(sorted(self.attributes))

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self)
        return f"{{{inner}}}"


def grouping(*names: str) -> Grouping:
    """Build a grouping from attribute names (test/demo helper)."""
    return Grouping(frozenset(Attribute.parse(n) for n in names))


def derive_grouping(g: Grouping, item: FDItem) -> Iterator[Grouping]:
    """One-step derivations of a grouping under a single FD item."""
    if isinstance(item, FunctionalDependency):
        if item.lhs <= g.attributes and item.rhs not in g:
            yield g.union(item.rhs)
    elif isinstance(item, ConstantBinding):
        if item.attribute not in g:
            yield g.union(item.attribute)
    elif isinstance(item, Equation):
        for source, target in ((item.left, item.right), (item.right, item.left)):
            if source in g and target not in g:
                yield g.union(target)
                yield g.substitute(source, target)
    else:  # pragma: no cover - guarded upstream
        raise TypeError(f"unknown FD item {item!r}")


class GroupingBounds:
    """Relevance filter for artificial grouping nodes (Section 5.7 spirit).

    A derived grouping can only ever satisfy an interesting grouping ``gi``
    if its representative set is a subset of ``gi``'s (growth adds
    attributes, substitution keeps representatives) — so anything else is
    discarded during closure.
    """

    def __init__(
        self,
        interesting: Iterable[Grouping],
        classes: EquivalenceClasses | None = None,
    ) -> None:
        self.classes = classes or EquivalenceClasses()
        self._targets = [
            frozenset(self.classes.representative(a) for a in g.attributes)
            for g in interesting
        ]

    def admits(self, g: Grouping) -> bool:
        canon = frozenset(self.classes.representative(a) for a in g.attributes)
        return any(canon <= target for target in self._targets)


def grouping_closure(
    seeds: Iterable[Grouping],
    fdsets: Iterable[FDSet | FDItem],
    bounds: GroupingBounds | None = None,
) -> frozenset[Grouping]:
    """Closure of a set of groupings under FD derivation (no prefix rule)."""
    items: list[FDItem] = []
    for entry in fdsets:
        entry_items = entry.items if isinstance(entry, FDSet) else (entry,)
        for item in entry_items:
            if item not in items:
                items.append(item)
    result: set[Grouping] = set()
    work = list(seeds)
    while work:
        g = work.pop()
        if g in result:
            continue
        result.add(g)
        for item in items:
            for candidate in derive_grouping(g, item):
                if candidate in result:
                    continue
                if bounds is not None and not bounds.admits(candidate):
                    continue
                work.append(candidate)
    return frozenset(result)


def prefix_groupings(order: Ordering) -> tuple[Grouping, ...]:
    """The groupings an ordering implies: one per non-empty prefix."""
    return tuple(
        Grouping.from_ordering(order.truncate(k)) for k in range(1, len(order) + 1)
    )
