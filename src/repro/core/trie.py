"""A prefix trie over attribute sequences.

Implements the lookup structure behind the paper's original Section 5.7
prefix heuristic (longest interesting-order prefix in O(length)).  The
default bounds in :mod:`repro.core.inference` now use the repaired
*subsequence* criterion instead (see DESIGN.md), so the trie remains as a
general-purpose utility for prefix-indexed attribute sequences.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .attributes import Attribute


class _TrieNode:
    __slots__ = ("children", "terminal")

    def __init__(self) -> None:
        self.children: dict[Attribute, _TrieNode] = {}
        self.terminal = False


class PrefixTrie:
    """Stores attribute sequences; answers longest-known-prefix queries."""

    def __init__(self, sequences: Iterable[Sequence[Attribute]] = ()) -> None:
        self._root = _TrieNode()
        self._size = 0
        for sequence in sequences:
            self.insert(sequence)

    def insert(self, sequence: Sequence[Attribute]) -> None:
        """Insert a sequence (and thereby all of its prefixes as paths)."""
        node = self._root
        for attribute in sequence:
            node = node.children.setdefault(attribute, _TrieNode())
        if not node.terminal:
            node.terminal = True
            self._size += 1

    def __len__(self) -> int:
        """Number of distinct terminal sequences inserted."""
        return self._size

    def has_path(self, sequence: Sequence[Attribute]) -> bool:
        """True when ``sequence`` is a prefix of some inserted sequence."""
        node = self._root
        for attribute in sequence:
            node = node.children.get(attribute)  # type: ignore[assignment]
            if node is None:
                return False
        return True

    def longest_path_length(self, sequence: Sequence[Attribute]) -> int:
        """Length of the longest prefix of ``sequence`` that is a trie path.

        Returns 0 when even the first element diverges from every inserted
        sequence.
        """
        node = self._root
        length = 0
        for attribute in sequence:
            node = node.children.get(attribute)  # type: ignore[assignment]
            if node is None:
                break
            length += 1
        return length

    def max_depth(self) -> int:
        """Length of the longest inserted sequence."""

        def depth(node: _TrieNode) -> int:
            if not node.children:
                return 0
            return 1 + max(depth(child) for child in node.children.values())

        return depth(self._root)
