"""The non-deterministic FSM over logical orderings (Section 5.3).

Nodes are orderings: the interesting orders themselves plus *artificial*
orderings reachable from them by FD inference (``Q_A = Ω(O_I, F) \\ O_I``),
plus the artificial start node ``q0``.

Edges come in three flavours:

* ε-edges — from an ordering to each of its proper prefixes (prefix
  deduction);
* FD edges — labelled with an FD-set symbol ``f``; the targets of node ``o``
  under ``f`` are *all* of ``Ω({o}, {f})``, i.e. the edges are closure
  edges.  One DFSM transition therefore implements the full
  ``inferNewLogicalOrderings`` semantics, and the represented set of logical
  orderings only ever grows (every node is among its own targets);
* artificial start edges — from ``q0`` to each *produced* interesting order,
  labelled with that ordering.  They are the ADT constructor entry points
  and are preserved by the subset construction.

An optional *empty ordering* node models a tuple stream with no physical
ordering; constant bindings (``x = const``) still generate orderings for it.
The paper leaves the scan entry state implicit; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .fd import FDSet
from .grouping import Grouping, GroupingBounds, grouping_closure, prefix_groupings
from .inference import Bounds, omega
from .interesting import InterestingOrders
from .ordering import EMPTY_ORDERING, Ordering

START = 0
"""Node id of the artificial start node ``q0``."""

Node = "Ordering | Grouping"


def _sort_key(node) -> tuple[int, str]:
    kind = 1 if isinstance(node, Grouping) else 0
    return (kind, len(node), repr(node))


@dataclass
class NFSM:
    """The constructed NFSM.  Node ``0`` is always the start node ``q0``."""

    orderings: tuple
    """Node id -> node (``None`` for the start node).  Nodes are orderings,
    plus :class:`repro.core.grouping.Grouping` entries when the groupings
    extension is active."""

    interesting: InterestingOrders
    fd_symbols: tuple[FDSet, ...]
    """The FD-set part of the input alphabet, deduplicated."""

    producer_orders: tuple
    """Nodes with an artificial start edge: ``O_P`` (plus ``()`` if enabled,
    plus produced groupings)."""

    testable: tuple
    """Orders the contains matrix covers: ``O_I`` plus its prefix closure.

    The paper's Figure 9 lists ``(a)`` although only ``(a,b)`` and
    ``(a,b,c)`` are declared interesting — prefixes of interesting orders
    are testable (a merge join may require a key prefix), so they are
    protected from node pruning and given contains-matrix columns.
    """

    fd_targets: Mapping[tuple[int, int], frozenset[int]]
    """(node id, fd symbol index) -> target node ids.  Missing key = {self}."""

    eps: Mapping[int, frozenset[int]]
    """node id -> all (transitive) ε-targets, i.e. its prefixes present as nodes."""

    node_of: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_of:
            self.node_of = {
                o: i for i, o in enumerate(self.orderings) if o is not None
            }

    # -- introspection -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes excluding the artificial start node."""
        return len(self.orderings) - 1

    @property
    def edge_count(self) -> int:
        eps_edges = sum(len(v) for v in self.eps.values())
        fd_edges = sum(len(v) for v in self.fd_targets.values())
        return eps_edges + fd_edges + len(self.producer_orders)

    def targets(self, node: int, symbol: int) -> frozenset[int]:
        """Closure targets of ``node`` under FD symbol ``symbol`` (⊇ {node})."""
        return self.fd_targets.get((node, symbol), frozenset((node,)))

    def eps_closure(self, node: int) -> frozenset[int]:
        return self.eps.get(node, frozenset()) | {node}

    def is_interesting(self, node: int) -> bool:
        order = self.orderings[node]
        return order is not None and order in self.interesting

    def is_artificial(self, node: int) -> bool:
        return node != START and not self.is_interesting(node)

    def describe(self) -> str:
        """A human-readable dump used by examples and debugging."""
        lines = [f"NFSM: {self.node_count} nodes, {len(self.fd_symbols)} FD symbols"]
        for node, order in enumerate(self.orderings):
            if node == START:
                lines.append("  q0 (start)")
                for producer in self.producer_orders:
                    lines.append(f"    --[{producer!r}]--> {producer!r}")
                continue
            kind = "interesting" if self.is_interesting(node) else "artificial"
            lines.append(f"  {order!r} [{kind}]")
            eps = self.eps.get(node, frozenset())
            if eps:
                eps_repr = ", ".join(repr(self.orderings[t]) for t in sorted(eps))
                lines.append(f"    --eps--> {eps_repr}")
            for symbol, fdset in enumerate(self.fd_symbols):
                targets = self.fd_targets.get((node, symbol))
                if targets and targets != frozenset((node,)):
                    shown = ", ".join(
                        repr(self.orderings[t]) for t in sorted(targets) if t != node
                    )
                    lines.append(f"    --{fdset}--> {shown}")
        return "\n".join(lines)


@dataclass
class NFSMStats:
    """Construction statistics (reported by benchmarks for Section 6.2)."""

    universe_size: int = 0
    nodes: int = 0
    fd_edges: int = 0
    eps_edges: int = 0
    pruned_fd_items: int = 0
    merged_nodes: int = 0
    deleted_nodes: int = 0


def dedupe_fdsets(fdsets: Sequence[FDSet]) -> tuple[FDSet, ...]:
    """Deduplicate FD-set symbols while preserving first-seen order."""
    seen: set[FDSet] = set()
    result: list[FDSet] = []
    for fdset in fdsets:
        if fdset not in seen:
            seen.add(fdset)
            result.append(fdset)
    return tuple(result)


def build_universe(
    interesting: InterestingOrders,
    fd_symbols: Sequence[FDSet],
    bounds: Bounds | None,
    *,
    include_empty: bool,
) -> tuple[Ordering, ...]:
    """Materialize the ordering-node universe ``{q0} ∪ O_I ∪ Q_A`` (Step 2a).

    Returns the orderings in a deterministic layout: interesting orders
    first (in their declared order), then the empty ordering if requested,
    then artificial orderings sorted by (length, repr).
    """
    seeds: list[Ordering] = list(interesting.all_orders)
    if include_empty:
        seeds.append(EMPTY_ORDERING)
    closure = omega(seeds, fd_symbols, bounds)
    artificial = sorted(
        (o for o in closure if o not in interesting and len(o) > 0),
        key=_sort_key,
    )
    layout: list[Ordering] = list(interesting.all_orders)
    if include_empty:
        layout.append(EMPTY_ORDERING)
    layout.extend(artificial)
    return tuple(layout)


def build_grouping_universe(
    interesting: InterestingOrders,
    fd_symbols: Sequence[FDSet],
    ordering_universe: Sequence[Ordering],
    gbounds: GroupingBounds | None,
) -> tuple[Grouping, ...]:
    """Grouping nodes: interesting groupings, the (admissible) groupings
    implied by ordering-node prefixes, and their FD closure.

    Empty when the query declares no interesting groupings — the groupings
    extension then costs nothing.
    """
    declared = tuple(interesting.all_groupings)
    if not declared:
        return ()
    seeds: list[Grouping] = list(declared)
    declared_set = set(declared)
    for order in ordering_universe:
        for g in prefix_groupings(order):
            if g in declared_set:
                continue
            if gbounds is None or gbounds.admits(g):
                seeds.append(g)
    closure = grouping_closure(seeds, fd_symbols, gbounds)
    artificial = sorted((g for g in closure if g not in declared_set), key=_sort_key)
    return declared + tuple(artificial)


def build_edges(
    universe: Sequence[Ordering],
    fd_symbols: Sequence[FDSet],
    bounds: Bounds | None,
    grouping_universe: Sequence[Grouping] = (),
    gbounds: GroupingBounds | None = None,
) -> tuple[dict[tuple[int, int], frozenset[int]], dict[int, frozenset[int]]]:
    """Compute closure FD edges and ε edges over the universe (Step 2c).

    Node ids in the returned maps are offset by 1 (id 0 is reserved for
    ``q0``); ``universe[i]`` becomes node ``i + 1`` and grouping nodes
    follow after the orderings.  ε edges: ordering → its prefixes, and
    ordering → the groupings of its prefixes (sorted implies grouped).
    """
    node_of: dict = {order: i + 1 for i, order in enumerate(universe)}
    for i, g in enumerate(grouping_universe):
        node_of[g] = len(universe) + 1 + i

    fd_targets: dict[tuple[int, int], frozenset[int]] = {}
    eps: dict[int, frozenset[int]] = {}
    for order in universe:
        node = node_of[order]
        eps_nodes = {node_of[p] for p in order.prefixes() if p in node_of}
        if grouping_universe:
            eps_nodes.update(
                node_of[g] for g in prefix_groupings(order) if g in node_of
            )
        if eps_nodes:
            eps[node] = frozenset(eps_nodes)
        for symbol, fdset in enumerate(fd_symbols):
            if not fdset:
                continue
            closure = omega([order], [fdset], bounds)
            targets = frozenset(node_of[o] for o in closure if o in node_of)
            if targets != frozenset((node,)):
                fd_targets[(node, symbol)] = targets

    for g in grouping_universe:
        node = node_of[g]
        for symbol, fdset in enumerate(fd_symbols):
            if not fdset:
                continue
            closure = grouping_closure([g], [fdset], gbounds)
            targets = frozenset(node_of[x] for x in closure if x in node_of)
            if targets != frozenset((node,)):
                fd_targets[(node, symbol)] = targets
    return fd_targets, eps


def assemble(
    interesting: InterestingOrders,
    fd_symbols: Sequence[FDSet],
    universe: Sequence[Ordering],
    fd_targets: Mapping[tuple[int, int], frozenset[int]],
    eps: Mapping[int, frozenset[int]],
    *,
    include_empty: bool,
    grouping_universe: Sequence[Grouping] = (),
) -> NFSM:
    """Attach the start node and artificial edges (Step 2e) and freeze."""
    producer_orders: list = list(interesting.produced)
    if include_empty:
        producer_orders.append(EMPTY_ORDERING)
    producer_orders.extend(interesting.groupings_produced)
    declared = set(interesting.all_orders)
    extra_prefixes = sorted(
        {
            prefix
            for order in interesting.all_orders
            for prefix in order.prefixes()
            if prefix not in declared
        },
        key=_sort_key,
    )
    testable = (
        interesting.all_orders
        + tuple(extra_prefixes)
        + tuple(interesting.all_groupings)
    )
    orderings: tuple = (None, *universe, *grouping_universe)
    return NFSM(
        orderings=orderings,
        interesting=interesting,
        fd_symbols=tuple(fd_symbols),
        producer_orders=tuple(producer_orders),
        testable=testable,
        fd_targets=dict(fd_targets),
        eps=dict(eps),
    )
