"""Equivalence classes of attributes induced by equations.

Section 5.7 of the paper: when equations ``a = b`` occur, the prefix-based
search-space heuristic must compare orderings modulo attribute equivalence.
"A representative is chosen for each equivalence class created by these
dependencies and for the prefix test the attributes are replaced with their
representatives."

This module provides a small union-find over attributes.  Representatives are
chosen deterministically (the smallest attribute of a class in the natural
attribute order) so that results are reproducible across runs.
"""

from __future__ import annotations

from typing import Iterable

from .attributes import Attribute
from .fd import Equation, FDSet
from .ordering import Ordering


class EquivalenceClasses:
    """Union-find over attributes with deterministic representatives."""

    def __init__(self, equations: Iterable[Equation] = ()) -> None:
        self._parent: dict[Attribute, Attribute] = {}
        for equation in equations:
            self.add_equation(equation)

    @classmethod
    def from_fdsets(cls, fdsets: Iterable[FDSet]) -> "EquivalenceClasses":
        """Collect every equation from a collection of FD sets."""
        classes = cls()
        for fdset in fdsets:
            for equation in fdset.equations:
                classes.add_equation(equation)
        return classes

    def add_equation(self, equation: Equation) -> None:
        self._union(equation.left, equation.right)

    def _find(self, attribute: Attribute) -> Attribute:
        parent = self._parent.get(attribute)
        if parent is None or parent == attribute:
            return attribute
        root = self._find(parent)
        self._parent[attribute] = root
        return root

    def _union(self, a: Attribute, b: Attribute) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        # Keep the smaller attribute as root for deterministic representatives.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._parent.setdefault(root_a, root_a)

    def representative(self, attribute: Attribute) -> Attribute:
        """The canonical representative of ``attribute``'s class."""
        return self._find(attribute)

    def are_equivalent(self, a: Attribute, b: Attribute) -> bool:
        return self._find(a) == self._find(b)

    def class_of(self, attribute: Attribute) -> frozenset[Attribute]:
        """All known attributes equivalent to ``attribute`` (including itself)."""
        root = self._find(attribute)
        members = {a for a in self._parent if self._find(a) == root}
        members.add(attribute)
        return frozenset(members)

    def canonical_sequence(self, ordering: Ordering) -> tuple[Attribute, ...]:
        """Map each ordering element to its class representative.

        Note that the result may contain repeated representatives when an
        ordering mentions two equivalent attributes; callers that need
        duplicate-free sequences must handle this themselves.
        """
        return tuple(self._find(a) for a in ordering)

    def __contains__(self, attribute: Attribute) -> bool:
        return attribute in self._parent

    def classes(self) -> tuple[frozenset[Attribute], ...]:
        """All non-singleton classes, deterministically ordered."""
        by_root: dict[Attribute, set[Attribute]] = {}
        for attribute in self._parent:
            by_root.setdefault(self._find(attribute), set()).add(attribute)
        return tuple(frozenset(v) for _, v in sorted(by_root.items()))
