"""NFSM reduction techniques (Section 5.7).

Two families of reductions:

**FD filtering (Step 2b).**  Functional dependencies that can never lead to a
new interesting order are removed before nodes are materialized.  We provide
two criteria:

* ``"relevance"`` (default) — the paper's *narrative* criterion ("b → d has
  been pruned, since d does not occur in any interesting order"), made
  precise: compute the least set ``R`` of *relevant attributes* containing
  every attribute of an interesting order and closed under equations
  (``x = y`` with ``y ∈ R`` puts ``x`` into ``R``, because a substitution can
  rewrite ``x`` into ``y``).  An FD/constant whose right-hand attribute is
  outside ``R`` can never contribute to reaching an interesting order
  (insertions only append information, they never reorder existing
  attributes), and an equation with a side outside ``R`` likewise.  This is
  sound and matches the paper's example outputs.
* ``"formula"`` — the paper's formula
  ``F_P = {f | ∀o: (Ω(Ω_N(o,f),F) \\ Ω({o},ε)) ∩ O_I = ∅}``, with one repair:
  the quantifier ranges over the whole node universe rather than only
  ``O_I``.  Quantified over ``O_I`` alone (as printed) the formula is
  unsound — an FD whose left-hand side only ever occurs in *derived*
  orderings would be pruned even when it is the only way to reach an
  interesting order — and, conversely, it fails to prune ``b → d`` in the
  paper's own running example.  See DESIGN.md and
  ``tests/core/test_prune.py`` for the concrete counterexamples.

**Node reduction (Step 2d).**  Artificial nodes are invisible to the plan
generator, so they may be removed or merged as long as DFSM behaviour on
interesting orders is preserved:

* *ε-replacement* — an artificial node whose FD targets are all already
  provided by its prefixes adds nothing: every (prefix-closed) DFSM state
  containing it also contains its prefixes.  Such nodes are deleted.
* *merging* — artificial nodes with identical ε-targets and identical FD
  targets (modulo themselves) are bisimilar and collapsed into one node.
  The ε-target condition is slightly stronger than the paper's formula; see
  DESIGN.md ("Deliberate deviations").

Both reductions are iterated to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

from .attributes import Attribute
from .fd import ConstantBinding, Equation, FDItem, FDSet, FunctionalDependency
from .inference import Bounds, omega, omega_new
from .interesting import InterestingOrders
from .nfsm import NFSM, START
from .ordering import Ordering

FDPruneMode = Literal["relevance", "formula", "both", "off"]


# ---------------------------------------------------------------------------
# FD filtering (Step 2b)
# ---------------------------------------------------------------------------


def relevant_attributes(
    interesting: InterestingOrders,
    items: Iterable[FDItem],
) -> frozenset[Attribute]:
    """Least set of attributes that can still matter for an interesting order
    (or interesting grouping — the groupings extension).

    Seeded with every attribute of an interesting order/grouping and closed
    under equation reachability: if ``x = y`` is available and ``y`` is
    relevant, then ``x`` is relevant too (an occurrence of ``x`` can be
    substituted by ``y`` on the way to an interesting order).
    """
    relevant: set[Attribute] = set()
    for order in interesting.all_orders:
        relevant.update(order.attribute_set)
    for g in interesting.all_groupings:
        relevant.update(g.attributes)
    equations = [i for i in items if isinstance(i, Equation)]
    changed = True
    while changed:
        changed = False
        for equation in equations:
            if equation.left in relevant and equation.right not in relevant:
                relevant.add(equation.right)
                changed = True
            if equation.right in relevant and equation.left not in relevant:
                relevant.add(equation.left)
                changed = True
    return frozenset(relevant)


def _prunable_by_relevance(item: FDItem, relevant: frozenset[Attribute]) -> bool:
    if isinstance(item, FunctionalDependency):
        return item.rhs not in relevant
    if isinstance(item, ConstantBinding):
        return item.attribute not in relevant
    if isinstance(item, Equation):
        return item.left not in relevant or item.right not in relevant
    raise TypeError(f"unknown FD item {item!r}")  # pragma: no cover


def prune_items_relevance(
    fdsets: Sequence[FDSet],
    interesting: InterestingOrders,
) -> tuple[tuple[FDSet, ...], frozenset[FDItem]]:
    """Apply the relevance criterion; returns (filtered FD sets, pruned items)."""
    all_items = {item for fdset in fdsets for item in fdset.items}
    relevant = relevant_attributes(interesting, all_items)
    pruned = frozenset(i for i in all_items if _prunable_by_relevance(i, relevant))
    filtered = tuple(fdset.without(pruned) for fdset in fdsets)
    return filtered, pruned


def prune_items_formula(
    fdsets: Sequence[FDSet],
    interesting: InterestingOrders,
    bounds: Bounds | None = None,
    *,
    quantify_over_universe: bool = True,
) -> tuple[tuple[FDSet, ...], frozenset[FDItem]]:
    """Apply the paper's Ω-based pruning formula.

    ``quantify_over_universe=False`` reproduces the formula exactly as
    printed (quantifier over ``O_I`` only); the default repairs it by
    quantifying over the whole bounded universe ``Ω(O_I, F)``, which is the
    sound reading.
    """
    all_items = [item for fdset in fdsets for item in fdset.items]
    unique_items: list[FDItem] = []
    for item in all_items:
        if item not in unique_items:
            unique_items.append(item)

    sources: tuple[Ordering, ...] = interesting.all_orders
    if quantify_over_universe:
        sources = tuple(omega(interesting.all_orders, fdsets, bounds))

    interesting_set = frozenset(interesting.all_orders)
    pruned: set[FDItem] = set()
    for item in unique_items:
        useful = False
        for source in sources:
            new_orders = omega_new(source, item, bounds)
            if not new_orders:
                continue
            reachable = omega(new_orders, fdsets, bounds)
            base = omega([source], (), bounds)
            if (reachable - base) & interesting_set:
                useful = True
                break
        if not useful:
            pruned.add(item)
    filtered = tuple(fdset.without(pruned) for fdset in fdsets)
    return filtered, frozenset(pruned)


def prune_fd_items(
    fdsets: Sequence[FDSet],
    interesting: InterestingOrders,
    mode: FDPruneMode,
    bounds: Bounds | None = None,
) -> tuple[tuple[FDSet, ...], frozenset[FDItem]]:
    """Dispatch on the FD-pruning mode; see module docstring.

    When interesting groupings exist, items relevant to them are never
    pruned (the Ω-formula mode only reasons about orderings)."""
    if mode == "off":
        return tuple(fdsets), frozenset()
    if mode == "relevance":
        filtered, pruned = prune_items_relevance(fdsets, interesting)
    elif mode == "formula":
        filtered, pruned = prune_items_formula(fdsets, interesting, bounds)
    elif mode == "both":
        filtered, pruned_a = prune_items_relevance(fdsets, interesting)
        filtered, pruned_b = prune_items_formula(filtered, interesting, bounds)
        pruned = pruned_a | pruned_b
    else:
        raise ValueError(f"unknown FD prune mode {mode!r}")

    if interesting.all_groupings and pruned:
        all_items = {item for fdset in fdsets for item in fdset.items}
        relevant = relevant_attributes(interesting, all_items)
        rescued = {
            item for item in pruned if not _prunable_by_relevance(item, relevant)
        }
        if rescued:
            pruned = pruned - rescued
            filtered = tuple(fdset.without(pruned) for fdset in fdsets)
    return filtered, pruned


# ---------------------------------------------------------------------------
# Node reduction (Step 2d)
# ---------------------------------------------------------------------------


@dataclass
class NodePruneResult:
    nfsm: NFSM
    deleted: int
    merged: int


def _rebuild(
    nfsm: NFSM,
    keep: Sequence[int],
    remap: dict[int, int],
) -> NFSM:
    """Rebuild an NFSM keeping only ``keep`` nodes, applying ``remap`` first.

    ``remap`` maps removed node ids to their replacement (for merging); ids
    absent from both ``keep`` and ``remap`` are dropped entirely (deletion).
    """
    old_to_new: dict[int, int] = {START: START}
    new_orderings: list[Ordering | None] = [None]
    for old in keep:
        old_to_new[old] = len(new_orderings)
        new_orderings.append(nfsm.orderings[old])

    def translate(old: int) -> int | None:
        old = remap.get(old, old)
        return old_to_new.get(old)

    fd_targets: dict[tuple[int, int], frozenset[int]] = {}
    for (node, symbol), targets in nfsm.fd_targets.items():
        new_node = translate(node)
        if new_node is None:
            continue
        new_targets = frozenset(
            t for t in (translate(target) for target in targets) if t is not None
        )
        if new_targets and new_targets != frozenset((new_node,)):
            existing = fd_targets.get((new_node, symbol))
            if existing:
                new_targets |= existing
            fd_targets[(new_node, symbol)] = new_targets

    eps: dict[int, frozenset[int]] = {}
    for node, targets in nfsm.eps.items():
        new_node = translate(node)
        if new_node is None:
            continue
        new_targets = frozenset(
            t
            for t in (translate(target) for target in targets)
            if t is not None and t != new_node
        )
        if new_targets:
            existing = eps.get(new_node, frozenset())
            eps[new_node] = new_targets | existing

    return NFSM(
        orderings=tuple(new_orderings),
        interesting=nfsm.interesting,
        fd_symbols=nfsm.fd_symbols,
        producer_orders=nfsm.producer_orders,
        testable=nfsm.testable,
        fd_targets=fd_targets,
        eps=eps,
    )


def _protected_nodes(nfsm: NFSM) -> frozenset[int]:
    """Testable orders, producer entry points, and the start node."""
    protected = {START}
    testable = set(nfsm.testable)
    for node, order in enumerate(nfsm.orderings):
        if order is None:
            continue
        if order in testable or order in nfsm.producer_orders:
            protected.add(node)
    return frozenset(protected)


def _delete_pass(nfsm: NFSM) -> NFSM | None:
    """One ε-replacement pass; returns the reduced NFSM or None if unchanged."""
    protected = _protected_nodes(nfsm)
    symbols = range(len(nfsm.fd_symbols))
    deletable: list[int] = []
    for node in range(1, len(nfsm.orderings)):
        if node in protected:
            continue
        prefixes = nfsm.eps.get(node, frozenset())
        removable = True
        for symbol in symbols:
            extra = nfsm.targets(node, symbol) - {node}
            if not extra:
                continue
            provided: set[int] = set()
            for prefix in prefixes:
                provided |= nfsm.targets(prefix, symbol)
            if not extra <= provided:
                removable = False
                break
        if removable:
            deletable.append(node)
    if not deletable:
        return None
    keep = [
        node
        for node in range(1, len(nfsm.orderings))
        if node not in set(deletable)
    ]
    return _rebuild(nfsm, keep, remap={})


def _merge_pass(nfsm: NFSM) -> tuple[NFSM | None, int]:
    """One merge pass; returns (reduced NFSM or None, merged node count)."""
    protected = _protected_nodes(nfsm)
    symbols = range(len(nfsm.fd_symbols))
    groups: dict[tuple, list[int]] = {}
    for node in range(1, len(nfsm.orderings)):
        if node in protected:
            continue
        signature = (
            nfsm.eps.get(node, frozenset()),
            tuple(frozenset(nfsm.targets(node, s) - {node}) for s in symbols),
        )
        groups.setdefault(signature, []).append(node)

    remap: dict[int, int] = {}
    merged = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        representative = members[0]
        for other in members[1:]:
            remap[other] = representative
            merged += 1
    if not remap:
        return None, 0
    keep = [
        node for node in range(1, len(nfsm.orderings)) if node not in remap
    ]
    return _rebuild(nfsm, keep, remap), merged


def prune_nodes(nfsm: NFSM) -> NodePruneResult:
    """Iterate ε-replacement and merging to a fixpoint."""
    deleted = 0
    merged = 0
    changed = True
    while changed:
        changed = False
        reduced = _delete_pass(nfsm)
        if reduced is not None:
            deleted += nfsm.node_count - reduced.node_count
            nfsm = reduced
            changed = True
        reduced, merged_now = _merge_pass(nfsm)
        if reduced is not None:
            merged += merged_now
            nfsm = reduced
            changed = True
    return NodePruneResult(nfsm=nfsm, deleted=deleted, merged=merged)
