"""Order inference: the executable specification of Section 2.

This module implements the paper's derivation rules and the closure
``Ω(O, F)`` directly on explicit sets of orderings.  It serves three
purposes:

1. it is the *oracle* against which the NFSM/DFSM implementation is tested
   (they must agree on every ``contains`` answer for interesting orders),
2. it is used by the NFSM builder to materialize nodes and edges, and
3. it hosts the two search-space heuristics of Section 5.7 (length bound and
   interesting-order prefix bound) as an optional :class:`Bounds` filter.

Derivation rules (paper Section 2):

* prefix rule — an ordering satisfies every prefix of itself;
* FD rule — given ``o`` and ``B1..Bk -> B``, insert ``B`` at any position
  after all of ``B1..Bk`` (no-op when ``B`` already occurs in ``o``);
* equation rule ``a = b`` — both implied FDs, substitution of one side for
  the other, and (per Section 5.7) insertion *at* the position of the
  equivalent attribute, which yields e.g. ``(jobid, id)`` from ``(id)``;
* constant rule ``a = const`` — insert ``a`` at any position (``∅ -> a``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .attributes import Attribute
from .equivalence import EquivalenceClasses
from .fd import ConstantBinding, Equation, FDItem, FDSet, FunctionalDependency
from .ordering import Ordering
from .trie import PrefixTrie


@dataclass(frozen=True, slots=True)
class Derivation:
    """A one-step derivation result.

    ``insert_pos`` is the position at which a new attribute was inserted, or
    ``None`` for substitution steps; the Section 5.7 prefix heuristic needs
    the position to validate the insertion.
    """

    result: Ordering
    insert_pos: int | None


def _insertions(o: Ordering, attribute: Attribute, min_pos: int) -> Iterator[Derivation]:
    if attribute in o:
        return
    for pos in range(min_pos, len(o) + 1):
        yield Derivation(o.insert(pos, attribute), pos)


def derive_item(o: Ordering, item: FDItem) -> Iterator[Derivation]:
    """All one-step derivations of ``o`` under a single FD item."""
    if isinstance(item, FunctionalDependency):
        if not item.lhs <= o.attribute_set:
            return
        min_pos = max(o.index(a) for a in item.lhs) + 1
        yield from _insertions(o, item.rhs, min_pos)
    elif isinstance(item, ConstantBinding):
        yield from _insertions(o, item.attribute, 0)
    elif isinstance(item, Equation):
        for source, target in ((item.left, item.right), (item.right, item.left)):
            if source in o:
                # Insertion may happen *at* the source position as well
                # (Section 5.7: "for the special case of a condition a = b,
                # i = j is also possible").
                yield from _insertions(o, target, o.index(source))
                if target not in o:
                    yield Derivation(o.replace(o.index(source), target), None)
    else:  # pragma: no cover - guarded by FDSet validation
        raise TypeError(f"unknown FD item {item!r}")


class Bounds:
    """The Section 5.7 search-space heuristics as a derivation filter.

    * interesting orders are always kept verbatim;
    * with the prefix/relevance bound, a candidate is truncated to its
      longest *prefix* whose canonical form (attributes replaced by
      equivalence-class representatives) is a **subsequence** of some
      canonical interesting order, and discarded when no prefix qualifies;
    * when only the length bound is active, candidates are truncated to the
      maximal interesting-order length.

    A candidate that is a prefix of its source ordering carries no new
    information — prefix closure already provides it — and is discarded.

    **Soundness note (deviation from the paper).**  The paper's heuristic
    tests whether the *prefix up to the insertion point* matches an
    interesting order and stops otherwise.  That is unsound: inserting ``d``
    into ``(a)`` fails the prefix test against the interesting order
    ``(a, b, d)``, yet a later FD can insert ``b`` *between* ``a`` and
    ``d``, making ``(a, b, d)`` reachable only through the rejected node
    (found by the hypothesis property suite; pinned in
    ``tests/core/test_inference.py``).  The subsequence criterion repairs
    it: if a derived ordering ``c`` eventually yields an interesting order
    ``w`` (as a prefix of a descendant), then the elements of ``c`` landing
    inside that prefix form a *prefix of c* that is a *subsequence of w* —
    so keeping, for every candidate, its longest prefix that is a
    subsequence of some interesting order preserves all reachability
    (prefix closure supplies the shorter prefixes).  The filter coincides
    with the paper's on single-attribute interesting orders (all of its
    experiments).
    """

    def __init__(
        self,
        interesting: Iterable[Ordering],
        classes: EquivalenceClasses | None = None,
        *,
        use_prefix_bound: bool = True,
        use_length_bound: bool = True,
    ) -> None:
        self.interesting = frozenset(interesting)
        self.classes = classes or EquivalenceClasses()
        self.use_prefix_bound = use_prefix_bound
        self.use_length_bound = use_length_bound
        self.max_length = max((len(o) for o in self.interesting), default=0)
        self._canonical_interesting = tuple(
            {self.classes.canonical_sequence(o) for o in self.interesting}
        )

    @staticmethod
    def _matched_prefix_length(needle: tuple, hay: tuple) -> int:
        """Length of the longest prefix of ``needle`` that is a subsequence
        of ``hay`` (greedy two-pointer is exact for prefix matching)."""
        position = 0
        for element in hay:
            if position < len(needle) and needle[position] == element:
                position += 1
        return position

    def filter(self, derivation: Derivation, source: Ordering) -> Ordering | None:
        """Apply the heuristics to a one-step derivation; ``None`` = discard."""
        candidate = derivation.result
        if candidate in self.interesting:
            return candidate
        if self.use_prefix_bound:
            canonical = self.classes.canonical_sequence(candidate)
            matched = max(
                (
                    self._matched_prefix_length(canonical, target)
                    for target in self._canonical_interesting
                ),
                default=0,
            )
            if matched == 0:
                return None
            candidate = candidate.truncate(matched)
        elif self.use_length_bound and self.max_length:
            candidate = candidate.truncate(self.max_length)
        if candidate.is_prefix_of(source):
            return None
        return candidate


def prefix_closure(orders: Iterable[Ordering]) -> frozenset[Ordering]:
    """Close a set of orderings under (proper, non-empty) prefixes."""
    result: set[Ordering] = set()
    for order in orders:
        result.add(order)
        result.update(order.prefixes())
    return frozenset(result)


def _items_of(fdsets: Iterable[FDSet | FDItem]) -> tuple[FDItem, ...]:
    items: list[FDItem] = []
    seen: set[FDItem] = set()
    for entry in fdsets:
        entry_items = entry.items if isinstance(entry, FDSet) else (entry,)
        for item in entry_items:
            if item not in seen:
                seen.add(item)
                items.append(item)
    return tuple(items)


def omega(
    orders: Iterable[Ordering],
    fdsets: Iterable[FDSet | FDItem] = (),
    bounds: Bounds | None = None,
) -> frozenset[Ordering]:
    """Compute ``Ω(O, F)``: closure under prefixes and FD derivations.

    ``fdsets`` may mix :class:`FDSet` symbols and bare FD items; the closure
    is taken over the union of all items (interleaved application, exactly as
    the paper's fixpoint definition).  With ``bounds`` the closure is the
    *bounded* variant used for NFSM construction; without, it is the exact
    specification (always finite: orderings are duplicate-free sequences over
    a finite attribute set).
    """
    items = _items_of(fdsets)
    result: set[Ordering] = set()
    work: list[Ordering] = list(orders)
    while work:
        order = work.pop()
        if order in result:
            continue
        result.add(order)
        for prefix in order.prefixes():
            if prefix not in result:
                work.append(prefix)
        for item in items:
            for derivation in derive_item(order, item):
                candidate = (
                    bounds.filter(derivation, order) if bounds is not None else derivation.result
                )
                if candidate is not None and candidate not in result:
                    work.append(candidate)
    return frozenset(result)


def omega_new(
    order: Ordering,
    fdset: FDSet | FDItem,
    bounds: Bounds | None = None,
) -> frozenset[Ordering]:
    """``Ω_N(o, f)`` of Section 5.7: what ``f`` adds beyond prefix deduction."""
    return omega([order], [fdset], bounds) - omega([order], (), bounds)


def satisfies(orders: frozenset[Ordering], required: Ordering) -> bool:
    """Membership test against an explicit (closed) set of logical orderings."""
    return required in orders
