"""Binary codec for prepared order-optimization state (tables + DFSM).

The artifact store (:mod:`repro.service.artifacts`) persists a prepared
:class:`~repro.core.optimizer.OrderOptimizer` as one on-disk blob.  This
module owns the *numeric* half of that format: the dense lookup tables of
:class:`~repro.core.tables.PreparedTables` are encoded as two raw sections
that load back with one ``array.frombytes`` each — no per-cell Python loop
on the warm path:

* the **contains matrix** — ``state_count`` fixed-width little-endian
  integers (each row is the per-state bitmask, width sized to the widest
  row of this machine);
* the **transition table** — ``state_count × symbol_count`` signed 64-bit
  little-endian cells, flattened state-major.  Loading is a single
  ``frombytes`` into one flat ``array('q')`` plus per-state slices (C-level
  memcpy, no Python-int materialization).

Everything *symbolic* — orderings, FD sets, the NFSM, the fingerprint —
rides in a pickle section next to the numeric blob; see
:func:`encode_optimizer` / :func:`decode_optimizer`.  The symbolic section
is intentionally pickle: those objects are plain frozen dataclasses whose
pickled layout is tied to the source tree, and the artifact header's
commit/schema keys (checked by the store *before* unpickling) are what
keep a stale layout from ever being deserialized.

A lazy-prepared component is **frozen dense** before encoding
(:meth:`~repro.core.tables.LazyTables.freeze` — state numbering preserved,
every lookup answer identical), so an artifact always holds the complete
machine: a warm load replaces the whole build cost, which is the point.
"""

from __future__ import annotations

import pickle
import sys
from array import array
from dataclasses import replace
from typing import TYPE_CHECKING

from .dfsm import DFSM, LazyDFSM
from .tables import LazyTables, PreparedTables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .optimizer import OrderOptimizer


class SerializationError(ValueError):
    """A blob that cannot be decoded (corrupt, truncated, or foreign)."""


#: Bump when the numeric layout below changes shape.  The artifact store
#: carries this in its header and refuses (→ cold build) on mismatch.
TABLE_CODEC_VERSION = 1

_CELL = "q"  # signed 64-bit transition cells, platform-independent width
_CELL_BYTES = 8


def _native_is_little() -> bool:
    return sys.byteorder == "little"


def encode_tables(tables: PreparedTables) -> tuple[dict, bytes]:
    """Encode dense tables as ``(meta, blob)``.

    ``meta`` is JSON-shaped (ints only) and belongs in the artifact header;
    ``blob`` is the contains section followed by the transition section.
    """
    state_count = tables.state_count
    symbol_count = tables.symbol_count
    widest = max(tables.contains_rows, default=0)
    contains_width = max(1, (int(widest).bit_length() + 7) // 8)

    contains = bytearray()
    for row in tables.contains_rows:
        contains += int(row).to_bytes(contains_width, "little")

    flat = array(_CELL)
    for row in tables.transitions:
        # Rows are array('l') in memory ('q' after a decode); same-width
        # rows append as one memcpy, anything else goes element-wise
        # (extend refuses arrays of a different typecode outright).
        if isinstance(row, array) and row.itemsize == _CELL_BYTES:
            flat.frombytes(row.tobytes())
        else:
            flat.extend(int(cell) for cell in row)
    if not _native_is_little():  # pragma: no cover - big-endian host
        flat.byteswap()

    meta = {
        "codec": TABLE_CODEC_VERSION,
        "start_state": tables.start_state,
        "state_count": state_count,
        "symbol_count": symbol_count,
        "contains_width": contains_width,
    }
    return meta, bytes(contains) + flat.tobytes()


def decode_tables(
    meta: dict,
    blob: bytes,
    *,
    testable_orders: tuple,
    fd_symbols: tuple,
    producer_orders: tuple,
) -> PreparedTables:
    """Rebuild :class:`PreparedTables` from :func:`encode_tables` output.

    The numeric load is near zero-copy: one ``frombytes`` for the whole
    transition table, then per-state ``array`` slices.  Raises
    :class:`SerializationError` on any shape mismatch.
    """
    if meta.get("codec") != TABLE_CODEC_VERSION:
        raise SerializationError(
            f"table codec {meta.get('codec')!r} != {TABLE_CODEC_VERSION}"
        )
    state_count = meta["state_count"]
    symbol_count = meta["symbol_count"]
    contains_width = meta["contains_width"]
    contains_bytes = state_count * contains_width
    transition_bytes = state_count * symbol_count * _CELL_BYTES
    if len(blob) != contains_bytes + transition_bytes:
        raise SerializationError(
            f"table blob is {len(blob)} byte(s), expected "
            f"{contains_bytes + transition_bytes}"
        )
    if symbol_count != len(fd_symbols) + len(producer_orders):
        raise SerializationError("symbolic sections disagree with table shape")

    contains_rows = tuple(
        int.from_bytes(
            blob[i * contains_width : (i + 1) * contains_width], "little"
        )
        for i in range(state_count)
    )

    flat = array(_CELL)
    flat.frombytes(blob[contains_bytes:])
    if not _native_is_little():  # pragma: no cover - big-endian host
        flat.byteswap()
    transitions = tuple(
        flat[i * symbol_count : (i + 1) * symbol_count]
        for i in range(state_count)
    )

    return PreparedTables(
        start_state=meta["start_state"],
        testable_orders=testable_orders,
        fd_symbols=fd_symbols,
        producer_orders=producer_orders,
        contains_rows=contains_rows,
        transitions=transitions,
    )


# -- whole-optimizer encode/decode ---------------------------------------------


def encode_optimizer(optimizer: "OrderOptimizer") -> tuple[dict, bytes, bytes]:
    """Encode a prepared component as ``(table_meta, pickle_blob, table_blob)``.

    Lazy components are frozen dense first (forcing full materialization of
    the power set — the artifact must hold the complete machine).  When the
    component's tables were Moore-minimized, the unminimized DFSM cannot be
    reconstructed from them, so the whole machine object is pickled instead
    of just its state sets.
    """
    tables = optimizer.tables
    dfsm = optimizer.dfsm
    if isinstance(tables, LazyTables):
        tables = tables.freeze()
    states = tuple(dfsm.states)
    if tables.state_count == len(states):
        dfsm_payload: tuple = ("states", states)
    else:  # minimized tables: keep the unminimized machine verbatim
        dfsm_payload = ("machine", dfsm)

    table_meta, table_blob = encode_tables(tables)
    symbolic = {
        "interesting": optimizer.interesting,
        "nfsm": optimizer.nfsm,
        "options": optimizer.options,
        "fingerprint": optimizer.fingerprint,
        "stats": optimizer.stats,
        "mode": optimizer.mode,
        "fdset_aliases": dict(optimizer._fd_handles),
        "testable_orders": tables.testable_orders,
        "fd_symbols": tables.fd_symbols,
        "producer_orders": tables.producer_orders,
        "dfsm": dfsm_payload,
    }
    return table_meta, pickle.dumps(symbolic, protocol=4), table_blob


def decode_optimizer(
    table_meta: dict, pickle_blob: bytes, table_blob: bytes
) -> "OrderOptimizer":
    """Rebuild an :class:`OrderOptimizer` from :func:`encode_optimizer` output.

    Raises :class:`SerializationError` on anything malformed; never returns
    a half-built component.
    """
    from .optimizer import OrderOptimizer  # cycle: optimizer is a consumer

    try:
        symbolic = pickle.loads(pickle_blob)
    except Exception as error:
        raise SerializationError(f"symbolic section unreadable: {error}") from error
    if not isinstance(symbolic, dict) or "dfsm" not in symbolic:
        raise SerializationError("symbolic section has an unexpected shape")

    tables = decode_tables(
        table_meta,
        table_blob,
        testable_orders=symbolic["testable_orders"],
        fd_symbols=symbolic["fd_symbols"],
        producer_orders=symbolic["producer_orders"],
    )
    nfsm = symbolic["nfsm"]
    kind, payload = symbolic["dfsm"]
    if kind == "machine":
        dfsm = payload
    elif kind == "states":
        dfsm = _rebuild_dfsm(nfsm, payload, tables)
    else:
        raise SerializationError(f"unknown DFSM payload kind {kind!r}")

    stats = symbolic["stats"]
    return OrderOptimizer(
        symbolic["interesting"],
        nfsm,
        dfsm,
        tables,
        replace(stats, stage_ms=dict(stats.stage_ms)),
        symbolic["options"],
        fdset_aliases=symbolic["fdset_aliases"],
        fingerprint=symbolic["fingerprint"],
        mode=symbolic["mode"],
    )


def _rebuild_dfsm(nfsm, states: tuple, tables: PreparedTables) -> DFSM:
    """Reconstruct the introspection DFSM from the loaded tables.

    The transition table *contains* the machine: the FD columns are its FD
    rows, and the start-state's producer columns are the entry edges.  Only
    the ε-closed state sets travel separately (they are not derivable from
    the numeric tables).
    """
    if len(states) != tables.state_count:
        raise SerializationError(
            f"{len(states)} DFSM state set(s) for {tables.state_count} table row(s)"
        )
    fd_count = len(tables.fd_symbols)
    start_row = tables.transitions[tables.start_state]
    return DFSM(
        nfsm=nfsm,
        states=states,
        fd_transitions=tuple(
            tuple(row[:fd_count]) for row in tables.transitions
        ),
        producer_transitions={
            order: start_row[fd_count + i]
            for i, order in enumerate(tables.producer_orders)
        },
        start=tables.start_state,
    )


__all__ = [
    "SerializationError",
    "TABLE_CODEC_VERSION",
    "decode_optimizer",
    "decode_tables",
    "encode_optimizer",
    "encode_tables",
]
