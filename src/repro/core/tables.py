"""Precomputed lookup tables (Section 5.5, Figures 9 and 10).

Two matrices are derived from the DFSM:

* the **contains matrix** — one bit per (DFSM state, interesting order):
  whether the NFSM node of that interesting order is a member of the DFSM
  state.  Stored as one Python int bitmask per state (the paper uses a
  compact bit vector; the accounting below assumes one bit per entry
  rounded up to bytes per state);
* the **transition table** — ``state × symbol -> state`` where symbols are
  the FD-set handles followed by the produced-order handles.  Produced-order
  symbols act from the start state only (the ADT constructor); from any
  other state they are self-transitions.

With these tables, both ADT operations are single array lookups — the O(1)
claim of the paper.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from .dfsm import DFSM
from .fd import FDSet
from .nfsm import START
from .ordering import Ordering


@dataclass
class PreparedTables:
    """The O(1) runtime representation of the order optimization component."""

    start_state: int
    testable_orders: tuple[Ordering, ...]
    """The interesting orders plus their prefix closure (Figure 9 columns)."""

    fd_symbols: tuple[FDSet, ...]
    producer_orders: tuple[Ordering, ...]

    contains_rows: tuple[int, ...]
    """Per-state bitmask; bit ``i`` = state satisfies ``testable_orders[i]``."""

    transitions: tuple[array, ...]
    """Per-state symbol-indexed rows: FD symbols first, then producer symbols."""

    @property
    def state_count(self) -> int:
        return len(self.contains_rows)

    @property
    def symbol_count(self) -> int:
        return len(self.fd_symbols) + len(self.producer_orders)

    def contains(self, state: int, order_handle: int) -> bool:
        """O(1) membership test (Figure 9 lookup)."""
        return bool(self.contains_rows[state] >> order_handle & 1)

    def transition(self, state: int, symbol: int) -> int:
        """O(1) state transition (Figure 10 lookup)."""
        return self.transitions[state][symbol]

    # -- size accounting (paper Section 6.2, "precomputed data") ----------------

    @property
    def contains_bytes(self) -> int:
        row_bytes = (len(self.testable_orders) + 7) // 8
        return row_bytes * self.state_count

    @property
    def transition_bytes(self) -> int:
        # Two bytes per entry suffice for any realistic DFSM (the paper's
        # largest unpruned DFSM has 80 states).
        return 2 * self.symbol_count * self.state_count

    @property
    def total_bytes(self) -> int:
        return self.contains_bytes + self.transition_bytes

    # -- debugging / examples ----------------------------------------------------

    def contains_table(self) -> list[list[int]]:
        """The Figure 9 matrix as a list of 0/1 rows (state major)."""
        return [
            [1 if self.contains(state, i) else 0 for i in range(len(self.testable_orders))]
            for state in range(self.state_count)
        ]

    def transition_table(self) -> list[list[int]]:
        """The Figure 10 matrix as plain lists (state major)."""
        return [list(row) for row in self.transitions]


def build_tables(dfsm: DFSM) -> PreparedTables:
    """Precompute the contains matrix and transition table from a DFSM."""
    nfsm = dfsm.nfsm
    testable_orders = nfsm.testable
    node_of = nfsm.node_of

    contains_rows: list[int] = []
    for nodes in dfsm.states:
        row = 0
        for i, order in enumerate(testable_orders):
            node = node_of.get(order)
            if node is not None and node in nodes:
                row |= 1 << i
        contains_rows.append(row)

    producer_orders = nfsm.producer_orders

    transitions: list[array] = []
    for state, fd_row in enumerate(dfsm.fd_transitions):
        row = array("l", fd_row)
        for order in producer_orders:
            if state == dfsm.start:
                row.append(dfsm.producer_transitions[order])
            else:
                row.append(state)
        transitions.append(row)

    return PreparedTables(
        start_state=dfsm.start,
        testable_orders=testable_orders,
        fd_symbols=nfsm.fd_symbols,
        producer_orders=producer_orders,
        contains_rows=tuple(contains_rows),
        transitions=tuple(transitions),
    )


def state_for_node_set(dfsm: DFSM, node: int) -> frozenset[int]:
    """ε-closure helper exposed for tests."""
    if node == START:
        return frozenset((START,))
    return dfsm.nfsm.eps_closure(node)


def minimize_tables(tables: PreparedTables) -> PreparedTables:
    """Moore-minimize the prepared tables (extension beyond the paper).

    Merges DFSM states with identical contains rows and identical reactions
    to every symbol.  Observable ADT behaviour is preserved by construction;
    the tables shrink and plan pruning improves (plans whose states merge
    become cost-comparable).  Note that :class:`repro.core.dfsm.DFSM`
    introspection objects keep the unminimized state ids.
    """
    from ..automata.minimize import minimize_moore

    state_map, n_classes = minimize_moore(
        tables.contains_rows,
        tables.transitions,
        tables.start_state,
    )
    if n_classes == tables.state_count:
        return tables

    contains_rows = [0] * n_classes
    transitions: list[array | None] = [None] * n_classes
    for state, cls in enumerate(state_map):
        contains_rows[cls] = tables.contains_rows[state]
        if transitions[cls] is None:
            transitions[cls] = array(
                "l", (state_map[t] for t in tables.transitions[state])
            )
    return PreparedTables(
        start_state=state_map[tables.start_state],
        testable_orders=tables.testable_orders,
        fd_symbols=tables.fd_symbols,
        producer_orders=tables.producer_orders,
        contains_rows=tuple(contains_rows),
        transitions=tuple(t for t in transitions if t is not None),
    )
