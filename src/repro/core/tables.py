"""Precomputed lookup tables (Section 5.5, Figures 9 and 10).

Two matrices are derived from the DFSM:

* the **contains matrix** — one bit per (DFSM state, interesting order):
  whether the NFSM node of that interesting order is a member of the DFSM
  state.  Stored as one Python int bitmask per state (the paper uses a
  compact bit vector; the accounting below assumes one bit per entry
  rounded up to bytes per state);
* the **transition table** — ``state × symbol -> state`` where symbols are
  the FD-set handles followed by the produced-order handles.  Produced-order
  symbols act from the start state only (the ADT constructor); from any
  other state they are self-transitions.

With these tables, both ADT operations are single array lookups — the O(1)
claim of the paper.

Two variants share that interface:

* :class:`PreparedTables` — the eager, dense precomputation over a complete
  :class:`~repro.core.dfsm.DFSM` (the paper's Figures 9/10, verbatim);
* :class:`LazyTables` — a growable, array-backed mirror over a
  :class:`~repro.core.dfsm.LazyDFSM`: rows appear as states materialize,
  cells fill on first lookup (``-1`` sentinel), and contains bitmasks are
  computed per materialized state.  Warm lookups are the same single array
  read; cold lookups additionally run one step of the subset construction.

Consumers (the optimizer ADT, the FSM backend, dominance, benchmarks) are
written against the shared surface: ``contains`` / ``transition`` /
``state_count`` / ``symbol_count`` / the byte accounting /
``states_materialized`` vs ``states_total``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from .dfsm import DFSM, LazyDFSM
from .fd import FDSet
from .nfsm import START
from .ordering import Ordering


def contains_matrix_bytes(order_count: int, state_count: int) -> int:
    """Contains-matrix size: one bit per (state, testable order), rounded up
    to whole bytes per state (the paper's compact bit vector)."""
    return ((order_count + 7) // 8) * state_count


def transition_table_bytes(symbol_count: int, state_count: int) -> int:
    """Transition-table size: two bytes per entry suffice for any realistic
    DFSM (the paper's largest unpruned machine has 80 states).  Shared by
    the eager and lazy variants so their byte accounting never diverges."""
    return 2 * symbol_count * state_count


@dataclass
class PreparedTables:
    """The O(1) runtime representation of the order optimization component."""

    start_state: int
    testable_orders: tuple[Ordering, ...]
    """The interesting orders plus their prefix closure (Figure 9 columns)."""

    fd_symbols: tuple[FDSet, ...]
    producer_orders: tuple[Ordering, ...]

    contains_rows: tuple[int, ...]
    """Per-state bitmask; bit ``i`` = state satisfies ``testable_orders[i]``."""

    transitions: tuple[array, ...]
    """Per-state symbol-indexed rows: FD symbols first, then producer symbols."""

    @property
    def state_count(self) -> int:
        return len(self.contains_rows)

    @property
    def symbol_count(self) -> int:
        return len(self.fd_symbols) + len(self.producer_orders)

    def contains(self, state: int, order_handle: int) -> bool:
        """O(1) membership test (Figure 9 lookup)."""
        return bool(self.contains_rows[state] >> order_handle & 1)

    def transition(self, state: int, symbol: int) -> int:
        """O(1) state transition (Figure 10 lookup)."""
        return self.transitions[state][symbol]

    # -- size accounting (paper Section 6.2, "precomputed data") ----------------

    @property
    def contains_bytes(self) -> int:
        return contains_matrix_bytes(len(self.testable_orders), self.state_count)

    @property
    def transition_bytes(self) -> int:
        return transition_table_bytes(self.symbol_count, self.state_count)

    @property
    def total_bytes(self) -> int:
        return self.contains_bytes + self.transition_bytes

    # -- materialization accounting (shared with LazyTables) --------------------

    @property
    def states_materialized(self) -> int:
        """Eager tables are fully materialized by construction."""
        return self.state_count

    @property
    def states_total(self) -> int:
        """Total reachable DFSM states (known exactly for eager tables)."""
        return self.state_count

    # -- debugging / examples ----------------------------------------------------

    def contains_table(self) -> list[list[int]]:
        """The Figure 9 matrix as a list of 0/1 rows (state major)."""
        return [
            [1 if self.contains(state, i) else 0 for i in range(len(self.testable_orders))]
            for state in range(self.state_count)
        ]

    def transition_table(self) -> list[list[int]]:
        """The Figure 10 matrix as plain lists (state major)."""
        return [list(row) for row in self.transitions]


def build_tables(dfsm: DFSM) -> PreparedTables:
    """Precompute the contains matrix and transition table from a DFSM."""
    nfsm = dfsm.nfsm
    testable_orders = nfsm.testable
    node_of = nfsm.node_of

    contains_rows: list[int] = []
    for nodes in dfsm.states:
        row = 0
        for i, order in enumerate(testable_orders):
            node = node_of.get(order)
            if node is not None and node in nodes:
                row |= 1 << i
        contains_rows.append(row)

    producer_orders = nfsm.producer_orders

    transitions: list[array] = []
    for state, fd_row in enumerate(dfsm.fd_transitions):
        row = array("l", fd_row)
        for order in producer_orders:
            if state == dfsm.start:
                row.append(dfsm.producer_transitions[order])
            else:
                row.append(state)
        transitions.append(row)

    return PreparedTables(
        start_state=dfsm.start,
        testable_orders=testable_orders,
        fd_symbols=nfsm.fd_symbols,
        producer_orders=producer_orders,
        contains_rows=tuple(contains_rows),
        transitions=tuple(transitions),
    )


class LazyTables:
    """Growable, incrementally-filled tables over a :class:`LazyDFSM`.

    Presents exactly the :class:`PreparedTables` lookup surface, but nothing
    is precomputed: transition rows are ``array('l')`` rows filled with a
    ``-1`` sentinel and grown as states materialize, and contains bitmasks
    are computed once per materialized state on the first ``contains``.  A
    DP run that reaches 5 of 80 power-set states allocates 5 rows.

    The instance is long-lived on purpose: the service layer's prepared-state
    cache keeps it (inside its :class:`~repro.core.optimizer.OrderOptimizer`)
    across queries, so repeated templates keep amortizing — every state any
    earlier query materialized is a warm O(1) lookup for the next one.
    """

    def __init__(self, dfsm: LazyDFSM) -> None:
        nfsm = dfsm.nfsm
        self._dfsm = dfsm
        self.start_state = dfsm.start
        self.testable_orders = nfsm.testable
        self.fd_symbols = nfsm.fd_symbols
        self.producer_orders = nfsm.producer_orders
        self._fd_count = len(self.fd_symbols)
        # Bit layout of a contains row, resolved to NFSM node ids once.
        node_of = nfsm.node_of
        self._contains_bits = tuple(
            (i, node_of.get(order)) for i, order in enumerate(self.testable_orders)
        )
        self._rows: list[array] = []
        self._contains_rows: list[int] = []
        self._sync()

    def _sync(self) -> None:
        """Grow the row storage to cover every state the DFSM has interned."""
        symbol_count = self.symbol_count
        dfsm = self._dfsm
        while len(self._rows) < dfsm.state_count:
            self._rows.append(array("l", [-1]) * symbol_count)
            self._contains_rows.append(-1)

    # -- the shared table interface ----------------------------------------------

    @property
    def state_count(self) -> int:
        """Materialized states (the lazy analogue of the eager state count)."""
        return self._dfsm.state_count

    @property
    def symbol_count(self) -> int:
        return self._fd_count + len(self.producer_orders)

    def contains(self, state: int, order_handle: int) -> bool:
        """O(1) after the state's bitmask is computed (once per state)."""
        row = self._contains_rows[state]
        if row < 0:
            row = 0
            nodes = self._dfsm.states[state]
            for bit, node in self._contains_bits:
                if node is not None and node in nodes:
                    row |= 1 << bit
            self._contains_rows[state] = row
        return bool(row >> order_handle & 1)

    def transition(self, state: int, symbol: int) -> int:
        """O(1) when warm; one subset-construction step when cold."""
        row = self._rows[state]
        target = row[symbol]
        if target >= 0:
            return target
        if symbol < self._fd_count:
            target = self._dfsm.fd_transition(state, symbol)
        elif state == self._dfsm.start:
            order = self.producer_orders[symbol - self._fd_count]
            target = self._dfsm.producer_transition(order)
        else:
            target = state  # producer symbols self-transition off the start
        self._sync()
        self._rows[state][symbol] = target
        return target

    # -- size accounting (materialized rows only) --------------------------------

    @property
    def contains_bytes(self) -> int:
        return contains_matrix_bytes(len(self.testable_orders), self.state_count)

    @property
    def transition_bytes(self) -> int:
        return transition_table_bytes(self.symbol_count, self.state_count)

    @property
    def total_bytes(self) -> int:
        return self.contains_bytes + self.transition_bytes

    # -- materialization accounting ------------------------------------------------

    @property
    def states_materialized(self) -> int:
        return self._dfsm.state_count

    @property
    def states_total(self) -> int | None:
        """Unknown until the machine is forced (that is the point of lazy)."""
        return None

    # -- escape hatches ------------------------------------------------------------

    def materialize_all(self) -> int:
        """Force the full power set (dominance / minimization / debugging)."""
        count = self._dfsm.materialize_all()
        self._sync()
        return count

    def freeze(self) -> PreparedTables:
        """Materialize everything and return dense eager tables.

        The returned tables carry the *lazy* machine's state numbering
        (discovery order), which is a relabeling of the eager BFS order —
        every lookup answer is identical.
        """
        self.materialize_all()
        for state in range(self.state_count):
            self.contains(state, 0)
            for symbol in range(self.symbol_count):
                self.transition(state, symbol)
        return PreparedTables(
            start_state=self.start_state,
            testable_orders=self.testable_orders,
            fd_symbols=self.fd_symbols,
            producer_orders=self.producer_orders,
            contains_rows=tuple(self._contains_rows),
            transitions=tuple(self._rows),
        )

    def contains_table(self) -> list[list[int]]:
        """Debugging dump; forces full materialization first."""
        return self.freeze().contains_table()

    def transition_table(self) -> list[list[int]]:
        """Debugging dump; forces full materialization first."""
        return self.freeze().transition_table()


def state_for_node_set(dfsm: DFSM, node: int) -> frozenset[int]:
    """ε-closure helper exposed for tests."""
    if node == START:
        return frozenset((START,))
    return dfsm.nfsm.eps_closure(node)


def minimize_tables(tables: PreparedTables) -> PreparedTables:
    """Moore-minimize the prepared tables (extension beyond the paper).

    Merges DFSM states with identical contains rows and identical reactions
    to every symbol.  Observable ADT behaviour is preserved by construction;
    the tables shrink and plan pruning improves (plans whose states merge
    become cost-comparable).  Note that :class:`repro.core.dfsm.DFSM`
    introspection objects keep the unminimized state ids.
    """
    from ..automata.minimize import minimize_moore

    state_map, n_classes = minimize_moore(
        tables.contains_rows,
        tables.transitions,
        tables.start_state,
    )
    if n_classes == tables.state_count:
        return tables

    contains_rows = [0] * n_classes
    transitions: list[array | None] = [None] * n_classes
    for state, cls in enumerate(state_map):
        contains_rows[cls] = tables.contains_rows[state]
        if transitions[cls] is None:
            transitions[cls] = array(
                "l", (state_map[t] for t in tables.transitions[state])
            )
    return PreparedTables(
        start_state=state_map[tables.start_state],
        testable_orders=tables.testable_orders,
        fd_symbols=tables.fd_symbols,
        producer_orders=tables.producer_orders,
        contains_rows=tuple(contains_rows),
        transitions=tuple(t for t in transitions if t is not None),
    )
