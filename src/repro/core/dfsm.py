"""NFSM → DFSM conversion (Section 5.4, Appendix A).

The classic NFA power-set construction, lifted to finite state machines
without accepting states.  DFSM states are ε-closed sets of NFSM nodes; the
construction preserves the artificial start node and the producer entry
edges, which is what makes the O(1) ADT constructor possible.

Because every NFSM node is among its own FD targets (closure edges), FD
transitions are monotone: the represented set of logical orderings only
grows, mirroring the semantics of ``inferNewLogicalOrderings``.

Two determinization strategies share one kernel (:func:`fd_successor` /
:func:`entry_closure`):

* :func:`subset_construction` — the **eager** path: breadth-first expansion
  to the full reachable power set, producing the immutable :class:`DFSM`.
  An optional ``state_cap`` aborts oversized expansions with
  :exc:`StateCapExceeded` so callers can fall back to the lazy path;
* :class:`LazyDFSM` — the **on-demand** path: states are interned the first
  time a producer entry or an FD transition reaches them, transition rows
  fill cell by cell, and a plan-generation run that touches a fraction of
  the power set only ever pays for that fraction.

Both intern states by their ε-closed NFSM node *set*, so equal subsets get
equal (mode-local) ids in either mode: the lazy machine's reachable part is
a bijective relabeling of the eager machine, and every ``contains``/
``infer`` answer is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .nfsm import NFSM, START
from .ordering import Ordering


class StateCapExceeded(RuntimeError):
    """Raised when eager determinization exceeds its state budget."""

    def __init__(self, cap: int) -> None:
        super().__init__(
            f"power-set construction exceeded the eager state cap of {cap} "
            "states; retry with the lazy preparation mode"
        )
        self.cap = cap


def fd_successor(nfsm: NFSM, nodes: frozenset[int], symbol: int) -> frozenset[int]:
    """The subset-construction kernel: successor node set under one FD symbol.

    ε-closes every target, and carries the artificial start node through
    unchanged (FD symbols are self-transitions on ``q0``).  Shared by the
    eager breadth-first expansion and the lazy per-cell fills, so both modes
    compute bit-identical state sets by construction.
    """
    targets: set[int] = set()
    for node in nodes:
        if node == START:
            targets.add(node)
            continue
        for target in nfsm.targets(node, symbol):
            targets.update(nfsm.eps_closure(target))
    return frozenset(targets)


@dataclass
class DFSM:
    """The deterministic FSM produced by the subset construction."""

    nfsm: NFSM
    states: tuple[frozenset[int], ...]
    """DFSM state id -> set of NFSM node ids (ε-closed)."""

    fd_transitions: tuple[tuple[int, ...], ...]
    """[state][fd symbol] -> state."""

    producer_transitions: dict[Ordering, int]
    """Entry edges from the start state: produced ordering -> state."""

    start: int = 0

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def transition_count(self) -> int:
        return sum(len(row) for row in self.fd_transitions) + len(self.producer_transitions)

    def state_orderings(self, state: int) -> frozenset[Ordering]:
        """The explicit set of logical orderings a DFSM state represents."""
        orderings = self.nfsm.orderings
        return frozenset(
            orderings[node]  # type: ignore[misc]
            for node in self.states[state]
            if node != START and orderings[node] is not None
        )

    def describe(self) -> str:
        lines = [f"DFSM: {self.state_count} states"]
        for state_id, nodes in enumerate(self.states):
            content = ", ".join(
                repr(self.nfsm.orderings[n]) for n in sorted(nodes) if n != START
            )
            marker = " (start)" if state_id == self.start else ""
            lines.append(f"  state {state_id}{marker}: {{{content}}}")
            for symbol, fdset in enumerate(self.nfsm.fd_symbols):
                target = self.fd_transitions[state_id][symbol]
                if target != state_id:
                    lines.append(f"    --{fdset}--> state {target}")
        for order, target in sorted(
            self.producer_transitions.items(), key=lambda kv: repr(kv[0])
        ):
            lines.append(f"  start --[{order!r}]--> state {target}")
        return "\n".join(lines)


def subset_construction(nfsm: NFSM, *, state_cap: int | None = None) -> DFSM:
    """Convert the NFSM into a DFSM by the power-set construction.

    Producer symbols are only expanded from the start state (the ADT
    constructor is the only caller); from every other state a produced-order
    symbol is a self-transition and cannot create new states.

    ``state_cap`` bounds the expansion: interning a state beyond the cap
    raises :exc:`StateCapExceeded` instead of completing, which is how
    :meth:`repro.core.optimizer.OrderOptimizer.prepare` guards the eager
    mode against pathological power sets and falls back to :class:`LazyDFSM`.
    """
    symbol_count = len(nfsm.fd_symbols)
    node_ids = nfsm.node_of

    start_set = frozenset((START,))
    state_ids: dict[frozenset[int], int] = {start_set: 0}
    states: list[frozenset[int]] = [start_set]
    fd_rows: list[tuple[int, ...]] = []

    def intern(nodes: frozenset[int]) -> int:
        state = state_ids.get(nodes)
        if state is None:
            if state_cap is not None and len(states) >= state_cap:
                raise StateCapExceeded(state_cap)
            state = len(states)
            state_ids[nodes] = state
            states.append(nodes)
        return state

    producer_transitions: dict[Ordering, int] = {}
    for order in nfsm.producer_orders:
        entry = node_ids[order]
        producer_transitions[order] = intern(nfsm.eps_closure(entry))

    # Breadth-first expansion over FD symbols.
    explored = 0
    while explored < len(states):
        nodes = states[explored]
        row = tuple(
            intern(fd_successor(nfsm, nodes, symbol))
            for symbol in range(symbol_count)
        )
        fd_rows.append(row)
        explored += 1

    return DFSM(
        nfsm=nfsm,
        states=tuple(states),
        fd_transitions=tuple(fd_rows),
        producer_transitions=producer_transitions,
        start=0,
    )


class LazyDFSM:
    """On-demand determinization: the DFSM materialized one state at a time.

    Structurally a growable mirror of :class:`DFSM`: ``states[i]`` is the
    ε-closed NFSM node set of state ``i``, but states exist only once an
    operation reaches them — the constructor interns just the start state.
    Producer entries are followed (and their ε-closures interned) on the
    first :meth:`producer_transition` for that ordering; FD transition rows
    fill cell by cell in :meth:`fd_transition`, caching the successor so the
    second lookup is the same O(1) array read the eager tables do.

    Determinism: interning is keyed by the node set, and the successor sets
    come from the shared :func:`fd_successor` kernel, so the reachable part
    of this machine is always a relabeling of the eager DFSM — lazy state
    ids are discovery-ordered, eager ids are BFS-ordered, and the bijection
    preserves every observable answer.
    """

    def __init__(self, nfsm: NFSM) -> None:
        self.nfsm = nfsm
        self.start = 0
        start_set = frozenset((START,))
        self._state_ids: Dict[frozenset[int], int] = {start_set: 0}
        self.states: List[frozenset[int]] = [start_set]
        self._fd_rows: List[List[int | None]] = [self._empty_row()]
        self.producer_transitions: Dict[Ordering, int] = {}
        self._node_ids = nfsm.node_of

    def _empty_row(self) -> List[int | None]:
        return [None] * len(self.nfsm.fd_symbols)

    def _intern(self, nodes: frozenset[int]) -> int:
        state = self._state_ids.get(nodes)
        if state is None:
            state = len(self.states)
            self._state_ids[nodes] = state
            self.states.append(nodes)
            self._fd_rows.append(self._empty_row())
        return state

    # -- introspection -------------------------------------------------------

    @property
    def state_count(self) -> int:
        """States materialized *so far* (grows as the machine is driven)."""
        return len(self.states)

    @property
    def transitions_filled(self) -> int:
        """FD transition cells computed so far (plus producer entries)."""
        filled = sum(
            1 for row in self._fd_rows for cell in row if cell is not None
        )
        return filled + len(self.producer_transitions)

    @property
    def transition_count(self) -> int:
        """Interface parity with :class:`DFSM`: transitions that *exist*,
        which for a lazy machine is exactly the filled ones."""
        return self.transitions_filled

    def state_orderings(self, state: int) -> frozenset[Ordering]:
        """The explicit set of logical orderings a materialized state holds."""
        orderings = self.nfsm.orderings
        return frozenset(
            orderings[node]  # type: ignore[misc]
            for node in self.states[state]
            if node != START and orderings[node] is not None
        )

    # -- the on-demand transition functions ----------------------------------

    def producer_transition(self, order: Ordering) -> int:
        """Entry edge from the start state, materializing its target once."""
        target = self.producer_transitions.get(order)
        if target is None:
            entry = self._node_ids[order]
            target = self._intern(self.nfsm.eps_closure(entry))
            self.producer_transitions[order] = target
        return target

    def fd_transition(self, state: int, symbol: int) -> int:
        """FD successor of a materialized state, computed and cached on first
        use (the per-state lazily-filled transition row)."""
        row = self._fd_rows[state]
        target = row[symbol]
        if target is None:
            target = self._intern(fd_successor(self.nfsm, self.states[state], symbol))
            row[symbol] = target
        return target

    def materialize_all(self) -> int:
        """Force the full reachable power set (used by consumers that need a
        complete machine: dominance fixpoints, table minimization, debugging
        dumps).  Returns the final state count; idempotent."""
        for order in self.nfsm.producer_orders:
            self.producer_transition(order)
        explored = 0
        while explored < len(self.states):
            for symbol in range(len(self.nfsm.fd_symbols)):
                self.fd_transition(explored, symbol)
            explored += 1
        return len(self.states)
