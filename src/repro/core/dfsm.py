"""NFSM → DFSM conversion (Section 5.4, Appendix A).

The classic NFA power-set construction, lifted to finite state machines
without accepting states.  DFSM states are ε-closed sets of NFSM nodes; the
construction preserves the artificial start node and the producer entry
edges, which is what makes the O(1) ADT constructor possible.

Because every NFSM node is among its own FD targets (closure edges), FD
transitions are monotone: the represented set of logical orderings only
grows, mirroring the semantics of ``inferNewLogicalOrderings``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nfsm import NFSM, START
from .ordering import Ordering


@dataclass
class DFSM:
    """The deterministic FSM produced by the subset construction."""

    nfsm: NFSM
    states: tuple[frozenset[int], ...]
    """DFSM state id -> set of NFSM node ids (ε-closed)."""

    fd_transitions: tuple[tuple[int, ...], ...]
    """[state][fd symbol] -> state."""

    producer_transitions: dict[Ordering, int]
    """Entry edges from the start state: produced ordering -> state."""

    start: int = 0

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def transition_count(self) -> int:
        return sum(len(row) for row in self.fd_transitions) + len(self.producer_transitions)

    def state_orderings(self, state: int) -> frozenset[Ordering]:
        """The explicit set of logical orderings a DFSM state represents."""
        orderings = self.nfsm.orderings
        return frozenset(
            orderings[node]  # type: ignore[misc]
            for node in self.states[state]
            if node != START and orderings[node] is not None
        )

    def describe(self) -> str:
        lines = [f"DFSM: {self.state_count} states"]
        for state_id, nodes in enumerate(self.states):
            content = ", ".join(
                repr(self.nfsm.orderings[n]) for n in sorted(nodes) if n != START
            )
            marker = " (start)" if state_id == self.start else ""
            lines.append(f"  state {state_id}{marker}: {{{content}}}")
            for symbol, fdset in enumerate(self.nfsm.fd_symbols):
                target = self.fd_transitions[state_id][symbol]
                if target != state_id:
                    lines.append(f"    --{fdset}--> state {target}")
        for order, target in sorted(
            self.producer_transitions.items(), key=lambda kv: repr(kv[0])
        ):
            lines.append(f"  start --[{order!r}]--> state {target}")
        return "\n".join(lines)


def subset_construction(nfsm: NFSM) -> DFSM:
    """Convert the NFSM into a DFSM by the power-set construction.

    Producer symbols are only expanded from the start state (the ADT
    constructor is the only caller); from every other state a produced-order
    symbol is a self-transition and cannot create new states.
    """
    symbol_count = len(nfsm.fd_symbols)
    node_ids = {o: i for i, o in enumerate(nfsm.orderings) if o is not None}

    start_set = frozenset((START,))
    state_ids: dict[frozenset[int], int] = {start_set: 0}
    states: list[frozenset[int]] = [start_set]
    fd_rows: list[tuple[int, ...]] = []

    def intern(nodes: frozenset[int]) -> int:
        state = state_ids.get(nodes)
        if state is None:
            state = len(states)
            state_ids[nodes] = state
            states.append(nodes)
        return state

    producer_transitions: dict[Ordering, int] = {}
    for order in nfsm.producer_orders:
        entry = node_ids[order]
        producer_transitions[order] = intern(nfsm.eps_closure(entry))

    # Breadth-first expansion over FD symbols.
    explored = 0
    while explored < len(states):
        nodes = states[explored]
        row: list[int] = []
        for symbol in range(symbol_count):
            targets: set[int] = set()
            for node in nodes:
                if node == START:
                    targets.add(node)
                    continue
                for target in nfsm.targets(node, symbol):
                    targets.update(nfsm.eps_closure(target))
            row.append(intern(frozenset(targets)))
        fd_rows.append(tuple(row))
        explored += 1

    return DFSM(
        nfsm=nfsm,
        states=tuple(states),
        fd_transitions=tuple(fd_rows),
        producer_transitions=producer_transitions,
        start=0,
    )
