"""Simulation dominance between DFSM states (extension beyond the paper).

The paper prunes plans only when their DFSM states are *equal*.  A strictly
stronger, still safe criterion: state ``s1`` *dominates* ``s2`` when ``s1``
satisfies every testable order ``s2`` satisfies **and** keeps doing so after
any sequence of FD-set symbols — a simulation preorder over the transition
system.  A cheaper plan whose state dominates another plan's state makes
the latter unnecessary: every future ``contains`` it could pass, the
dominating plan passes too, at no larger cost.

Computed as a greatest fixpoint over the precomputed tables: start from all
pairs whose contains rows are in superset relation, then repeatedly remove
pairs with a successor pair not in the relation.
"""

from __future__ import annotations

from .tables import PreparedTables


def simulation_dominance(tables: PreparedTables) -> tuple[frozenset[int], ...]:
    """For each state ``s``, the set of states it dominates (excluding itself).

    ``result[s1]`` contains ``s2`` iff ``s1`` simulates ``s2``.
    """
    n = tables.state_count
    rows = tables.contains_rows
    symbol_count = tables.symbol_count

    # candidate pairs: contains-row superset (bitmask inclusion)
    dominates: list[set[int]] = [
        {
            s2
            for s2 in range(n)
            if s2 != s1 and rows[s1] & rows[s2] == rows[s2]
        }
        for s1 in range(n)
    ]

    changed = True
    while changed:
        changed = False
        for s1 in range(n):
            doomed = []
            for s2 in dominates[s1]:
                for symbol in range(symbol_count):
                    t1 = tables.transition(s1, symbol)
                    t2 = tables.transition(s2, symbol)
                    if t1 != t2 and t2 not in dominates[t1]:
                        doomed.append(s2)
                        break
            if doomed:
                changed = True
                dominates[s1].difference_update(doomed)
    return tuple(frozenset(d) for d in dominates)
