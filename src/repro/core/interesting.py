"""Interesting orders: the inputs of the preparation phase (Section 5.2).

The set of interesting orders ``O_I`` is partitioned into

* ``O_P`` — orderings *produced* by some physical operator (index scans,
  sorts, the ``ORDER BY`` target, ...).  These get an artificial entry edge
  from the start node ``q0`` so the ADT constructor is a single transition;
* ``O_T`` — orderings that are only *tested for* (e.g. an ordering a
  selection could exploit but no operator generates).

Orders in ``O_P`` may of course also be tested for; the partition stored
here keeps the two sets disjoint by treating "produced" as the stronger
property, exactly like the paper's ``Q_I = Q_I^P ∪ Q_I^T`` with
``Q_I^P ∩ Q_I^T = ∅``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .ordering import Ordering


def _dedupe(orders: Iterable[Ordering]) -> tuple[Ordering, ...]:
    seen: set[Ordering] = set()
    result: list[Ordering] = []
    for order in orders:
        if not isinstance(order, Ordering):
            raise TypeError(f"expected Ordering, got {order!r}")
        if len(order) == 0:
            raise ValueError("the empty ordering cannot be an interesting order")
        if order not in seen:
            seen.add(order)
            result.append(order)
    return tuple(result)


@dataclass(frozen=True)
class InterestingOrders:
    """The partitioned set ``O_I = O_P ∪ O_T`` of interesting orders.

    The optional *grouping* fields carry the groupings extension (the
    follow-up work to the paper; see :mod:`repro.core.grouping`): groupings
    a grouping-aware operator produces or tests for.  They default to empty,
    in which case the machinery adds zero overhead.
    """

    produced: tuple[Ordering, ...] = field(default_factory=tuple)
    tested: tuple[Ordering, ...] = field(default_factory=tuple)
    groupings_produced: tuple = field(default_factory=tuple)
    groupings_tested: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        produced = _dedupe(self.produced)
        produced_set = set(produced)
        tested = tuple(o for o in _dedupe(self.tested) if o not in produced_set)
        object.__setattr__(self, "produced", produced)
        object.__setattr__(self, "tested", tested)
        g_produced = tuple(dict.fromkeys(self.groupings_produced))
        g_tested = tuple(
            g for g in dict.fromkeys(self.groupings_tested) if g not in g_produced
        )
        object.__setattr__(self, "groupings_produced", g_produced)
        object.__setattr__(self, "groupings_tested", g_tested)

    @classmethod
    def of(
        cls,
        produced: Iterable[Ordering] = (),
        tested: Iterable[Ordering] = (),
        groupings_produced: Iterable = (),
        groupings_tested: Iterable = (),
    ) -> "InterestingOrders":
        return cls(
            tuple(produced),
            tuple(tested),
            tuple(groupings_produced),
            tuple(groupings_tested),
        )

    @property
    def all_groupings(self) -> tuple:
        return self.groupings_produced + self.groupings_tested

    @property
    def all_orders(self) -> tuple[Ordering, ...]:
        """Every interesting order, produced first, deterministic order."""
        return self.produced + self.tested

    @property
    def max_length(self) -> int:
        return max((len(o) for o in self.all_orders), default=0)

    def is_produced(self, order: Ordering) -> bool:
        return order in self.produced

    def __contains__(self, order: object) -> bool:
        return order in self.produced or order in self.tested

    def __len__(self) -> int:
        return len(self.produced) + len(self.tested)

    def merge(self, other: "InterestingOrders") -> "InterestingOrders":
        """Union of two interesting-order sets (produced wins over tested)."""
        return InterestingOrders(
            self.produced + other.produced,
            self.tested + other.tested,
            self.groupings_produced + other.groupings_produced,
            self.groupings_tested + other.groupings_tested,
        )
