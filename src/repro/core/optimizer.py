"""The order-optimization component: preparation pipeline plus O(1) ADT.

:class:`OrderOptimizer.prepare` runs the four preparation steps of the
paper's Figure 3:

1. determine the input (interesting orders, FD sets — supplied by the
   caller, typically :mod:`repro.query.analyzer`),
2. construct the NFSM (nodes, FD filtering, edges, node pruning, start node),
3. convert the NFSM into a DFSM (power-set construction),
4. precompute the contains matrix and the transition table.

Afterwards the ADT ``LogicalOrderings`` of the paper is available: a plan
node's state is one ``int``; ``contains`` and ``infer_new_logical_orderings``
are single table lookups.  The mid-plan *sort* entry (Section 5.6: follow
the producer edge, then replay the FD-set symbols that hold for the subplan)
is provided by :meth:`OrderOptimizer.state_after_sort`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from .dfsm import DFSM, subset_construction
from .fd import FDSet
from .inference import Bounds
from .interesting import InterestingOrders
from .nfsm import (
    NFSM,
    assemble,
    build_edges,
    build_grouping_universe,
    build_universe,
    dedupe_fdsets,
)
from .ordering import EMPTY_ORDERING, Ordering
from .prune import FDPruneMode, prune_fd_items, prune_nodes
from .tables import PreparedTables, build_tables


@dataclass(frozen=True)
class BuilderOptions:
    """Toggles for every Section 5.7 reduction technique.

    The defaults enable everything (the paper's "with pruning"
    configuration); :data:`NO_PRUNING` reproduces the "w/o pruning" column
    of the Section 6.2 experiment.
    """

    fd_prune_mode: FDPruneMode = "relevance"
    merge_nodes: bool = True
    delete_eps_nodes: bool = True
    use_prefix_bound: bool = True
    use_length_bound: bool = True
    include_empty_ordering: bool = True
    minimize_dfsm: bool = False
    """Extension beyond the paper: Moore-minimize the precomputed tables.

    Observable behaviour is unchanged; ``OrderOptimizer.dfsm`` keeps the
    unminimized machine for introspection (state ids differ from table
    state ids when minimization merged anything)."""

    def without_pruning(self) -> "BuilderOptions":
        return replace(
            self,
            fd_prune_mode="off",
            merge_nodes=False,
            delete_eps_nodes=False,
            use_prefix_bound=False,
            use_length_bound=False,
        )


NO_PRUNING = BuilderOptions().without_pruning()


@dataclass(frozen=True)
class PreparationFingerprint:
    """Canonical, order-insensitive identity of a preparation run.

    Two ``prepare`` calls with equal fingerprints build semantically
    interchangeable components: preparation depends only on the *sets* of
    interesting orders / groupings, the *set* of operator FD sets, and the
    builder options — never on the sequence they were supplied in (handle
    numbering may differ, but every lookup is by value, so a component
    prepared from one sequence answers correctly for any permutation).
    This is the cache key of the service layer's prepared-state cache: a
    query template re-issued with different constants produces the exact
    same fingerprint (constant bindings carry the attribute, not the value)
    and can skip NFSM/DFSM construction entirely.
    """

    produced: frozenset[Ordering]
    tested: frozenset[Ordering]
    groupings_produced: frozenset
    groupings_tested: frozenset
    fdsets: frozenset[FDSet]
    options: BuilderOptions
    enumerator: str = ""
    """Resolved join-enumeration strategy the preparation will serve, or
    ``""`` when the caller does not discriminate by strategy.  Prepared
    state itself is enumerator-independent; the service layer still records
    the strategy here so cache entries (and their statistics) are
    attributable to the enumeration context that created them."""

    def digest(self) -> str:
        """Short stable hex digest, for logs and cache-stats reporting."""
        parts = "|".join(
            (
                ",".join(sorted(repr(o) for o in self.produced)),
                ",".join(sorted(repr(o) for o in self.tested)),
                ",".join(sorted(repr(g) for g in self.groupings_produced)),
                ",".join(sorted(repr(g) for g in self.groupings_tested)),
                ",".join(sorted(str(f) for f in self.fdsets)),
                repr(self.options),
                self.enumerator,
            )
        )
        return hashlib.sha256(parts.encode()).hexdigest()[:16]


def preparation_fingerprint(
    interesting: InterestingOrders,
    fdsets: Iterable[FDSet],
    options: BuilderOptions | None = None,
    *,
    enumerator: str = "",
) -> PreparationFingerprint:
    """Fingerprint the preparation inputs without running preparation.

    Cheap (a handful of frozensets) compared to :meth:`OrderOptimizer.prepare`,
    which makes it usable as a cache-lookup key on every query of a workload.
    """
    return PreparationFingerprint(
        produced=frozenset(interesting.produced),
        tested=frozenset(interesting.tested),
        groupings_produced=frozenset(interesting.groupings_produced),
        groupings_tested=frozenset(interesting.groupings_tested),
        fdsets=frozenset(fdsets),
        options=options or BuilderOptions(),
        enumerator=enumerator,
    )


@dataclass
class PreparationStats:
    """Measurements reported by the Section 6.2 experiment."""

    nfsm_nodes_initial: int = 0
    nfsm_nodes: int = 0
    nfsm_edges: int = 0
    dfsm_states: int = 0
    dfsm_transitions: int = 0
    pruned_fd_items: int = 0
    deleted_nodes: int = 0
    merged_nodes: int = 0
    preparation_ms: float = 0.0
    precomputed_bytes: int = 0
    interesting_order_count: int = 0
    fd_symbol_count: int = 0


class OrderOptimizer:
    """The prepared order-optimization component (the paper's ADT factory)."""

    def __init__(
        self,
        interesting: InterestingOrders,
        nfsm: NFSM,
        dfsm: DFSM,
        tables: PreparedTables,
        stats: PreparationStats,
        options: BuilderOptions,
        fdset_aliases: dict[FDSet, int] | None = None,
        fingerprint: PreparationFingerprint | None = None,
    ) -> None:
        self.interesting = interesting
        self.nfsm = nfsm
        self.dfsm = dfsm
        self.tables = tables
        self.stats = stats
        self.options = options
        self.fingerprint = fingerprint
        self._dominance_relation: tuple[frozenset[int], ...] | None = None
        self._order_handles = {
            order: i for i, order in enumerate(tables.testable_orders)
        }
        # Original (pre-filtering) operator FD sets resolve to the symbol of
        # their filtered content, so plan generators can keep using the FD
        # sets they extracted from the query.
        self._fd_handles = {fdset: i for i, fdset in enumerate(tables.fd_symbols)}
        if fdset_aliases:
            self._fd_handles.update(fdset_aliases)
        fd_count = len(tables.fd_symbols)
        self._producer_handles = {
            order: fd_count + i for i, order in enumerate(tables.producer_orders)
        }

    # -- preparation --------------------------------------------------------------

    @classmethod
    def prepare(
        cls,
        interesting: InterestingOrders,
        fdsets: Iterable[FDSet],
        options: BuilderOptions | None = None,
    ) -> "OrderOptimizer":
        """Run the full preparation phase (Figure 3) and return the component."""
        options = options or BuilderOptions()
        started = time.perf_counter()

        from .equivalence import EquivalenceClasses
        from .grouping import GroupingBounds

        fdset_tuple = tuple(fdsets)
        fingerprint = preparation_fingerprint(interesting, fdset_tuple, options)
        symbols = dedupe_fdsets(fdset_tuple)
        classes = EquivalenceClasses.from_fdsets(symbols)
        bounds: Bounds | None = None
        if options.use_prefix_bound or options.use_length_bound:
            bounds = Bounds(
                interesting.all_orders,
                classes,
                use_prefix_bound=options.use_prefix_bound,
                use_length_bound=options.use_length_bound,
            )
        gbounds: GroupingBounds | None = None
        if options.use_prefix_bound and interesting.all_groupings:
            gbounds = GroupingBounds(interesting.all_groupings, classes)

        filtered_aligned, pruned_items = prune_fd_items(
            symbols, interesting, options.fd_prune_mode, bounds
        )

        # Canonicalize: distinct originals may filter to the same content
        # (e.g. both become empty); they then share one DFSM symbol.
        filtered_symbols_list: list[FDSet] = []
        canonical_index: dict[FDSet, int] = {}
        fdset_aliases: dict[FDSet, int] = {}
        for original, filtered in zip(symbols, filtered_aligned):
            index = canonical_index.get(filtered)
            if index is None:
                index = len(filtered_symbols_list)
                filtered_symbols_list.append(filtered)
                canonical_index[filtered] = index
            fdset_aliases[original] = index
        filtered_symbols = tuple(filtered_symbols_list)

        universe = build_universe(
            interesting,
            filtered_symbols,
            bounds,
            include_empty=options.include_empty_ordering,
        )
        grouping_universe = build_grouping_universe(
            interesting, filtered_symbols, universe, gbounds
        )
        fd_targets, eps = build_edges(
            universe, filtered_symbols, bounds, grouping_universe, gbounds
        )
        nfsm = assemble(
            interesting,
            filtered_symbols,
            universe,
            fd_targets,
            eps,
            include_empty=options.include_empty_ordering,
            grouping_universe=grouping_universe,
        )

        stats = PreparationStats(
            nfsm_nodes_initial=nfsm.node_count,
            pruned_fd_items=len(pruned_items),
            interesting_order_count=len(interesting),
            fd_symbol_count=len(filtered_symbols),
        )

        if options.delete_eps_nodes or options.merge_nodes:
            # The two heuristics are iterated together; disabling one simply
            # skips its pass inside prune_nodes via the options below.
            result = _prune_with_options(nfsm, options)
            nfsm = result.nfsm
            stats.deleted_nodes = result.deleted
            stats.merged_nodes = result.merged

        dfsm = subset_construction(nfsm)
        tables = build_tables(dfsm)
        if options.minimize_dfsm:
            from .tables import minimize_tables

            tables = minimize_tables(tables)

        stats.nfsm_nodes = nfsm.node_count
        stats.nfsm_edges = nfsm.edge_count
        stats.dfsm_states = tables.state_count
        stats.dfsm_transitions = dfsm.transition_count
        stats.preparation_ms = (time.perf_counter() - started) * 1000.0
        stats.precomputed_bytes = tables.total_bytes

        return cls(
            interesting,
            nfsm,
            dfsm,
            tables,
            stats,
            options,
            fdset_aliases,
            fingerprint=fingerprint,
        )

    # -- handle lookups (done once per operator during plan-generation setup) -----

    @property
    def start_state(self) -> int:
        return self.tables.start_state

    def ordering_handle(self, order: Ordering) -> int:
        """Handle of a testable order (an interesting order or a prefix of one)."""
        try:
            return self._order_handles[order]
        except KeyError:
            raise KeyError(
                f"{order!r} is not a testable order of this query"
            ) from None

    def grouping_handle(self, g) -> int:
        """Handle of an interesting grouping (groupings extension)."""
        try:
            return self._order_handles[g]
        except KeyError:
            raise KeyError(
                f"{g!r} is not an interesting grouping of this query"
            ) from None

    def has_grouping(self, g) -> bool:
        return g in self._order_handles

    def fdset_handle(self, fdset: FDSet) -> int:
        """Symbol handle of an operator's FD set, for :meth:`infer`."""
        try:
            return self._fd_handles[fdset]
        except KeyError:
            raise KeyError(
                f"FD set {fdset} was not registered during preparation"
            ) from None

    def producer_handle(self, order: Ordering) -> int:
        """Symbol handle of a produced ordering, for the ADT constructor."""
        try:
            return self._producer_handles[order]
        except KeyError:
            raise KeyError(
                f"{order!r} is not a produced interesting order"
            ) from None

    def has_ordering(self, order: Ordering) -> bool:
        return order in self._order_handles

    def has_fdset(self, fdset: FDSet) -> bool:
        return fdset in self._fd_handles

    # -- the O(1) ADT operations ---------------------------------------------------

    def contains(self, state: int, order_handle: int) -> bool:
        """Does the plan node's tuple stream satisfy the interesting order?"""
        return self.tables.contains(state, order_handle)

    def infer(self, state: int, fdset_handle: int) -> int:
        """``inferNewLogicalOrderings``: apply an operator's FD set."""
        return self.tables.transition(state, fdset_handle)

    def state_for_produced(self, producer_handle: int) -> int:
        """ADT constructor for atomic subplans producing an ordering."""
        return self.tables.transition(self.start_state, producer_handle)

    def scan_state(self) -> int:
        """State of an unordered scan (the empty physical ordering)."""
        if self.options.include_empty_ordering:
            return self.state_for_produced(self.producer_handle(EMPTY_ORDERING))
        return self.start_state

    def state_after_sort(
        self, producer_handle: int, held_fdsets: Sequence[int] = ()
    ) -> int:
        """State after a mid-plan sort (Section 5.6).

        Follows the producer edge from the start state and then replays the
        FD-set symbols that currently hold for the subplan.
        """
        state = self.state_for_produced(producer_handle)
        for fd_handle in held_fdsets:
            state = self.tables.transition(state, fd_handle)
        return state

    def simulation_dominance_relation(self) -> tuple[frozenset[int], ...]:
        """The simulation preorder over table states, computed lazily.

        Memoized on the component: the relation depends only on the
        precomputed tables, so consumers holding a *cached* prepared
        component (the service layer's prepared-state cache) pay the
        O(states²) fixpoint once, not once per query.
        """
        cached = self._dominance_relation
        if cached is None:
            from .dominance import simulation_dominance

            cached = simulation_dominance(self.tables)
            self._dominance_relation = cached
        return cached

    # -- convenience (object-level API for examples/tests; not the hot path) -------

    def satisfied_orders(self, state: int) -> frozenset[Ordering]:
        """All interesting orders a state satisfies (for reporting)."""
        return frozenset(
            order
            for order, handle in self._order_handles.items()
            if self.contains(state, handle)
        )


def _prune_with_options(nfsm: NFSM, options: BuilderOptions):
    """Run node pruning honouring the merge/delete toggles."""
    from . import prune as prune_mod

    if options.delete_eps_nodes and options.merge_nodes:
        return prune_mod.prune_nodes(nfsm)

    # Partial configurations: run only the requested passes to fixpoint.
    deleted = 0
    merged = 0
    changed = True
    while changed:
        changed = False
        if options.delete_eps_nodes:
            reduced = prune_mod._delete_pass(nfsm)
            if reduced is not None:
                deleted += nfsm.node_count - reduced.node_count
                nfsm = reduced
                changed = True
        if options.merge_nodes:
            reduced, merged_now = prune_mod._merge_pass(nfsm)
            if reduced is not None:
                merged += merged_now
                nfsm = reduced
                changed = True
    return prune_mod.NodePruneResult(nfsm=nfsm, deleted=deleted, merged=merged)
