"""The order-optimization component: preparation pipeline plus O(1) ADT.

:class:`OrderOptimizer.prepare` runs the four preparation steps of the
paper's Figure 3 as an explicit staged :class:`PreparationPlan`:

1. **inputs** — determine the input (interesting orders, FD sets — supplied
   by the caller, typically :mod:`repro.query.analyzer`), dedupe and filter
   the FD symbols;
2. **nfsm** — construct the NFSM (nodes, edges, start node), then **prune**
   it (node merging/deletion, its own stage for timing);
3. **determinize** — convert the NFSM into a DFSM;
4. **tables** — expose the contains matrix and the transition table.

Stages 3–4 are pluggable through :class:`PreparationMode`:

* ``"eager"`` (:class:`EagerPreparation`, the default and the reference
  oracle) runs the full power-set construction and precomputes dense
  tables — the paper, verbatim.  A state cap
  (:attr:`BuilderOptions.eager_state_cap`) guards against pathological
  power sets by falling back to the lazy mode mid-preparation;
* ``"lazy"`` (:class:`LazyPreparation`) defers determinization entirely:
  DFSM states materialize the first time ``apply`` / ``state_after_sort`` /
  the ADT constructor reaches them, so preparation cost is proportional to
  the states a plan-generation run actually touches.

Both modes answer every ADT question identically (the lazy machine is a
reachability-restricted relabeling of the eager one); per-stage wall-clock
lands in :attr:`PreparationStats.stage_ms`.

Afterwards the ADT ``LogicalOrderings`` of the paper is available: a plan
node's state is one ``int``; ``contains`` and ``infer_new_logical_orderings``
are single table lookups.  The mid-plan *sort* entry (Section 5.6: follow
the producer edge, then replay the FD-set symbols that hold for the subplan)
is provided by :meth:`OrderOptimizer.state_after_sort`.
"""

from __future__ import annotations

import hashlib
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from .dfsm import DFSM, LazyDFSM, StateCapExceeded, subset_construction
from .fd import FDSet
from .inference import Bounds
from .interesting import InterestingOrders
from .nfsm import (
    NFSM,
    assemble,
    build_edges,
    build_grouping_universe,
    build_universe,
    dedupe_fdsets,
)
from .ordering import EMPTY_ORDERING, Ordering
from .prune import FDPruneMode, prune_fd_items, prune_nodes
from .tables import LazyTables, PreparedTables, build_tables


@dataclass(frozen=True)
class BuilderOptions:
    """Toggles for every Section 5.7 reduction technique.

    The defaults enable everything (the paper's "with pruning"
    configuration); :data:`NO_PRUNING` reproduces the "w/o pruning" column
    of the Section 6.2 experiment.
    """

    fd_prune_mode: FDPruneMode = "relevance"
    merge_nodes: bool = True
    delete_eps_nodes: bool = True
    use_prefix_bound: bool = True
    use_length_bound: bool = True
    include_empty_ordering: bool = True
    minimize_dfsm: bool = False
    """Extension beyond the paper: Moore-minimize the precomputed tables.

    Observable behaviour is unchanged; ``OrderOptimizer.dfsm`` keeps the
    unminimized machine for introspection (state ids differ from table
    state ids when minimization merged anything).  Minimization needs the
    complete machine, so under the lazy preparation mode it forces full
    materialization (the lazy mode then buys nothing; prefer one or the
    other)."""

    eager_state_cap: int | None = 50_000
    """Guard for the eager mode: abort the power-set construction past this
    many DFSM states and fall back to lazy determinization
    (:attr:`PreparationStats.eager_fallback` records the switch).  ``None``
    disables the guard.  The cap never fires on paper-scale inputs — the
    largest unpruned Q8 machine has 80 states — it exists for adversarial
    FD/order combinations whose power set explodes."""

    def without_pruning(self) -> "BuilderOptions":
        return replace(
            self,
            fd_prune_mode="off",
            merge_nodes=False,
            delete_eps_nodes=False,
            use_prefix_bound=False,
            use_length_bound=False,
        )


NO_PRUNING = BuilderOptions().without_pruning()


@dataclass(frozen=True)
class PreparationFingerprint:
    """Canonical, order-insensitive identity of a preparation run.

    Two ``prepare`` calls with equal fingerprints build semantically
    interchangeable components: preparation depends only on the *sets* of
    interesting orders / groupings, the *set* of operator FD sets, and the
    builder options — never on the sequence they were supplied in (handle
    numbering may differ, but every lookup is by value, so a component
    prepared from one sequence answers correctly for any permutation).
    This is the cache key of the service layer's prepared-state cache: a
    query template re-issued with different constants produces the exact
    same fingerprint (constant bindings carry the attribute, not the value)
    and can skip NFSM/DFSM construction entirely.
    """

    produced: frozenset[Ordering]
    tested: frozenset[Ordering]
    groupings_produced: frozenset
    groupings_tested: frozenset
    fdsets: frozenset[FDSet]
    options: BuilderOptions
    enumerator: str = ""
    """Resolved join-enumeration strategy the preparation will serve, or
    ``""`` when the caller does not discriminate by strategy.  Prepared
    state itself is enumerator-independent; the service layer still records
    the strategy here so cache entries (and their statistics) are
    attributable to the enumeration context that created them."""

    mode: str = "eager"
    """Requested :class:`PreparationMode` name.  Part of the identity
    because the cached artifacts differ materially (dense precomputed
    tables vs. an incrementally growing machine) even though every lookup
    answer agrees; keying on the mode lets one session serve both without
    one mode's entries shadowing the other's."""

    def digest(self) -> str:
        """Short stable hex digest, for logs and cache-stats reporting."""
        parts = "|".join(
            (
                ",".join(sorted(repr(o) for o in self.produced)),
                ",".join(sorted(repr(o) for o in self.tested)),
                ",".join(sorted(repr(g) for g in self.groupings_produced)),
                ",".join(sorted(repr(g) for g in self.groupings_tested)),
                ",".join(sorted(str(f) for f in self.fdsets)),
                repr(self.options),
                self.enumerator,
                self.mode,
            )
        )
        return hashlib.sha256(parts.encode()).hexdigest()[:16]


def preparation_fingerprint(
    interesting: InterestingOrders,
    fdsets: Iterable[FDSet],
    options: BuilderOptions | None = None,
    *,
    enumerator: str = "",
    mode: str = "eager",
) -> PreparationFingerprint:
    """Fingerprint the preparation inputs without running preparation.

    Cheap (a handful of frozensets) compared to :meth:`OrderOptimizer.prepare`,
    which makes it usable as a cache-lookup key on every query of a workload.
    ``mode`` is the *requested* preparation mode — a cap-triggered eager→lazy
    fallback changes the built artifact, never the key.
    """
    return PreparationFingerprint(
        produced=frozenset(interesting.produced),
        tested=frozenset(interesting.tested),
        groupings_produced=frozenset(interesting.groupings_produced),
        groupings_tested=frozenset(interesting.groupings_tested),
        fdsets=frozenset(fdsets),
        options=options or BuilderOptions(),
        enumerator=enumerator,
        mode=mode,
    )


@dataclass
class PreparationStats:
    """Measurements reported by the Section 6.2 experiment.

    ``dfsm_states`` / ``dfsm_transitions`` / ``precomputed_bytes`` count the
    states *built by preparation itself*: the full machine under the eager
    mode, only the start state under the lazy mode (the whole point — the
    rest materializes on demand during plan generation; live counts are on
    the component's tables: ``tables.states_materialized``).
    """

    nfsm_nodes_initial: int = 0
    nfsm_nodes: int = 0
    nfsm_edges: int = 0
    dfsm_states: int = 0
    dfsm_transitions: int = 0
    pruned_fd_items: int = 0
    deleted_nodes: int = 0
    merged_nodes: int = 0
    preparation_ms: float = 0.0
    precomputed_bytes: int = 0
    interesting_order_count: int = 0
    fd_symbol_count: int = 0
    mode: str = "eager"
    """Preparation mode that actually built the component (after any
    cap-triggered fallback)."""
    eager_fallback: bool = False
    """True when the eager state cap fired and determinization fell back to
    the lazy mode."""
    stage_ms: dict[str, float] = field(default_factory=dict)
    """Per-stage wall-clock of the :class:`PreparationPlan` (keys are the
    stage names: inputs, nfsm, prune, determinize, tables)."""


#: The ISSUE-facing name; kept as an alias so both spellings resolve.
PreparationStatistics = PreparationStats


# -- the staged preparation pipeline -------------------------------------------


@dataclass
class PreparationContext:
    """Mutable state threaded through the stages of a :class:`PreparationPlan`."""

    interesting: InterestingOrders
    fdsets: tuple[FDSet, ...]
    options: BuilderOptions
    mode: "PreparationMode"
    stats: PreparationStats

    # products, filled in stage order
    filtered_symbols: tuple[FDSet, ...] = ()
    fdset_aliases: dict[FDSet, int] = field(default_factory=dict)
    bounds: Bounds | None = None
    gbounds: object | None = None
    nfsm: NFSM | None = None
    dfsm: DFSM | LazyDFSM | None = None
    tables: PreparedTables | LazyTables | None = None


class PreparationMode(ABC):
    """Pluggable determinize/tables strategy of the preparation pipeline.

    The first three stages (inputs, NFSM, pruning) are mode-independent;
    a mode decides how the NFSM becomes a DFSM and what table representation
    backs the O(1) ADT.  Registered instances live in
    :data:`PREPARATION_MODES`; resolve a name with
    :func:`resolve_preparation_mode`.
    """

    name: str = "abstract"

    @abstractmethod
    def determinize(self, nfsm: NFSM, options: BuilderOptions) -> DFSM | LazyDFSM:
        """Turn the pruned NFSM into a (possibly virtual) DFSM."""

    @abstractmethod
    def build_tables(
        self, dfsm: DFSM | LazyDFSM, options: BuilderOptions
    ) -> PreparedTables | LazyTables:
        """Expose the contains/transition lookup surface over the DFSM."""


class EagerPreparation(PreparationMode):
    """The paper's one-time preparation: full power set, dense tables.

    Kept as the reference oracle the lazy mode is differentially tested
    against.  :attr:`BuilderOptions.eager_state_cap` bounds the expansion;
    the pipeline catches :exc:`StateCapExceeded` and re-runs determinization
    lazily."""

    name = "eager"

    def determinize(self, nfsm: NFSM, options: BuilderOptions) -> DFSM:
        return subset_construction(nfsm, state_cap=options.eager_state_cap)

    def build_tables(
        self, dfsm: DFSM | LazyDFSM, options: BuilderOptions
    ) -> PreparedTables:
        assert isinstance(dfsm, DFSM)
        tables = build_tables(dfsm)
        if options.minimize_dfsm:
            from .tables import minimize_tables

            tables = minimize_tables(tables)
        return tables


class LazyPreparation(PreparationMode):
    """On-demand determinization: preparation builds only the start state.

    Every later state is interned the first time the ADT reaches it, so a
    query whose DP run touches 5 of 80 power-set states pays for 5.  With
    ``minimize_dfsm`` the machine must be forced anyway (minimization is a
    whole-machine fixpoint), so the tables are frozen dense first."""

    name = "lazy"

    def determinize(self, nfsm: NFSM, options: BuilderOptions) -> LazyDFSM:
        return LazyDFSM(nfsm)

    def build_tables(
        self, dfsm: DFSM | LazyDFSM, options: BuilderOptions
    ) -> PreparedTables | LazyTables:
        assert isinstance(dfsm, LazyDFSM)
        tables = LazyTables(dfsm)
        if options.minimize_dfsm:
            from .tables import minimize_tables

            return minimize_tables(tables.freeze())
        return tables


PREPARATION_MODES: dict[str, PreparationMode] = {
    mode.name: mode for mode in (EagerPreparation(), LazyPreparation())
}


def resolve_preparation_mode(mode: "str | PreparationMode") -> PreparationMode:
    """Look up a mode by name (or pass a custom instance through)."""
    if isinstance(mode, PreparationMode):
        return mode
    try:
        return PREPARATION_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown preparation mode {mode!r}; "
            f"available: {', '.join(sorted(PREPARATION_MODES))}"
        ) from None


@dataclass(frozen=True)
class PreparationStage:
    """One named, individually-timed step of the preparation pipeline."""

    name: str
    run: Callable[[PreparationContext], None]


class PreparationPlan:
    """An ordered list of preparation stages with per-stage timing.

    :meth:`standard` is Figure 3 split along its natural seams; custom plans
    (e.g. skipping pruning, inserting a validation stage) are just different
    stage lists.  ``execute`` records each stage's wall-clock in
    ``stats.stage_ms`` under the stage name.
    """

    def __init__(self, stages: Sequence[PreparationStage]) -> None:
        self.stages = tuple(stages)

    @classmethod
    def standard(cls) -> "PreparationPlan":
        return cls(
            (
                PreparationStage("inputs", _stage_inputs),
                PreparationStage("nfsm", _stage_nfsm),
                PreparationStage("prune", _stage_prune),
                PreparationStage("determinize", _stage_determinize),
                PreparationStage("tables", _stage_tables),
            )
        )

    def execute(self, context: PreparationContext) -> PreparationContext:
        for stage in self.stages:
            started = time.perf_counter()
            stage.run(context)
            context.stats.stage_ms[stage.name] = (
                time.perf_counter() - started
            ) * 1000.0
        return context


def _stage_inputs(ctx: PreparationContext) -> None:
    """Figure 3 step 1: dedupe, bound, and filter the FD symbols."""
    from .equivalence import EquivalenceClasses
    from .grouping import GroupingBounds

    options = ctx.options
    interesting = ctx.interesting
    symbols = dedupe_fdsets(ctx.fdsets)
    classes = EquivalenceClasses.from_fdsets(symbols)
    if options.use_prefix_bound or options.use_length_bound:
        ctx.bounds = Bounds(
            interesting.all_orders,
            classes,
            use_prefix_bound=options.use_prefix_bound,
            use_length_bound=options.use_length_bound,
        )
    if options.use_prefix_bound and interesting.all_groupings:
        ctx.gbounds = GroupingBounds(interesting.all_groupings, classes)

    filtered_aligned, pruned_items = prune_fd_items(
        symbols, interesting, options.fd_prune_mode, ctx.bounds
    )

    # Canonicalize: distinct originals may filter to the same content
    # (e.g. both become empty); they then share one DFSM symbol.
    filtered_symbols_list: list[FDSet] = []
    canonical_index: dict[FDSet, int] = {}
    for original, filtered in zip(symbols, filtered_aligned):
        index = canonical_index.get(filtered)
        if index is None:
            index = len(filtered_symbols_list)
            filtered_symbols_list.append(filtered)
            canonical_index[filtered] = index
        ctx.fdset_aliases[original] = index
    ctx.filtered_symbols = tuple(filtered_symbols_list)

    ctx.stats.pruned_fd_items = len(pruned_items)
    ctx.stats.interesting_order_count = len(interesting)
    ctx.stats.fd_symbol_count = len(ctx.filtered_symbols)


def _stage_nfsm(ctx: PreparationContext) -> None:
    """Figure 3 step 2: the ordering/grouping universe and its edges."""
    options = ctx.options
    universe = build_universe(
        ctx.interesting,
        ctx.filtered_symbols,
        ctx.bounds,
        include_empty=options.include_empty_ordering,
    )
    grouping_universe = build_grouping_universe(
        ctx.interesting, ctx.filtered_symbols, universe, ctx.gbounds
    )
    fd_targets, eps = build_edges(
        universe, ctx.filtered_symbols, ctx.bounds, grouping_universe, ctx.gbounds
    )
    ctx.nfsm = assemble(
        ctx.interesting,
        ctx.filtered_symbols,
        universe,
        fd_targets,
        eps,
        include_empty=options.include_empty_ordering,
        grouping_universe=grouping_universe,
    )
    ctx.stats.nfsm_nodes_initial = ctx.nfsm.node_count


def _stage_prune(ctx: PreparationContext) -> None:
    """Section 5.7 node reductions (merge/delete, iterated to fixpoint)."""
    options = ctx.options
    assert ctx.nfsm is not None
    if options.delete_eps_nodes or options.merge_nodes:
        result = _prune_with_options(ctx.nfsm, options)
        ctx.nfsm = result.nfsm
        ctx.stats.deleted_nodes = result.deleted
        ctx.stats.merged_nodes = result.merged
    ctx.stats.nfsm_nodes = ctx.nfsm.node_count
    ctx.stats.nfsm_edges = ctx.nfsm.edge_count


def _stage_determinize(ctx: PreparationContext) -> None:
    """Figure 3 step 3, through the mode — with the eager→lazy cap fallback."""
    assert ctx.nfsm is not None
    try:
        ctx.dfsm = ctx.mode.determinize(ctx.nfsm, ctx.options)
    except StateCapExceeded:
        ctx.mode = PREPARATION_MODES["lazy"]
        ctx.stats.eager_fallback = True
        ctx.dfsm = ctx.mode.determinize(ctx.nfsm, ctx.options)
    ctx.stats.mode = ctx.mode.name


def _stage_tables(ctx: PreparationContext) -> None:
    """Figure 3 step 4, through the mode."""
    assert ctx.dfsm is not None
    ctx.tables = ctx.mode.build_tables(ctx.dfsm, ctx.options)
    ctx.stats.dfsm_states = ctx.tables.state_count
    ctx.stats.dfsm_transitions = ctx.dfsm.transition_count
    ctx.stats.precomputed_bytes = ctx.tables.total_bytes


class OrderOptimizer:
    """The prepared order-optimization component (the paper's ADT factory)."""

    def __init__(
        self,
        interesting: InterestingOrders,
        nfsm: NFSM,
        dfsm: DFSM | LazyDFSM,
        tables: PreparedTables | LazyTables,
        stats: PreparationStats,
        options: BuilderOptions,
        fdset_aliases: dict[FDSet, int] | None = None,
        fingerprint: PreparationFingerprint | None = None,
        mode: str = "eager",
    ) -> None:
        self.interesting = interesting
        self.nfsm = nfsm
        self.dfsm = dfsm
        self.tables = tables
        self.stats = stats
        self.options = options
        self.fingerprint = fingerprint
        self.mode = mode
        self._dominance_relation: tuple[frozenset[int], ...] | None = None
        self._order_handles = {
            order: i for i, order in enumerate(tables.testable_orders)
        }
        # Original (pre-filtering) operator FD sets resolve to the symbol of
        # their filtered content, so plan generators can keep using the FD
        # sets they extracted from the query.
        self._fd_handles = {fdset: i for i, fdset in enumerate(tables.fd_symbols)}
        if fdset_aliases:
            self._fd_handles.update(fdset_aliases)
        fd_count = len(tables.fd_symbols)
        self._producer_handles = {
            order: fd_count + i for i, order in enumerate(tables.producer_orders)
        }

    # -- preparation --------------------------------------------------------------

    @classmethod
    def prepare(
        cls,
        interesting: InterestingOrders,
        fdsets: Iterable[FDSet],
        options: BuilderOptions | None = None,
        *,
        mode: "str | PreparationMode" = "eager",
        plan: PreparationPlan | None = None,
    ) -> "OrderOptimizer":
        """Run the staged preparation pipeline (Figure 3) and return the
        component.

        ``mode`` selects the determinization strategy (``"eager"`` — the
        paper's full power set, the default — or ``"lazy"`` — on-demand
        states); ``plan`` substitutes a custom stage list for
        :meth:`PreparationPlan.standard`.
        """
        options = options or BuilderOptions()
        mode_obj = resolve_preparation_mode(mode)
        started = time.perf_counter()

        fdset_tuple = tuple(fdsets)
        fingerprint = preparation_fingerprint(
            interesting, fdset_tuple, options, mode=mode_obj.name
        )
        context = PreparationContext(
            interesting=interesting,
            fdsets=fdset_tuple,
            options=options,
            mode=mode_obj,
            stats=PreparationStats(mode=mode_obj.name),
        )
        (plan or PreparationPlan.standard()).execute(context)
        stats = context.stats
        stats.preparation_ms = (time.perf_counter() - started) * 1000.0

        assert context.nfsm is not None
        assert context.dfsm is not None
        assert context.tables is not None
        return cls(
            interesting,
            context.nfsm,
            context.dfsm,
            context.tables,
            stats,
            options,
            context.fdset_aliases,
            fingerprint=fingerprint,
            mode=stats.mode,
        )

    # -- handle lookups (done once per operator during plan-generation setup) -----

    @property
    def start_state(self) -> int:
        return self.tables.start_state

    def ordering_handle(self, order: Ordering) -> int:
        """Handle of a testable order (an interesting order or a prefix of one)."""
        try:
            return self._order_handles[order]
        except KeyError:
            raise KeyError(
                f"{order!r} is not a testable order of this query"
            ) from None

    def grouping_handle(self, g) -> int:
        """Handle of an interesting grouping (groupings extension)."""
        try:
            return self._order_handles[g]
        except KeyError:
            raise KeyError(
                f"{g!r} is not an interesting grouping of this query"
            ) from None

    def has_grouping(self, g) -> bool:
        return g in self._order_handles

    def fdset_handle(self, fdset: FDSet) -> int:
        """Symbol handle of an operator's FD set, for :meth:`infer`."""
        try:
            return self._fd_handles[fdset]
        except KeyError:
            raise KeyError(
                f"FD set {fdset} was not registered during preparation"
            ) from None

    def producer_handle(self, order: Ordering) -> int:
        """Symbol handle of a produced ordering, for the ADT constructor."""
        try:
            return self._producer_handles[order]
        except KeyError:
            raise KeyError(
                f"{order!r} is not a produced interesting order"
            ) from None

    def has_ordering(self, order: Ordering) -> bool:
        return order in self._order_handles

    def has_fdset(self, fdset: FDSet) -> bool:
        return fdset in self._fd_handles

    # -- the O(1) ADT operations ---------------------------------------------------

    def contains(self, state: int, order_handle: int) -> bool:
        """Does the plan node's tuple stream satisfy the interesting order?"""
        return self.tables.contains(state, order_handle)

    def infer(self, state: int, fdset_handle: int) -> int:
        """``inferNewLogicalOrderings``: apply an operator's FD set."""
        return self.tables.transition(state, fdset_handle)

    def state_for_produced(self, producer_handle: int) -> int:
        """ADT constructor for atomic subplans producing an ordering."""
        return self.tables.transition(self.start_state, producer_handle)

    def scan_state(self) -> int:
        """State of an unordered scan (the empty physical ordering)."""
        if self.options.include_empty_ordering:
            return self.state_for_produced(self.producer_handle(EMPTY_ORDERING))
        return self.start_state

    def state_after_sort(
        self, producer_handle: int, held_fdsets: Sequence[int] = ()
    ) -> int:
        """State after a mid-plan sort (Section 5.6).

        Follows the producer edge from the start state and then replays the
        FD-set symbols that currently hold for the subplan.
        """
        state = self.state_for_produced(producer_handle)
        for fd_handle in held_fdsets:
            state = self.tables.transition(state, fd_handle)
        return state

    def simulation_dominance_relation(self) -> tuple[frozenset[int], ...]:
        """The simulation preorder over table states, computed lazily.

        Memoized on the component: the relation depends only on the
        precomputed tables, so consumers holding a *cached* prepared
        component (the service layer's prepared-state cache) pay the
        O(states²) fixpoint once, not once per query.
        """
        cached = self._dominance_relation
        if cached is None:
            from .dominance import simulation_dominance

            tables = self.tables
            if isinstance(tables, LazyTables):
                # The simulation fixpoint is a whole-machine computation;
                # force the power set (state ids are preserved, so the
                # relation indexes the live lazy tables' states correctly).
                tables = tables.freeze()
            cached = simulation_dominance(tables)
            self._dominance_relation = cached
        return cached

    # -- convenience (object-level API for examples/tests; not the hot path) -------

    def satisfied_orders(self, state: int) -> frozenset[Ordering]:
        """All interesting orders a state satisfies (for reporting)."""
        return frozenset(
            order
            for order, handle in self._order_handles.items()
            if self.contains(state, handle)
        )


def _prune_with_options(nfsm: NFSM, options: BuilderOptions):
    """Run node pruning honouring the merge/delete toggles."""
    from . import prune as prune_mod

    if options.delete_eps_nodes and options.merge_nodes:
        return prune_mod.prune_nodes(nfsm)

    # Partial configurations: run only the requested passes to fixpoint.
    deleted = 0
    merged = 0
    changed = True
    while changed:
        changed = False
        if options.delete_eps_nodes:
            reduced = prune_mod._delete_pass(nfsm)
            if reduced is not None:
                deleted += nfsm.node_count - reduced.node_count
                nfsm = reduced
                changed = True
        if options.merge_nodes:
            reduced, merged_now = prune_mod._merge_pass(nfsm)
            if reduced is not None:
                merged += merged_now
                nfsm = reduced
                changed = True
    return prune_mod.NodePruneResult(nfsm=nfsm, deleted=deleted, merged=merged)
