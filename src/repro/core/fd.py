"""Functional dependencies, equations, and constant bindings.

Section 2 of the paper describes three kinds of order-relevant facts an
algebraic operator can introduce:

* a plain functional dependency ``B1, ..., Bk -> Bk+1`` (compound right-hand
  sides are normalized into one FD per right-hand attribute),
* an equation ``Ai = Aj`` coming from a join or selection predicate, which is
  *stronger* than the two functional dependencies ``Ai -> Aj`` and
  ``Aj -> Ai`` because it additionally permits substituting one attribute for
  the other inside an ordering,
* a constant binding ``A = const``, equivalent to the FD ``∅ -> A``: the
  attribute may be inserted at *any* position of an ordering.

A single algebraic operator may introduce several of these at once, so the
alphabet of the order FSM is a *set* of such items — :class:`FDSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from .attributes import Attribute


@dataclass(frozen=True, slots=True)
class FunctionalDependency:
    """A normalized functional dependency ``lhs -> rhs`` (single rhs attribute)."""

    lhs: frozenset[Attribute]
    rhs: Attribute

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, frozenset):
            object.__setattr__(self, "lhs", frozenset(self.lhs))
        if self.rhs in self.lhs:
            raise ValueError(f"trivial functional dependency: {self}")

    @property
    def attributes(self) -> frozenset[Attribute]:
        return self.lhs | {self.rhs}

    def __str__(self) -> str:
        lhs = ",".join(sorted(str(a) for a in self.lhs)) or "∅"
        return f"{{{lhs}}} -> {self.rhs}"

    def __repr__(self) -> str:
        return f"FD({self})"


@dataclass(frozen=True, slots=True)
class Equation:
    """An equality predicate ``left = right`` between two attributes.

    The pair is stored in canonical (sorted) order so ``Equation(a, b)`` and
    ``Equation(b, a)`` compare equal.
    """

    left: Attribute
    right: Attribute

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError(f"trivial equation {self.left} = {self.right}")
        if self.right < self.left:
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)

    @property
    def attributes(self) -> frozenset[Attribute]:
        return frozenset((self.left, self.right))

    def implied_fds(self) -> tuple[FunctionalDependency, FunctionalDependency]:
        """The two plain FDs implied by the equation."""
        return (
            FunctionalDependency(frozenset({self.left}), self.right),
            FunctionalDependency(frozenset({self.right}), self.left),
        )

    def other(self, attribute: Attribute) -> Attribute:
        """Given one side of the equation, return the other side."""
        if attribute == self.left:
            return self.right
        if attribute == self.right:
            return self.left
        raise ValueError(f"{attribute} does not occur in {self}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"

    def __repr__(self) -> str:
        return f"Equation({self})"


@dataclass(frozen=True, slots=True)
class ConstantBinding:
    """A predicate ``attribute = const``, equivalent to the FD ``∅ -> attribute``."""

    attribute: Attribute

    @property
    def attributes(self) -> frozenset[Attribute]:
        return frozenset((self.attribute,))

    def __str__(self) -> str:
        return f"{self.attribute} = const"

    def __repr__(self) -> str:
        return f"Constant({self})"


FDItem = Union[FunctionalDependency, Equation, ConstantBinding]


def normalize_fd(lhs: Iterable[Attribute], rhs: Iterable[Attribute]) -> tuple[FDItem, ...]:
    """Normalize a compound FD ``lhs -> rhs1, rhs2, ...`` into single-rhs items.

    An empty left-hand side produces :class:`ConstantBinding` items, matching
    the paper's treatment of ``A = const`` as ``∅ -> A``.
    """
    lhs_set = frozenset(lhs)
    items: list[FDItem] = []
    for attribute in rhs:
        if attribute in lhs_set:
            continue
        if lhs_set:
            items.append(FunctionalDependency(lhs_set, attribute))
        else:
            items.append(ConstantBinding(attribute))
    return tuple(items)


@dataclass(frozen=True)
class FDSet:
    """The set of FD items one algebraic operator introduces.

    FD sets are the input-alphabet symbols of the order NFSM/DFSM: the paper's
    ``F`` is a *set of FD sets*, one per operator.  The empty FD set is legal
    (an operator that introduces nothing).
    """

    items: frozenset[FDItem] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not isinstance(self.items, frozenset):
            object.__setattr__(self, "items", frozenset(self.items))
        for item in self.items:
            if not isinstance(item, (FunctionalDependency, Equation, ConstantBinding)):
                raise TypeError(f"not an FD item: {item!r}")

    @classmethod
    def of(cls, *items: FDItem) -> "FDSet":
        return cls(frozenset(items))

    @property
    def attributes(self) -> frozenset[Attribute]:
        result: set[Attribute] = set()
        for item in self.items:
            result |= item.attributes
        return frozenset(result)

    @property
    def equations(self) -> tuple[Equation, ...]:
        return tuple(i for i in self.items if isinstance(i, Equation))

    @property
    def constants(self) -> tuple[ConstantBinding, ...]:
        return tuple(i for i in self.items if isinstance(i, ConstantBinding))

    @property
    def plain_fds(self) -> tuple[FunctionalDependency, ...]:
        return tuple(i for i in self.items if isinstance(i, FunctionalDependency))

    def union(self, other: "FDSet") -> "FDSet":
        return FDSet(self.items | other.items)

    def without(self, items: Iterable[FDItem]) -> "FDSet":
        return FDSet(self.items - frozenset(items))

    def __iter__(self) -> Iterator[FDItem]:
        return iter(sorted(self.items, key=str))

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __contains__(self, item: object) -> bool:
        return item in self.items

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self)
        return f"{{{inner}}}"

    def __repr__(self) -> str:
        return f"FDSet({self})"


def flatten_items(fdsets: Iterable[FDSet]) -> frozenset[FDItem]:
    """Union of all items across several FD sets."""
    result: set[FDItem] = set()
    for fdset in fdsets:
        result |= fdset.items
    return frozenset(result)
