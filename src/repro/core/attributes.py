"""Attributes: the atoms that orderings and functional dependencies range over.

An attribute is an immutable ``(relation, name)`` pair.  The ``relation``
part is optional so that toy examples can use bare names (``a``, ``b``) while
catalog-backed queries use qualified names (``persons.jobid``).

Attributes are value objects: two attributes with equal relation and name
compare equal and hash equal regardless of how they were created.  A small
helper, :func:`attrs`, builds several attributes at once, which keeps tests
and examples terse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single column reference, optionally qualified by a relation name."""

    name: str
    relation: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    def _sort_key(self) -> tuple[str, str]:
        return (self.relation or "", self.name)

    def __lt__(self, other: "Attribute") -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Attribute") -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Attribute") -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Attribute") -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    @property
    def qualified_name(self) -> str:
        """Return ``relation.name`` when qualified, else just ``name``."""
        if self.relation:
            return f"{self.relation}.{self.name}"
        return self.name

    def __str__(self) -> str:
        return self.qualified_name

    def __repr__(self) -> str:
        return f"Attribute({self.qualified_name!r})"

    @classmethod
    def parse(cls, text: str) -> "Attribute":
        """Parse ``"rel.name"`` or ``"name"`` into an :class:`Attribute`."""
        text = text.strip()
        if not text:
            raise ValueError("cannot parse an empty attribute")
        if "." in text:
            relation, _, name = text.rpartition(".")
            return cls(name=name, relation=relation)
        return cls(name=text)


def attr(text: str) -> Attribute:
    """Shorthand for :meth:`Attribute.parse`."""
    return Attribute.parse(text)


def attrs(*texts: str) -> tuple[Attribute, ...]:
    """Parse several attribute names at once.

    >>> attrs("a", "b", "t.c")
    (Attribute('a'), Attribute('b'), Attribute('t.c'))
    """
    return tuple(Attribute.parse(t) for t in texts)


def iter_unique(attributes: Iterator[Attribute]) -> Iterator[Attribute]:
    """Yield attributes skipping duplicates while preserving order."""
    seen: set[Attribute] = set()
    for attribute in attributes:
        if attribute not in seen:
            seen.add(attribute)
            yield attribute
