"""Catalog substrate: schema, statistics, and the TPC-H/R schema."""

from .schema import Catalog, Column, Index, Table, simple_table
from .statistics import Statistics
from .tpch import tpch_catalog

__all__ = [
    "Catalog",
    "Column",
    "Index",
    "Table",
    "simple_table",
    "Statistics",
    "tpch_catalog",
]
