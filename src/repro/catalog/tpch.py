"""The TPC-H/R schema (TPC Benchmark R, revision 1.2.0).

Cardinalities follow scale factor 0.1; only columns referenced by the
reproduced queries (plus keys) are modelled — the plan generator needs
names, cardinalities, distinct counts, and indexes, not data.  Primary keys
get clustered indexes, which is what gives index scans their produced
orderings.
"""

from __future__ import annotations

from .schema import Catalog, Column, Index, Table

SCALE = 0.1


def _t(name: str, columns: list[Column], cardinality: int, key: str) -> Table:
    return Table(
        name=name,
        columns=tuple(columns),
        cardinality=cardinality,
        primary_key=(key,),
        indexes=(Index(f"pk_{name}", name, (key,), clustered=True),),
    )


def tpch_catalog(scale: float = SCALE) -> Catalog:
    """Build the TPC-H/R catalog at the given scale factor."""

    def rows(base: int) -> int:
        return max(1, int(base * scale))

    catalog = Catalog()
    catalog.add(
        _t(
            "region",
            [Column("r_regionkey", 5), Column("r_name", 5)],
            5,
            "r_regionkey",
        )
    )
    catalog.add(
        _t(
            "nation",
            [
                Column("n_nationkey", 25),
                Column("n_name", 25),
                Column("n_regionkey", 5),
            ],
            25,
            "n_nationkey",
        )
    )
    catalog.add(
        _t(
            "supplier",
            [
                Column("s_suppkey", rows(10_000)),
                Column("s_name"),
                Column("s_nationkey", 25),
            ],
            rows(10_000),
            "s_suppkey",
        )
    )
    catalog.add(
        _t(
            "customer",
            [
                Column("c_custkey", rows(150_000)),
                Column("c_name"),
                Column("c_nationkey", 25),
            ],
            rows(150_000),
            "c_custkey",
        )
    )
    catalog.add(
        _t(
            "part",
            [
                Column("p_partkey", rows(200_000)),
                Column("p_name"),
                Column("p_type", 150),
            ],
            rows(200_000),
            "p_partkey",
        )
    )
    catalog.add(
        _t(
            "orders",
            [
                Column("o_orderkey", rows(1_500_000)),
                Column("o_custkey", rows(150_000)),
                Column("o_orderdate", 2_406),
                Column("o_year", 7),
            ],
            rows(1_500_000),
            "o_orderkey",
        )
    )
    catalog.add(
        _t(
            "lineitem",
            [
                Column("l_orderkey", rows(1_500_000)),
                Column("l_partkey", rows(200_000)),
                Column("l_suppkey", rows(10_000)),
                Column("l_extendedprice"),
                Column("l_discount", 11),
            ],
            rows(6_000_000),
            "l_orderkey",
        )
    )
    return catalog
