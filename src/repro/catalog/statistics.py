"""Cardinality and selectivity statistics for the cost model.

Classic System-R style estimation: join selectivity defaults to
``1 / max(distinct(left), distinct(right))`` (falling back to the larger
table cardinality when distinct counts are unknown); equality selections use
``1 / distinct``; range selections use a fixed default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.attributes import Attribute
from .schema import Catalog

DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_EQUALITY_SELECTIVITY = 0.1


@dataclass
class Statistics:
    """Statistics provider backed by a catalog with optional overrides."""

    catalog: Catalog
    join_selectivities: dict[frozenset[Attribute], float] = field(default_factory=dict)
    selection_selectivities: dict[Attribute, float] = field(default_factory=dict)

    def table_cardinality(self, table: str) -> int:
        return self.catalog.table(table).cardinality

    def distinct_values(self, attribute: Attribute) -> int:
        """Distinct count of a column; defaults to the table cardinality."""
        if attribute.relation is None:
            raise ValueError(f"cannot look up statistics for bare {attribute}")
        table = self.catalog.table(attribute.relation)
        column = table.column(attribute.name)
        if column.distinct_values is not None:
            return max(1, column.distinct_values)
        return max(1, table.cardinality)

    def set_join_selectivity(self, a: Attribute, b: Attribute, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {value}")
        self.join_selectivities[frozenset((a, b))] = value

    def join_selectivity(self, a: Attribute, b: Attribute) -> float:
        override = self.join_selectivities.get(frozenset((a, b)))
        if override is not None:
            return override
        return 1.0 / max(self.distinct_values(a), self.distinct_values(b))

    def set_selection_selectivity(self, attribute: Attribute, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {value}")
        self.selection_selectivities[attribute] = value

    def equality_selectivity(self, attribute: Attribute) -> float:
        override = self.selection_selectivities.get(attribute)
        if override is not None:
            return override
        return 1.0 / self.distinct_values(attribute)

    def range_selectivity(self, attribute: Attribute) -> float:
        override = self.selection_selectivities.get(attribute)
        if override is not None:
            return override
        return DEFAULT_RANGE_SELECTIVITY
