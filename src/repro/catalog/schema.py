"""Catalog: tables, columns, indexes, and keys.

A small but complete schema substrate: the plan generator needs to know
which relations exist, their cardinalities, which indexes (and therefore
produced orderings) are available, and which keys hold (keys can contribute
functional dependencies ``key -> other columns`` when enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.attributes import Attribute
from ..core.ordering import Ordering


@dataclass(frozen=True)
class Column:
    """A column definition with an optional distinct-value count.

    ``dtype`` optionally declares the column's value type (``"int"`` /
    ``"str"`` / ``"float"``) for the NumPy execution backend's typed-array
    conversion (:func:`repro.exec.data.schema_dtype_hints`); ``None`` —
    the default everywhere in the seed catalogs — leaves the dtype to be
    inferred from the values.
    """

    name: str
    distinct_values: int | None = None
    dtype: str | None = None


@dataclass(frozen=True)
class Index:
    """An index over a table; clustered indexes produce their key ordering."""

    name: str
    table: str
    columns: tuple[str, ...]
    clustered: bool = True

    def ordering(self) -> Ordering:
        """The logical ordering an (index) scan of this index produces."""
        return Ordering(Attribute(c, self.table) for c in self.columns)


@dataclass
class Table:
    """A table with columns, cardinality, optional primary key and indexes."""

    name: str
    columns: tuple[Column, ...]
    cardinality: int = 1000
    primary_key: tuple[str, ...] = ()
    indexes: tuple[Index, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column in table {self.name}")
        for key_column in self.primary_key:
            if key_column not in names:
                raise ValueError(
                    f"primary key column {key_column} not in table {self.name}"
                )
        for index in self.indexes:
            if index.table != self.name:
                raise ValueError(f"index {index.name} belongs to {index.table}")
            for col in index.columns:
                if col not in names:
                    raise ValueError(f"index column {col} not in table {self.name}")

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name} in table {self.name}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def attribute(self, name: str) -> Attribute:
        """The qualified attribute for a column of this table."""
        if not self.has_column(name):
            raise KeyError(f"no column {name} in table {self.name}")
        return Attribute(name, self.name)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(Attribute(c.name, self.name) for c in self.columns)


@dataclass
class Catalog:
    """A named collection of tables."""

    tables: dict[str, Table] = field(default_factory=dict)

    def add(self, table: Table) -> "Catalog":
        if table.name in self.tables:
            raise ValueError(f"table {table.name} already exists")
        self.tables[table.name] = table
        return self

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables.values())

    def resolve(self, attribute_text: str) -> Attribute:
        """Resolve ``"table.column"`` or a unique bare ``"column"``."""
        if "." in attribute_text:
            table_name, _, column = attribute_text.rpartition(".")
            table = self.table(table_name)
            return table.attribute(column)
        owners = [t for t in self if t.has_column(attribute_text)]
        if not owners:
            raise KeyError(f"no table has a column {attribute_text}")
        if len(owners) > 1:
            names = ", ".join(t.name for t in owners)
            raise KeyError(f"ambiguous column {attribute_text} (in {names})")
        return owners[0].attribute(attribute_text)


def simple_table(
    name: str,
    columns: Iterable[str],
    cardinality: int = 1000,
    *,
    primary_key: str | None = None,
    clustered_on: str | None = None,
) -> Table:
    """Convenience constructor used by tests and the workload generator."""
    cols = tuple(Column(c) for c in columns)
    indexes: tuple[Index, ...] = ()
    if clustered_on is not None:
        indexes = (Index(f"idx_{name}_{clustered_on}", name, (clustered_on,)),)
    return Table(
        name=name,
        columns=cols,
        cardinality=cardinality,
        primary_key=(primary_key,) if primary_key else (),
        indexes=indexes,
    )
