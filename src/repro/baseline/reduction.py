"""Simmen's ordering *reduction* (Simmen, Shekita & Malkemus, SIGMOD 1996).

Reduction is the inverse of order inference: instead of expanding the set of
logical orderings, both the available physical ordering and the required
ordering are *reduced* under the functional dependencies, after which a
simple prefix test decides ``contains``.

The algorithm, as described in Section 3 of Neumann & Moerkotte:

1. substitute every attribute by its equivalence-class representative
   (equations ``a = b``),
2. remove attributes bound to constants (``a = const``) — they are trivially
   ordered — and duplicates introduced by substitution,
3. repeatedly remove an attribute occurrence when some FD ``X -> a`` has all
   of ``X`` occurring *before* it (constants count as always available),
   scanning positions left to right, until no rule applies.

The induced rewrite system is **not confluent** (Section 3 of the paper):
with FDs ``a -> b`` and ``a,b -> c``, the ordering ``(a, b, c)`` reduces to
``(a, c)`` — removing ``b`` first kills the only justification for removing
``c`` — although the reduction to ``(a)`` exists.  The consequence is that
``contains`` may return a false negative; this implementation deliberately
reproduces the behaviour (tests pin it down), because it is the comparison
baseline of the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.attributes import Attribute
from ..core.equivalence import EquivalenceClasses
from ..core.fd import ConstantBinding, Equation, FDItem, FunctionalDependency
from ..core.ordering import Ordering


class ReductionContext:
    """Preprocessed view of an FD-item set, reusable across reductions.

    Building the context is O(n) in the number of FD items — this is the
    per-call cost that gives Simmen's ``contains`` its Ω(n) lower bound.
    """

    def __init__(self, items: Iterable[FDItem]) -> None:
        items = tuple(items)
        self.items = items
        self.classes = EquivalenceClasses(
            item for item in items if isinstance(item, Equation)
        )
        constants = {
            self.classes.representative(item.attribute)
            for item in items
            if isinstance(item, ConstantBinding)
        }
        self.constants: frozenset[Attribute] = frozenset(constants)
        self.fds: tuple[tuple[frozenset[Attribute], Attribute], ...] = tuple(
            self._canonical_fd(item)
            for item in items
            if isinstance(item, FunctionalDependency)
        )

    def _canonical_fd(
        self, fd: FunctionalDependency
    ) -> tuple[frozenset[Attribute], Attribute]:
        lhs = frozenset(
            self.classes.representative(a)
            for a in fd.lhs
            if self.classes.representative(a) not in self.constants
        )
        return (lhs, self.classes.representative(fd.rhs))

    def normalize(self, order: Ordering) -> tuple[Attribute, ...]:
        """Steps 1 and 2: substitute representatives, drop constants/dupes."""
        seen: set[Attribute] = set()
        result: list[Attribute] = []
        for attribute in order:
            canonical = self.classes.representative(attribute)
            if canonical in self.constants or canonical in seen:
                continue
            seen.add(canonical)
            result.append(canonical)
        return tuple(result)


def reduce_ordering(order: Ordering, context: ReductionContext) -> Ordering:
    """Reduce ``order`` under the context's FDs (steps 1–3 above)."""
    current = list(context.normalize(order))
    changed = True
    while changed:
        changed = False
        for position in range(len(current)):
            preceding = set(current[:position])
            attribute = current[position]
            for lhs, rhs in context.fds:
                if rhs == attribute and lhs <= preceding:
                    del current[position]
                    changed = True
                    break
            if changed:
                break
    return Ordering(current)


def reduced_contains(
    physical: Ordering,
    required: Ordering,
    context: ReductionContext,
    cache: Mapping | None = None,
) -> bool:
    """Simmen's ``contains``: reduce both orderings, then prefix-test.

    ``cache`` (a mutable mapping, keyed by ordering) memoizes reductions —
    the tuning measure the paper applied to make the comparison fair.
    """
    if cache is None:
        reduced_physical = reduce_ordering(physical, context)
        reduced_required = reduce_ordering(required, context)
    else:
        reduced_physical = cache.get(physical)
        if reduced_physical is None:
            reduced_physical = reduce_ordering(physical, context)
            cache[physical] = reduced_physical  # type: ignore[index]
        reduced_required = cache.get(required)
        if reduced_required is None:
            reduced_required = reduce_ordering(required, context)
            cache[required] = reduced_required  # type: ignore[index]
    return reduced_required.is_prefix_of(reduced_physical)
