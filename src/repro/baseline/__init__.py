"""Simmen et al. (SIGMOD 1996) order-optimization baseline.

Reimplemented from the description in Neumann & Moerkotte Section 3,
including the tuning they applied for the comparison (memoized reductions).
"""

from .reduction import ReductionContext, reduce_ordering, reduced_contains
from .simmen import SimmenOrderOptimizer, SimmenState, SimmenStats

__all__ = [
    "ReductionContext",
    "reduce_ordering",
    "reduced_contains",
    "SimmenOrderOptimizer",
    "SimmenState",
    "SimmenStats",
]
