"""Simmen et al.'s order-optimization component — the comparison baseline.

A plan node is annotated with its **physical ordering** plus the set of all
**applicable functional dependencies** (Section 3 of Neumann & Moerkotte).
The two hot operations:

* ``contains`` reduces both orderings under the FD set and prefix-tests —
  Ω(n) in the number of FD items (mitigated here, as in the paper's tuned
  comparator, by memoizing reductions per FD-set);
* ``infer_new_logical_orderings`` unions the operator's FD items into the
  annotation — Ω(n) time and Ω(n) space per plan node.

The interface mirrors :class:`repro.core.optimizer.OrderOptimizer` closely
enough that the plan generator can swap the two via
:mod:`repro.plangen.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..core.fd import ConstantBinding, Equation, FDItem, FDSet, FunctionalDependency
from ..core.ordering import EMPTY_ORDERING, Ordering
from .reduction import ReductionContext, reduce_ordering, reduced_contains


@dataclass(frozen=True)
class SimmenState:
    """The per-plan-node annotation: physical ordering + applicable FDs."""

    physical: Ordering
    fds: frozenset[FDItem] = frozenset()

    def size_bytes(self) -> int:
        """Storage accounting mirroring a compact C implementation.

        4 bytes per ordering attribute handle; per FD item, 4 bytes per
        participating attribute handle (equations: 8, constants: 4, plain
        FDs: 4·(|lhs| + 1)).
        """
        total = 4 * len(self.physical)
        for item in self.fds:
            if isinstance(item, FunctionalDependency):
                total += 4 * (len(item.lhs) + 1)
            elif isinstance(item, Equation):
                total += 8
            elif isinstance(item, ConstantBinding):
                total += 4
        return total


@dataclass
class SimmenStats:
    """Instrumentation for the experiments of Section 7."""

    contains_calls: int = 0
    reduce_calls: int = 0
    cache_hits: int = 0
    infer_calls: int = 0


class SimmenOrderOptimizer:
    """The baseline ADT factory (no preparation phase needed)."""

    def __init__(self) -> None:
        self.stats = SimmenStats()
        # One reduction context and memo table per distinct FD set; the
        # context build is the Ω(n) cost, the memo is the paper's tuning.
        self._contexts: Dict[frozenset[FDItem], ReductionContext] = {}
        self._reduce_cache: Dict[frozenset[FDItem], Dict[Ordering, Ordering]] = {}

    # -- constructors ---------------------------------------------------------

    def scan_state(self) -> SimmenState:
        """State of an unordered scan."""
        return SimmenState(EMPTY_ORDERING)

    def state_for_produced(self, order: Ordering) -> SimmenState:
        """State of an atomic subplan producing ``order`` (no FDs yet)."""
        return SimmenState(order)

    def state_after_sort(
        self, order: Ordering, held_fds: Iterable[FDItem] = ()
    ) -> SimmenState:
        """State after a mid-plan sort: new physical ordering, same FDs."""
        return SimmenState(order, frozenset(held_fds))

    # -- the two hot operations ------------------------------------------------

    def contains(self, state: SimmenState, required: Ordering) -> bool:
        """Reduce-and-prefix-test membership (Ω(n) per call)."""
        self.stats.contains_calls += 1
        context = self._context_for(state.fds)
        cache = self._reduce_cache[state.fds]
        before = len(cache)
        result = reduced_contains(state.physical, required, context, cache)
        self.stats.reduce_calls += 2
        self.stats.cache_hits += 2 - (len(cache) - before)
        return result

    def infer(self, state: SimmenState, fdset: FDSet) -> SimmenState:
        """Union the operator's FD items into the annotation (Ω(n))."""
        self.stats.infer_calls += 1
        if not fdset.items or fdset.items <= state.fds:
            return state
        return SimmenState(state.physical, state.fds | fdset.items)

    # -- helpers ---------------------------------------------------------------

    def reduce(self, order: Ordering, fds: frozenset[FDItem]) -> Ordering:
        """Expose reduction directly (used by tests and examples)."""
        return reduce_ordering(order, self._context_for(fds))

    def _context_for(self, fds: frozenset[FDItem]) -> ReductionContext:
        context = self._contexts.get(fds)
        if context is None:
            context = ReductionContext(fds)
            self._contexts[fds] = context
            self._reduce_cache[fds] = {}
        return context
