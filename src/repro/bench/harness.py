"""Benchmark harness helpers: table formatting, result persistence, scale.

Every benchmark prints a paper-style table (with the paper's own numbers
alongside for comparison) and persists it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.

Scale: by default the sweeps run a reduced grid so the whole suite finishes
in minutes on a laptop; set ``REPRO_BENCH_FULL=1`` for paper-scale sweeps
(n up to 10 relations, more random-query seeds).
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Sequence


class Stopwatch:
    """Elapsed wall-clock milliseconds of a :func:`timed` block."""

    def __init__(self) -> None:
        self.ms = 0.0


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Measure a block:  ``with timed() as sw: ...; print(sw.ms)``."""
    watch = Stopwatch()
    started = time.perf_counter()
    try:
        yield watch
    finally:
        watch.ms = (time.perf_counter() - started) * 1000.0


def bench_full() -> bool:
    """True when paper-scale sweeps are requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def repo_root() -> Path:
    """The repository root (this file lives at src/repro/bench/)."""
    return Path(__file__).resolve().parents[3]


def results_dir() -> Path:
    """benchmarks/results/ at the repository root."""
    directory = repo_root() / "benchmarks" / "results"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def round_floats(payload: object, digits: int = 2) -> object:
    """Recursively round every float in a JSON-shaped payload.

    Benchmark timings carry microsecond noise that is pure diff churn in a
    committed artifact; two significant decimals keep the trend readable
    while making re-runs on the same machine mostly byte-stable.

    Values whose magnitude is below the decimal cutoff (e.g. a 0.004 ms
    warm-load timing against the 2-decimal default) are rounded to
    ``digits`` *significant figures* instead of being collapsed to ``0.0``
    — a sub-0.01 ms series in a committed artifact must stay a readable
    trend, not a column of zeros.  Exact zeros and non-finite values pass
    through unchanged, and the output is byte-stable: equal inputs always
    produce the identical rounded float.
    """
    if isinstance(payload, float):
        rounded = round(payload, digits)
        if rounded != 0.0 or payload == 0.0 or not math.isfinite(payload):
            return rounded
        # Small magnitude: keep `digits` significant figures.
        exponent = math.floor(math.log10(abs(payload)))
        return round(payload, digits - 1 - exponent)
    if isinstance(payload, dict):
        return {key: round_floats(value, digits) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [round_floats(value, digits) for value in payload]
    return payload


def _git_commit() -> str:
    """The repository HEAD commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root(),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        # No git, no repo, or a hung hook past the timeout: provenance
        # degrades to "unknown" — a benchmark run must never die here.
        return "unknown"
    return out.stdout.strip() or "unknown"


def bench_environment() -> dict:
    """Provenance fields embedded in every machine-readable artifact."""
    return {
        "commit": _git_commit(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        # Scaling numbers (parallel speedups especially) are meaningless
        # without knowing how many cores the runner had.
        "cpu_count": os.cpu_count(),
    }


def save_json(name: str, payload: object, *, round_digits: int = 2) -> Path:
    """Persist machine-readable benchmark data as ``<name>.json`` at the
    repository root (where CI picks it up as an artifact); returns the path.

    The output is diff-friendly: keys are sorted, floats rounded to
    ``round_digits`` decimals (see :func:`round_floats`), and an
    ``environment`` block records commit hash and machine fields so a diff
    between two artifacts says *which code on which box*.  Counts, states,
    and ratios are exact and byte-stable across re-runs; timing fields
    still jitter at the rounded precision (they are measurements) — read a
    timing diff as noise unless it moves by more than the usual spread.
    """
    document = {
        "environment": bench_environment(),
        "payload": round_floats(payload, round_digits),
    }
    path = repo_root() / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def save_result(name: str, text: str) -> Path:
    """Persist a rendered experiment table; returns the file path."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def report(name: str, title: str, body: str) -> str:
    """Compose, save, and return a report (printing is the caller's call)."""
    text = f"== {title} ==\n{body}"
    save_result(name, text)
    return text
