"""Benchmark harness helpers."""

from .harness import (
    Stopwatch,
    bench_full,
    format_table,
    repo_root,
    report,
    results_dir,
    save_json,
    save_result,
    timed,
)

__all__ = [
    "Stopwatch",
    "bench_full",
    "format_table",
    "repo_root",
    "report",
    "results_dir",
    "save_json",
    "save_result",
    "timed",
]
