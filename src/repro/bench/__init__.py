"""Benchmark harness helpers."""

from .harness import (
    Stopwatch,
    bench_environment,
    bench_full,
    format_table,
    repo_root,
    report,
    results_dir,
    round_floats,
    save_json,
    save_result,
    timed,
)

__all__ = [
    "Stopwatch",
    "bench_environment",
    "bench_full",
    "format_table",
    "repo_root",
    "report",
    "results_dir",
    "round_floats",
    "save_json",
    "save_result",
    "timed",
]
