"""Benchmark harness helpers."""

from .harness import bench_full, format_table, report, results_dir, save_result

__all__ = ["bench_full", "format_table", "report", "results_dir", "save_result"]
