"""Benchmark harness helpers."""

from .harness import (
    Stopwatch,
    bench_full,
    format_table,
    report,
    results_dir,
    save_result,
    timed,
)

__all__ = [
    "Stopwatch",
    "bench_full",
    "format_table",
    "report",
    "results_dir",
    "save_result",
    "timed",
]
