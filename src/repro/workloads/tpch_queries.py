"""TPC-R Query 8 — the paper's large example (Sections 6.2 and 7).

Two artifacts:

* :func:`q8_order_info` — the *exact* preparation-phase input listed in the
  paper's Section 6.2: sixteen produced single-attribute orderings, the two
  optional tested orderings, and the nine FD sets (seven join equations plus
  the two constant predicates).  This feeds the preparation-cost experiment.
* :func:`q8_query` — the bound eight-relation join query (nation appears
  twice, as ``n1`` and ``n2``) for the plan-generation experiment.
"""

from __future__ import annotations

from ..catalog.tpch import tpch_catalog
from ..core.attributes import Attribute
from ..core.fd import ConstantBinding, Equation, FDSet
from ..core.interesting import InterestingOrders
from ..core.ordering import Ordering
from ..query.analyzer import QueryOrderInfo, analyze
from ..query.predicates import EqualsConstant, JoinPredicate, RangePredicate
from ..query.query import AggregateSpec, QuerySpec, RelationRef


def _a(text: str) -> Attribute:
    return Attribute.parse(text)


def q8_query(scale: float = 0.1) -> QuerySpec:
    """The flattened join/grouping skeleton of TPC-R Query 8."""
    catalog = tpch_catalog(scale)
    return QuerySpec(
        catalog=catalog,
        relations=(
            RelationRef("part"),
            RelationRef("supplier"),
            RelationRef("lineitem"),
            RelationRef("orders"),
            RelationRef("customer"),
            RelationRef("nation", "n1"),
            RelationRef("nation", "n2"),
            RelationRef("region"),
        ),
        joins=(
            JoinPredicate(_a("part.p_partkey"), _a("lineitem.l_partkey")),
            JoinPredicate(_a("supplier.s_suppkey"), _a("lineitem.l_suppkey")),
            JoinPredicate(_a("lineitem.l_orderkey"), _a("orders.o_orderkey")),
            JoinPredicate(_a("orders.o_custkey"), _a("customer.c_custkey")),
            JoinPredicate(_a("customer.c_nationkey"), _a("n1.n_nationkey")),
            JoinPredicate(_a("n1.n_regionkey"), _a("region.r_regionkey")),
            JoinPredicate(_a("supplier.s_nationkey"), _a("n2.n_nationkey")),
        ),
        selections=(
            EqualsConstant(_a("region.r_name"), "AMERICA"),
            EqualsConstant(_a("part.p_type"), "ECONOMY ANODIZED STEEL"),
            RangePredicate(
                _a("orders.o_orderdate"), "between", "1995-01-01", "1996-12-31"
            ),
        ),
        group_by=(_a("orders.o_year"),),
        order_by=Ordering([_a("orders.o_year")]),
        aggregates=(
            AggregateSpec("count"),
            AggregateSpec("sum", _a("lineitem.l_discount")),
        ),
        name="tpcr-q8",
    )


def q8_order_info(*, include_tested_selections: bool = False) -> QueryOrderInfo:
    """The Section 6.2 preparation input, exactly as printed in the paper.

    Produced orders (the paper's ``O_I^P``): all join attributes plus
    ``(o_year)``.  The paper's list contains a sixteenth entry
    ``(o_partkey)``, which is a typo — ``orders`` has no ``partkey`` column
    and no predicate mentions one — so we model the fifteen real orders.
    Tested-only (``O_T^I``, "if appropriate operators ... are available",
    i.e. optional): ``(r_name)`` and ``(o_orderdate)``.  FD sets: the seven
    join equations and the two constant conditions ``∅ -> p_type``,
    ``∅ -> r_name``.  Note ``p_type`` occurs in no interesting order, which
    is what lets the preparation prune ``∅ -> p_type`` entirely.
    """
    produced = [
        Ordering([_a(name)])
        for name in (
            "orders.o_year",
            "part.p_partkey",
            "lineitem.l_partkey",
            "lineitem.l_suppkey",
            "lineitem.l_orderkey",
            "orders.o_orderkey",
            "orders.o_custkey",
            "customer.c_custkey",
            "customer.c_nationkey",
            "n1.n_nationkey",
            "n2.n_nationkey",
            "n1.n_regionkey",
            "region.r_regionkey",
            "supplier.s_suppkey",
            "supplier.s_nationkey",
        )
    ]
    tested = []
    if include_tested_selections:
        tested = [Ordering([_a("region.r_name")]), Ordering([_a("orders.o_orderdate")])]

    fdsets = (
        FDSet.of(Equation(_a("part.p_partkey"), _a("lineitem.l_partkey"))),
        FDSet.of(ConstantBinding(_a("part.p_type"))),
        FDSet.of(Equation(_a("orders.o_custkey"), _a("customer.c_custkey"))),
        FDSet.of(ConstantBinding(_a("region.r_name"))),
        FDSet.of(Equation(_a("customer.c_nationkey"), _a("n1.n_nationkey"))),
        FDSet.of(Equation(_a("supplier.s_nationkey"), _a("n2.n_nationkey"))),
        FDSet.of(Equation(_a("lineitem.l_orderkey"), _a("orders.o_orderkey"))),
        FDSet.of(Equation(_a("supplier.s_suppkey"), _a("lineitem.l_suppkey"))),
        FDSet.of(Equation(_a("n1.n_regionkey"), _a("region.r_regionkey"))),
    )

    interesting = InterestingOrders.of(produced, tested)
    return QueryOrderInfo(interesting=interesting, fdsets=fdsets)


def q8_analyzed(scale: float = 0.1) -> QueryOrderInfo:
    """Order info derived from the bound query by the Section 5.2 analyzer."""
    return analyze(q8_query(scale), include_tested_selections=True)


def q3_query(scale: float = 0.1) -> QuerySpec:
    """TPC-H/R Q3 (shipping priority), flattened: customer ⋈ orders ⋈
    lineitem with a segment constant and date ranges, ordered by o_orderkey
    as a stand-in for the revenue sort (orderings over computed aggregates
    are out of scope, as in the paper)."""
    catalog = tpch_catalog(scale)
    return QuerySpec(
        catalog=catalog,
        relations=(
            RelationRef("customer"),
            RelationRef("orders"),
            RelationRef("lineitem"),
        ),
        joins=(
            JoinPredicate(_a("customer.c_custkey"), _a("orders.o_custkey")),
            JoinPredicate(_a("orders.o_orderkey"), _a("lineitem.l_orderkey")),
        ),
        selections=(
            EqualsConstant(_a("customer.c_nationkey"), 7),
            RangePredicate(_a("orders.o_orderdate"), "<", "1995-03-15"),
        ),
        group_by=(_a("lineitem.l_orderkey"), _a("orders.o_orderdate")),
        order_by=Ordering([_a("lineitem.l_orderkey")]),
        aggregates=(AggregateSpec("sum", _a("lineitem.l_discount")),),
        name="tpcr-q3",
    )


def q5_query(scale: float = 0.1) -> QuerySpec:
    """TPC-H/R Q5 (local supplier volume), flattened: a six-relation cycle
    through customer, orders, lineitem, supplier, nation, region — the
    densest standard workload here (the supplier-customer nation equality
    closes a cycle in the join graph)."""
    catalog = tpch_catalog(scale)
    return QuerySpec(
        catalog=catalog,
        relations=(
            RelationRef("customer"),
            RelationRef("orders"),
            RelationRef("lineitem"),
            RelationRef("supplier"),
            RelationRef("nation"),
            RelationRef("region"),
        ),
        joins=(
            JoinPredicate(_a("customer.c_custkey"), _a("orders.o_custkey")),
            JoinPredicate(_a("orders.o_orderkey"), _a("lineitem.l_orderkey")),
            JoinPredicate(_a("lineitem.l_suppkey"), _a("supplier.s_suppkey")),
            JoinPredicate(_a("customer.c_nationkey"), _a("supplier.s_nationkey")),
            JoinPredicate(_a("supplier.s_nationkey"), _a("nation.n_nationkey")),
            JoinPredicate(_a("nation.n_regionkey"), _a("region.r_regionkey")),
        ),
        selections=(
            EqualsConstant(_a("region.r_name"), "ASIA"),
            RangePredicate(
                _a("orders.o_orderdate"), "between", "1994-01-01", "1994-12-31"
            ),
        ),
        group_by=(_a("nation.n_name"),),
        aggregates=(AggregateSpec("sum", _a("lineitem.l_discount")),),
        name="tpcr-q5",
    )


def q10_query(scale: float = 0.1) -> QuerySpec:
    """TPC-H/R Q10 (returned items), flattened: customer ⋈ orders ⋈
    lineitem ⋈ nation grouped by the customer key."""
    catalog = tpch_catalog(scale)
    return QuerySpec(
        catalog=catalog,
        relations=(
            RelationRef("customer"),
            RelationRef("orders"),
            RelationRef("lineitem"),
            RelationRef("nation"),
        ),
        joins=(
            JoinPredicate(_a("customer.c_custkey"), _a("orders.o_custkey")),
            JoinPredicate(_a("orders.o_orderkey"), _a("lineitem.l_orderkey")),
            JoinPredicate(_a("customer.c_nationkey"), _a("nation.n_nationkey")),
        ),
        selections=(
            RangePredicate(
                _a("orders.o_orderdate"), "between", "1993-10-01", "1993-12-31"
            ),
        ),
        group_by=(_a("customer.c_custkey"),),
        order_by=Ordering([_a("customer.c_custkey")]),
        aggregates=(
            AggregateSpec("count"),
            AggregateSpec("sum", _a("lineitem.l_discount")),
        ),
        name="tpcr-q10",
    )


ALL_TPCH_QUERIES = {
    "q3": q3_query,
    "q5": q5_query,
    "q8": q8_query,
    "q10": q10_query,
}
