"""Workloads: the random join-graph generator (Figures 13/14) and TPC-R Q8."""

from .generator import GeneratorConfig, query_family, random_join_query
from .tpch_queries import (
    ALL_TPCH_QUERIES,
    q3_query,
    q5_query,
    q8_analyzed,
    q8_order_info,
    q8_query,
    q10_query,
)

__all__ = [
    "GeneratorConfig",
    "random_join_query",
    "query_family",
    "q3_query",
    "q5_query",
    "q8_query",
    "q10_query",
    "q8_order_info",
    "q8_analyzed",
    "ALL_TPCH_QUERIES",
]
