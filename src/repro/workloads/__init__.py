"""Workloads: random join graphs (Figures 13/14), template repetition, TPC-R Q8."""

from .generator import (
    TOPOLOGIES,
    GeneratorConfig,
    execution_workload,
    query_family,
    random_join_query,
    skewed_client_streams,
    template_variants,
    template_workload,
    topology_edges,
    topology_query,
)
from .tpch_queries import (
    ALL_TPCH_QUERIES,
    q3_query,
    q5_query,
    q8_analyzed,
    q8_order_info,
    q8_query,
    q10_query,
)

__all__ = [
    "GeneratorConfig",
    "TOPOLOGIES",
    "execution_workload",
    "topology_edges",
    "topology_query",
    "random_join_query",
    "query_family",
    "skewed_client_streams",
    "template_variants",
    "template_workload",
    "q3_query",
    "q5_query",
    "q8_query",
    "q10_query",
    "q8_order_info",
    "q8_analyzed",
    "ALL_TPCH_QUERIES",
]
