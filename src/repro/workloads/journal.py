"""Replayable serving workloads: SQL streams, JSONL journals, load reports.

The serving tier's claims — zero dropped requests, deterministic answers,
bounded latency under shed load — are only as good as the harness that
checks them.  This module is that harness:

* :func:`spec_to_sql` renders a generated :class:`QuerySpec` back into the
  server's SQL subset, and :func:`skewed_sql_streams` turns the
  Zipf-skewed per-client streams of
  :func:`~repro.workloads.generator.skewed_client_streams` into request
  *lines* over one merged catalog — the wire-level form of the same
  deterministic workload;
* :func:`run_load` drives a :class:`~repro.service.router.ServingFrontend`
  with one closed-loop thread per client, measures caller-side latency per
  request, and journals every request/response pair;
* the **journal** is JSON Lines, one record per request, written in
  deterministic (client-major) order with sorted keys — so two runs over
  the same workload produce byte-identical journals wherever the responses
  are deterministic (``elapsed_ms`` is the one timing field, and it is
  excluded from every comparison);
* :func:`replay_journal` re-drives a recorded journal against a frontend
  and verifies each response **bit-for-bit** — the acceptance check that a
  recorded run is reproducible.  ``rejected`` records are re-driven but
  compared only when the replay frontend also sheds (admission decisions
  depend on arrival timing, which a replay cannot reproduce); ``ok`` and
  ``error`` records must match exactly.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..catalog.schema import Catalog
from ..query.predicates import EqualsConstant, RangePredicate
from ..query.query import QuerySpec
from .generator import GeneratorConfig, skewed_client_streams

#: Journal record statuses (mirroring Reply statuses).
_STATUSES = ("ok", "error", "rejected")


# -- SQL rendering -------------------------------------------------------------


def _literal(value: object) -> str:
    """Render a constant in the server's SQL subset (strings and numbers)."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"cannot render literal {value!r} as SQL")
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if "'" in value:
            raise ValueError(f"cannot render string with quotes: {value!r}")
        return f"'{value}'"
    raise ValueError(f"cannot render literal {value!r} as SQL")


def spec_to_sql(spec: QuerySpec) -> str:
    """Render a query spec as one request line of the server's SQL subset.

    The inverse of :func:`repro.query.sql.sql_to_query` up to clause order:
    parsing the rendered line against the same catalog binds back to an
    equivalent spec (same canonical plan-cache key — pinned by the journal
    tests).  Join-selectivity overrides have no SQL surface and must be
    empty; everything else round-trips.
    """
    if spec.join_selectivities:
        raise ValueError(
            f"query {spec.name} has selectivity overrides, which SQL cannot carry"
        )
    froms = ", ".join(
        ref.table if ref.alias == ref.table else f"{ref.table} {ref.alias}"
        for ref in spec.relations
    )
    conditions: list[str] = []
    for join in spec.joins:
        conditions.append(f"{join.left} = {join.right}")
    for selection in spec.selections:
        if isinstance(selection, EqualsConstant):
            conditions.append(f"{selection.attribute} = {_literal(selection.value)}")
        elif isinstance(selection, RangePredicate):
            if selection.operator == "between":
                conditions.append(
                    f"{selection.attribute} BETWEEN {_literal(selection.value)} "
                    f"AND {_literal(selection.upper_value)}"
                )
            else:
                conditions.append(
                    f"{selection.attribute} {selection.operator} "
                    f"{_literal(selection.value)}"
                )
        else:  # pragma: no cover - SelectionPredicate is a closed union
            raise TypeError(f"unknown selection {selection!r}")
    if spec.aggregates:
        # A grouped query with aggregates must spell out its select list:
        # `SELECT *` would bind to plain projection and drop the aggregate
        # outputs, so the round-trip property (parse(render(spec)) has the
        # same plan-cache key) would silently fail.  Group keys come first,
        # in GROUP BY order, then the aggregates — the spec's own output
        # column order.
        items = [str(a) for a in spec.group_by]
        for aggregate in spec.aggregates:
            argument = "*" if aggregate.argument is None else str(aggregate.argument)
            items.append(f"{aggregate.function}({argument})")
        select_list = ", ".join(items)
    else:
        select_list = "*"
    parts = [f"SELECT {select_list} FROM {froms}"]
    if conditions:
        parts.append(f"WHERE {' AND '.join(conditions)}")
    if spec.group_by:
        parts.append(f"GROUP BY {', '.join(str(a) for a in spec.group_by)}")
    if spec.order_by is not None:
        order = ", ".join(str(a) for a in spec.order_by)
        parts.append(f"ORDER BY {order}")
    return " ".join(parts)


def skewed_sql_streams(
    n_clients: int = 8,
    queries_per_client: int = 25,
    *,
    n_templates: int = 4,
    skew: float = 1.0,
    repeats: int = 8,
    base_config: GeneratorConfig | None = None,
    seed: int = 0,
) -> tuple[Catalog, list[list[str]]]:
    """The wire-level form of :func:`skewed_client_streams`.

    Returns ``(catalog, streams)``: one merged catalog covering every
    template (template tables are prefixed ``T<t>_``, so merging never
    collides) and per-client lists of SQL request lines, deterministic
    given ``seed``.  The catalog is what the server binds against; the
    lines are what the load harness sends.
    """
    spec_streams = skewed_client_streams(
        n_clients,
        queries_per_client,
        n_templates=n_templates,
        skew=skew,
        repeats=repeats,
        base_config=base_config,
        seed=seed,
    )
    catalog = Catalog()
    for stream in spec_streams:
        for spec in stream:
            for ref in spec.relations:
                if ref.table not in catalog:
                    catalog.add(spec.catalog.table(ref.table))
    return catalog, [[spec_to_sql(spec) for spec in stream] for stream in spec_streams]


# -- the journal ---------------------------------------------------------------


@dataclass(frozen=True)
class JournalRecord:
    """One request/response pair of a recorded serving run."""

    seq: int
    client: str
    request: str
    status: str
    response: str
    elapsed_ms: float
    """Caller-side latency (submit to reply, queueing included).  The one
    non-deterministic field — every journal comparison excludes it."""

    def to_json(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "client": self.client,
                "request": self.request,
                "status": self.status,
                "response": self.response,
                "elapsed_ms": round(self.elapsed_ms, 3),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalRecord":
        raw = json.loads(line)
        record = cls(
            seq=raw["seq"],
            client=raw["client"],
            request=raw["request"],
            status=raw["status"],
            response=raw["response"],
            elapsed_ms=raw["elapsed_ms"],
        )
        if record.status not in _STATUSES:
            raise ValueError(f"journal record {record.seq} has status {record.status!r}")
        return record


def write_journal(path: str | Path, records: "list[JournalRecord]") -> None:
    """Write a JSONL journal (one record per line, sorted keys)."""
    text = "".join(record.to_json() + "\n" for record in records)
    Path(path).write_text(text, encoding="utf-8")


def load_journal(path: str | Path) -> "list[JournalRecord]":
    """Read a JSONL journal back."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(JournalRecord.from_json(line))
    return records


# -- the load harness ----------------------------------------------------------


def _percentile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (0 < q <= 1)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * 1000) * len(sorted_values) // 1000))
    return sorted_values[min(len(sorted_values), rank) - 1]


@dataclass
class LoadReport:
    """What one :func:`run_load` run measured."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    plans_per_sec: float = 0.0
    """Successful (``ok``) replies per wall-clock second — the serving
    throughput number ``BENCH_serve.json`` reports."""

    latencies_by_client: dict[str, list[float]] = field(default_factory=dict)
    records: list[JournalRecord] = field(default_factory=list)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def client_p99(self, client: str) -> float:
        return _percentile(sorted(self.latencies_by_client.get(client, [])), 0.99)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "rejected": dict(sorted(self.rejected.items())),
            "wall_s": self.wall_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "plans_per_sec": self.plans_per_sec,
        }

    def describe(self) -> str:
        shed = (
            ", ".join(f"{r}={c}" for r, c in sorted(self.rejected.items())) or "none"
        )
        return (
            f"{self.requests} request(s) in {self.wall_s:.2f}s: "
            f"{self.ok} ok, {self.errors} error(s), "
            f"{self.rejected_total} rejected ({shed}); "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms, "
            f"{self.plans_per_sec:,.0f} plans/s"
        )


_REJECT_PREFIX = "REJECTED("


def _rejection_reason(body: str) -> str:
    if body.startswith(_REJECT_PREFIX) and body.endswith(")"):
        return body[len(_REJECT_PREFIX) : -1]
    return "unknown"


def run_load(
    frontend,
    streams: "list[list[str]]",
    *,
    journal_path: "str | Path | None" = None,
    client_prefix: str = "client",
) -> LoadReport:
    """Drive a frontend with one closed-loop thread per client stream.

    Every thread waits on a barrier, then sends its stream one request at
    a time (closed loop: the next request leaves when the reply arrives),
    measuring caller-side latency — queueing, coalescing waits, and
    worker-process round-trips included.  Every offered request produces
    exactly one journal record with status ``ok``/``error``/``rejected``
    (the frontend's futures never carry exceptions), which is the "zero
    dropped requests" property the CI smoke leg asserts.

    Records are journaled in client-major stream order — deterministic
    regardless of thread interleaving — and written to ``journal_path``
    (JSONL) when given.
    """
    barrier = threading.Barrier(len(streams))
    per_client: "list[list[JournalRecord]]" = [[] for _ in streams]
    names = [f"{client_prefix}-{index}" for index in range(len(streams))]

    def drive(index: int) -> None:
        name = names[index]
        barrier.wait()
        for line in streams[index]:
            started = time.monotonic()
            reply = frontend.submit(line, client=name).result()
            elapsed_ms = (time.monotonic() - started) * 1000.0
            per_client[index].append(
                JournalRecord(
                    seq=0,  # assigned after the deterministic sort
                    client=name,
                    request=line,
                    status=reply.status,
                    response=reply.body,
                    elapsed_ms=elapsed_ms,
                )
            )

    threads = [
        threading.Thread(target=drive, args=(index,), name=names[index])
        for index in range(len(streams))
    ]
    wall_started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.monotonic() - wall_started

    report = LoadReport(wall_s=wall_s)
    records: "list[JournalRecord]" = []
    for index, client_records in enumerate(per_client):
        latencies = []
        for record in client_records:
            records.append(
                JournalRecord(
                    seq=len(records),
                    client=record.client,
                    request=record.request,
                    status=record.status,
                    response=record.response,
                    elapsed_ms=record.elapsed_ms,
                )
            )
            latencies.append(record.elapsed_ms)
            if record.status == "ok":
                report.ok += 1
            elif record.status == "error":
                report.errors += 1
            else:
                reason = _rejection_reason(record.response)
                report.rejected[reason] = report.rejected.get(reason, 0) + 1
        report.latencies_by_client[names[index]] = latencies
    report.requests = len(records)
    report.records = records
    everything = sorted(
        latency for latencies in report.latencies_by_client.values() for latency in latencies
    )
    report.p50_ms = _percentile(everything, 0.50)
    report.p99_ms = _percentile(everything, 0.99)
    report.plans_per_sec = report.ok / wall_s if wall_s > 0 else 0.0
    if journal_path is not None:
        write_journal(journal_path, records)
    return report


# -- replay --------------------------------------------------------------------


@dataclass
class ReplayReport:
    """Outcome of re-driving a journal: the bit-for-bit scorecard."""

    replayed: int = 0
    matched: int = 0
    skipped_rejected: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        """True when every replayed record reproduced bit-for-bit."""
        return not self.mismatches

    def describe(self) -> str:
        return (
            f"{self.replayed} record(s) replayed, {self.matched} matched, "
            f"{self.skipped_rejected} rejection(s) skipped, "
            f"{len(self.mismatches)} mismatch(es)"
        )


def replay_journal(
    frontend,
    journal: "str | Path | list[JournalRecord]",
    *,
    max_mismatches: int = 10,
) -> ReplayReport:
    """Re-drive a recorded journal and compare responses bit-for-bit.

    ``ok`` and ``error`` records must reproduce their exact status and
    response body (plan text, cost trailer, error line — none of which may
    depend on timing).  ``rejected`` records are skipped: an admission
    decision is a function of arrival timing and quota state, which a
    sequential replay deliberately does not reproduce — pass a frontend
    *without* admission control to replay the serving answers themselves.
    """
    records = (
        journal if isinstance(journal, list) else load_journal(journal)
    )
    report = ReplayReport()
    for record in records:
        if record.status == "rejected":
            report.skipped_rejected += 1
            continue
        report.replayed += 1
        reply = frontend.submit(record.request, client=record.client).result()
        if reply.status == record.status and reply.body == record.response:
            report.matched += 1
        elif len(report.mismatches) < max_mismatches:
            report.mismatches.append(
                f"seq {record.seq} [{record.client}]: recorded "
                f"{record.status}/{record.response[:60]!r} but replay answered "
                f"{reply.status}/{reply.body[:60]!r}"
            )
    return report
