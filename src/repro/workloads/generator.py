"""Random join-graph query generator (the Figure 13/14 workload).

The paper: "we generated queries with 5-10 relations and a varying number of
join predicates — that is, edges in the join graph.  We always started from
a chain query and then randomly added some edges."

Generation is fully deterministic given a seed:

* relation cardinalities are log-uniform in ``[100, 100_000]``;
* each edge gets a *fresh* attribute pair (one column per side), the shape
  of real PK/FK join graphs — this also keeps the FD sets of distinct
  operators attribute-disjoint, the regime where the FSM and Simmen
  frameworks provably agree (see DESIGN.md);
* a random subset of relations gets a clustered index on one of its join
  columns, providing free interesting orders to exploit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..catalog.schema import Catalog, Column, Index, Table
from ..core.attributes import Attribute
from ..query.predicates import JoinPredicate
from ..query.query import QuerySpec, RelationRef


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the random query generator."""

    n_relations: int = 5
    n_edges: int | None = None  # default: chain (n_relations - 1)
    min_cardinality: int = 100
    max_cardinality: int = 100_000
    index_probability: float = 0.5
    seed: int = 0

    def resolved_edges(self) -> int:
        if self.n_edges is None:
            return self.n_relations - 1
        max_edges = self.n_relations * (self.n_relations - 1) // 2
        if not self.n_relations - 1 <= self.n_edges <= max_edges:
            raise ValueError(
                f"n_edges must be in [{self.n_relations - 1}, {max_edges}]"
            )
        return self.n_edges


def random_join_query(config: GeneratorConfig) -> QuerySpec:
    """Generate one random query: a chain plus random extra edges."""
    rng = random.Random(config.seed)
    n = config.n_relations
    if n < 2:
        raise ValueError("need at least two relations")

    # Pick edges: chain first, then random non-duplicate pairs.
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(n - 1)]
    existing = set(edges)
    candidates = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if (i, j) not in existing
    ]
    rng.shuffle(candidates)
    extra = config.resolved_edges() - len(edges)
    edges.extend(candidates[:extra])

    # Column layout: one fresh column per edge endpoint.
    columns: dict[int, list[Column]] = {i: [] for i in range(n)}
    joins: list[JoinPredicate] = []
    for edge_index, (i, j) in enumerate(edges):
        left_col = f"c{edge_index}a"
        right_col = f"c{edge_index}b"
        columns[i].append(Column(left_col))
        columns[j].append(Column(right_col))
        joins.append(
            JoinPredicate(
                Attribute(left_col, f"R{i}"), Attribute(right_col, f"R{j}")
            )
        )

    catalog = Catalog()
    for i in range(n):
        name = f"R{i}"
        cardinality = int(
            round(
                config.min_cardinality
                * (config.max_cardinality / config.min_cardinality)
                ** rng.random()
            )
        )
        indexes: tuple[Index, ...] = ()
        if columns[i] and rng.random() < config.index_probability:
            indexed = rng.choice(columns[i]).name
            indexes = (Index(f"idx_{name}_{indexed}", name, (indexed,)),)
        catalog.add(
            Table(
                name=name,
                columns=tuple(columns[i]),
                cardinality=cardinality,
                indexes=indexes,
            )
        )

    return QuerySpec(
        catalog=catalog,
        relations=tuple(RelationRef(f"R{i}") for i in range(n)),
        joins=tuple(joins),
        name=f"rand-n{n}-e{len(edges)}-s{config.seed}",
    )


def query_family(
    n_relations: int,
    extra_edges: int,
    seeds: Iterator[int] | range,
) -> Iterator[QuerySpec]:
    """The Figure 13 families: edges = (n-1) + extra_edges, several seeds."""
    for seed in seeds:
        config = GeneratorConfig(
            n_relations=n_relations,
            n_edges=n_relations - 1 + extra_edges,
            seed=seed,
        )
        yield random_join_query(config)
