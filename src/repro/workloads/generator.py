"""Random join-graph query generator (the Figure 13/14 workload).

The paper: "we generated queries with 5-10 relations and a varying number of
join predicates — that is, edges in the join graph.  We always started from
a chain query and then randomly added some edges."

Generation is fully deterministic given a seed:

* relation cardinalities are log-uniform in ``[100, 100_000]``;
* each edge gets a *fresh* attribute pair (one column per side), the shape
  of real PK/FK join graphs — this also keeps the FD sets of distinct
  operators attribute-disjoint, the regime where the FSM and Simmen
  frameworks provably agree (see DESIGN.md);
* a random subset of relations gets a clustered index on one of its join
  columns, providing free interesting orders to exploit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Iterator

from ..catalog.schema import Catalog, Column, Index, Table
from ..core.attributes import Attribute
from ..core.ordering import Ordering
from ..query.predicates import EqualsConstant, JoinPredicate
from ..query.query import AggregateSpec, QuerySpec, RelationRef


#: Explicit join-graph topologies: the shapes whose enumeration asymptotics
#: differ (chains/cycles/grids are polynomial for DPccp, stars/cliques are
#: inherently exponential for exact DP).
TOPOLOGIES = ("chain", "star", "cycle", "clique", "grid")


def topology_edges(topology: str, n: int) -> list[tuple[int, int]]:
    """Edge list (i, j) with i < j of an explicit ``n``-relation topology.

    ``grid`` lays the relations out row-major on a near-square lattice
    (``ceil(sqrt(n))`` columns) with horizontal and vertical adjacency.
    ``cycle`` needs n >= 3 (at n == 2 it would duplicate the chain edge).
    """
    if topology == "chain":
        return [(i, i + 1) for i in range(n - 1)]
    if topology == "star":
        return [(0, i) for i in range(1, n)]
    if topology == "cycle":
        if n < 3:
            raise ValueError(f"a cycle needs at least 3 relations, got {n}")
        return [(i, i + 1) for i in range(n - 1)] + [(0, n - 1)]
    if topology == "clique":
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    if topology == "grid":
        columns = math.isqrt(n - 1) + 1
        edges = []
        for cell in range(n):
            if (cell + 1) % columns and cell + 1 < n:
                edges.append((cell, cell + 1))
            if cell + columns < n:
                edges.append((cell, cell + columns))
        return edges
    raise ValueError(
        f"unknown topology {topology!r}; available: {', '.join(TOPOLOGIES)}"
    )


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the random query generator."""

    n_relations: int = 5
    n_edges: int | None = None  # default: chain (n_relations - 1)
    min_cardinality: int = 100
    max_cardinality: int = 100_000
    index_probability: float = 0.5
    seed: int = 0
    relation_prefix: str = "R"
    """Relation names are ``<prefix>0 .. <prefix>{n-1}``.  Queries generated
    with the same shape but different prefixes are structurally *distinct*
    (attributes are qualified by relation), which is how
    :func:`template_workload` keeps its templates from sharing one
    preparation fingerprint."""

    topology: str | None = None
    """Explicit join-graph shape (one of :data:`TOPOLOGIES`) instead of the
    paper's chain-plus-random-edges default.  Cardinalities and indexes
    stay seed-randomized; only the edge structure is pinned.  Mutually
    exclusive with ``n_edges``."""

    def resolved_edges(self) -> int:
        if self.n_edges is None:
            return self.n_relations - 1
        max_edges = self.n_relations * (self.n_relations - 1) // 2
        if not self.n_relations - 1 <= self.n_edges <= max_edges:
            raise ValueError(
                f"n_edges must be in [{self.n_relations - 1}, {max_edges}]"
            )
        return self.n_edges


def random_join_query(config: GeneratorConfig) -> QuerySpec:
    """Generate one random query: an explicit topology when
    ``config.topology`` is set, otherwise a chain plus random extra edges."""
    rng = random.Random(config.seed)
    n = config.n_relations
    prefix = config.relation_prefix
    if n < 2:
        raise ValueError("need at least two relations")

    if config.topology is not None:
        if config.n_edges is not None:
            raise ValueError("topology and n_edges are mutually exclusive")
        edges = topology_edges(config.topology, n)
    else:
        # Pick edges: chain first, then random non-duplicate pairs.
        edges = [(i, i + 1) for i in range(n - 1)]
        existing = set(edges)
        candidates = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if (i, j) not in existing
        ]
        rng.shuffle(candidates)
        extra = config.resolved_edges() - len(edges)
        edges.extend(candidates[:extra])

    # Column layout: one fresh column per edge endpoint.
    columns: dict[int, list[Column]] = {i: [] for i in range(n)}
    joins: list[JoinPredicate] = []
    for edge_index, (i, j) in enumerate(edges):
        left_col = f"c{edge_index}a"
        right_col = f"c{edge_index}b"
        columns[i].append(Column(left_col))
        columns[j].append(Column(right_col))
        joins.append(
            JoinPredicate(
                Attribute(left_col, f"{prefix}{i}"),
                Attribute(right_col, f"{prefix}{j}"),
            )
        )

    catalog = Catalog()
    for i in range(n):
        name = f"{prefix}{i}"
        cardinality = int(
            round(
                config.min_cardinality
                * (config.max_cardinality / config.min_cardinality)
                ** rng.random()
            )
        )
        indexes: tuple[Index, ...] = ()
        if columns[i] and rng.random() < config.index_probability:
            indexed = rng.choice(columns[i]).name
            indexes = (Index(f"idx_{name}_{indexed}", name, (indexed,)),)
        catalog.add(
            Table(
                name=name,
                columns=tuple(columns[i]),
                cardinality=cardinality,
                indexes=indexes,
            )
        )

    return QuerySpec(
        catalog=catalog,
        relations=tuple(RelationRef(f"{prefix}{i}") for i in range(n)),
        joins=tuple(joins),
        name=f"{config.topology or 'rand'}-n{n}-e{len(edges)}-s{config.seed}",
    )


def topology_query(
    topology: str,
    n_relations: int,
    *,
    seed: int = 0,
    base_config: GeneratorConfig | None = None,
) -> QuerySpec:
    """One query with an explicit join-graph shape (see :data:`TOPOLOGIES`).

    The workload of the enumerator benchmarks: shape pinned, statistics
    (cardinalities, clustered indexes) seed-randomized as usual.
    """
    config = base_config or GeneratorConfig()
    return random_join_query(
        replace(
            config,
            n_relations=n_relations,
            n_edges=None,
            topology=topology,
            seed=seed,
        )
    )


def execution_workload(
    n_relations: int = 4,
    rows_per_table: int = 1000,
    *,
    topology: str = "chain",
    match_factor: int = 4,
    index_probability: float = 0.5,
    seed: int = 0,
) -> tuple[QuerySpec, dict]:
    """A query whose catalog statistics *match the data that will be run*.

    Returns ``(spec, datagen_kwargs)``: the spec's catalog pins every
    relation's cardinality to ``rows_per_table`` (so the optimizer's
    estimates are about the tuples the engines will actually stream), and
    the kwargs — ``rows_per_table``, ``default_domain``, ``seed`` — feed
    :func:`repro.exec.data.generate_dataset` so join columns draw from a
    ``rows_per_table / match_factor``-sized domain: every join key matches
    ``match_factor`` partners on average, the dense regime where the
    vectorized engine's columnar inner loops pay off (and where orderings
    must survive ties).
    """
    if match_factor < 1:
        raise ValueError(f"match_factor must be >= 1, got {match_factor}")
    spec = random_join_query(
        GeneratorConfig(
            n_relations=n_relations,
            min_cardinality=rows_per_table,
            max_cardinality=rows_per_table,
            index_probability=index_probability,
            topology=topology,
            seed=seed,
        )
    )
    datagen = {
        "rows_per_table": rows_per_table,
        "default_domain": max(2, rows_per_table // match_factor),
        "seed": seed,
    }
    return spec, datagen


def grouped_execution_workload(
    n_relations: int = 4,
    rows_per_table: int = 1000,
    *,
    topology: str = "chain",
    match_factor: int = 4,
    index_probability: float = 0.5,
    seed: int = 0,
    order_grouping: bool = True,
) -> tuple[QuerySpec, dict]:
    """An :func:`execution_workload` query with a GROUP BY and aggregates.

    Groups on the first join attribute and computes ``count(*)``,
    ``sum``/``min``/``max`` over the last join attribute — every aggregate
    family the engines implement, over columns guaranteed to exist in the
    generated schema.  With ``order_grouping`` the query also orders by the
    group key, the shape where an input ordering that covers the grouping
    lets the planner pick the sort-free stream-aggregate; without it the
    grouping is order-free and hash aggregation competes on cost alone.
    """
    spec, datagen = execution_workload(
        n_relations,
        rows_per_table,
        topology=topology,
        match_factor=match_factor,
        index_probability=index_probability,
        seed=seed,
    )
    key = spec.joins[0].left
    value = spec.joins[-1].right
    grouped = QuerySpec(
        catalog=spec.catalog,
        relations=spec.relations,
        joins=spec.joins,
        selections=spec.selections,
        order_by=Ordering((key,)) if order_grouping else None,
        group_by=(key,),
        aggregates=(
            AggregateSpec("count"),
            AggregateSpec("sum", value),
            AggregateSpec("min", value),
            AggregateSpec("max", value),
        ),
        name=f"{spec.name}-grouped",
        join_selectivities=dict(spec.join_selectivities),
    )
    return grouped, datagen


def query_family(
    n_relations: int,
    extra_edges: int,
    seeds: Iterator[int] | range,
) -> Iterator[QuerySpec]:
    """The Figure 13 families: edges = (n-1) + extra_edges, several seeds."""
    for seed in seeds:
        config = GeneratorConfig(
            n_relations=n_relations,
            n_edges=n_relations - 1 + extra_edges,
            seed=seed,
        )
        yield random_join_query(config)


def template_variants(
    template: QuerySpec, repeats: int, *, value_prefix: str = "param"
) -> list[QuerySpec]:
    """``repeats`` copies of ``template`` differing only in a constant.

    Each variant adds one equality selection ``attr = "<prefix>-<i>"`` on the
    first join attribute (toy schemas have no other guaranteed column), with
    a distinct value per variant — the shape of a parameterized prepared
    statement.  All variants share the template's preparation fingerprint
    (a constant binding carries the attribute, never the value), so a
    session's prepared-state cache misses once and hits ``repeats - 1``
    times; their *plan*-cache keys stay distinct because constants differ.
    """
    if not template.joins:
        raise ValueError(f"template {template.name} has no join attribute to parameterize")
    target = template.joins[0].left
    variants: list[QuerySpec] = []
    for i in range(repeats):
        variants.append(
            QuerySpec(
                catalog=template.catalog,
                relations=template.relations,
                joins=template.joins,
                selections=template.selections
                + (EqualsConstant(target, f"{value_prefix}-{i}"),),
                order_by=template.order_by,
                group_by=template.group_by,
                aggregates=template.aggregates,
                name=f"{template.name}-v{i}",
                join_selectivities=dict(template.join_selectivities),
            )
        )
    return variants


def skewed_client_streams(
    n_clients: int = 8,
    queries_per_client: int = 25,
    *,
    n_templates: int = 4,
    skew: float = 1.0,
    repeats: int = 8,
    base_config: GeneratorConfig | None = None,
    seed: int = 0,
) -> list[list[QuerySpec]]:
    """Per-client query streams with Zipf-skewed template popularity.

    The load shape of real serving traffic: ``n_clients`` independent
    streams, each drawing ``queries_per_client`` queries whose *template*
    follows a Zipf(``skew``) distribution (template 0 is hottest;
    ``skew=0`` is uniform) and whose constant is one of ``repeats``
    parameter values.  Hot templates are exactly what rewards the sharded
    pool: every variant of a template routes to one shard and reuses its
    prepared DFSM.

    Deterministic given ``seed``: the same call produces the same streams,
    and the flattened concatenation is a valid single-threaded reference
    workload (the concurrency stress test replays both and compares plans).
    """
    if n_clients < 1 or queries_per_client < 0 or n_templates < 1:
        raise ValueError("need >=1 client, >=0 queries, >=1 template")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    config = base_config or GeneratorConfig()
    variants_by_template = [
        template_variants(
            random_join_query(
                replace(
                    config,
                    seed=seed + t,
                    relation_prefix=f"T{t}_{config.relation_prefix}",
                )
            ),
            repeats,
        )
        for t in range(n_templates)
    ]
    # Zipf weights 1/rank^skew, template 0 hottest.
    weights = [1.0 / (rank + 1) ** skew for rank in range(n_templates)]
    streams: list[list[QuerySpec]] = []
    for client in range(n_clients):
        # Integer-only seed: tuple seeding goes through hash(), which is
        # randomized across processes and would break determinism.
        rng = random.Random(seed * 1_000_003 + client)
        stream = []
        for _ in range(queries_per_client):
            template = rng.choices(range(n_templates), weights=weights)[0]
            variants = variants_by_template[template]
            stream.append(variants[rng.randrange(len(variants))])
        streams.append(stream)
    return streams


def template_workload(
    n_templates: int = 4,
    repeats: int = 5,
    base_config: GeneratorConfig | None = None,
    seed: int = 0,
) -> list[QuerySpec]:
    """A template-repeated workload (the regime the service layer targets).

    ``n_templates`` random join templates (seeds ``seed .. seed+n-1``), each
    expanded into ``repeats`` constant-varied variants via
    :func:`template_variants`, in template-major order.  A cold session
    pass over the result performs exactly ``n_templates`` preparations.
    """
    config = base_config or GeneratorConfig()
    specs: list[QuerySpec] = []
    for t in range(n_templates):
        template = random_join_query(
            replace(
                config,
                seed=seed + t,
                relation_prefix=f"T{t}_{config.relation_prefix}",
            )
        )
        specs.extend(template_variants(template, repeats))
    return specs
