"""A generic DFA / Moore machine and the power-set construction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from .nfa import NFA

State = Hashable
Symbol = Hashable


@dataclass
class DFA:
    """Deterministic automaton; ``outputs`` makes it a Moore machine.

    ``transitions`` is total over ``symbols`` by convention: a missing entry
    is interpreted as a self-loop (this matches the order-FSM semantics
    where an inapplicable FD set leaves the state unchanged).
    """

    states: set = field(default_factory=set)
    symbols: set = field(default_factory=set)
    transitions: dict = field(default_factory=dict)  # (state, symbol) -> state
    start: State = None
    accepting: set = field(default_factory=set)
    outputs: dict = field(default_factory=dict)  # state -> hashable output

    def add_transition(self, source: State, symbol: Symbol, target: State) -> None:
        if (source, symbol) in self.transitions and self.transitions[
            (source, symbol)
        ] != target:
            raise ValueError(f"non-deterministic transition at ({source}, {symbol})")
        self.states.update((source, target))
        self.symbols.add(symbol)
        self.transitions[(source, symbol)] = target

    def step(self, state: State, symbol: Symbol) -> State:
        return self.transitions.get((state, symbol), state)

    def run(self, word: Iterable[Symbol]) -> State:
        state = self.start
        for symbol in word:
            state = self.step(state, symbol)
        return state

    def accepts(self, word: Iterable[Symbol]) -> bool:
        return self.run(word) in self.accepting

    def output(self, state: State):
        return self.outputs.get(state)


def subset_construction(nfa: NFA) -> DFA:
    """The classic power-set construction (Appendix A.2).

    DFA states are frozensets of NFA states; accepting if they intersect
    the NFA's accepting set.
    """
    dfa = DFA(start=nfa.epsilon_closure([nfa.start]))
    dfa.states.add(dfa.start)
    dfa.symbols = set(nfa.symbols)
    work = [dfa.start]
    seen = {dfa.start}
    while work:
        current = work.pop()
        if current & nfa.accepting:
            dfa.accepting.add(current)
        for symbol in nfa.symbols:
            target = nfa.step(current, symbol)
            dfa.transitions[(current, symbol)] = target
            if target not in seen:
                seen.add(target)
                dfa.states.add(target)
                work.append(target)
    return dfa
