"""Moore-machine minimization by partition refinement (Hopcroft-style).

Beyond the paper: the subset construction can leave behaviourally identical
DFSM states (same contains row, same reactions to every FD set).  Merging
them shrinks the precomputed tables *and* improves plan pruning — two plans
whose states merge become cost-comparable.  This module minimizes a Moore
machine given as parallel arrays, which is exactly the shape of
:class:`repro.core.tables.PreparedTables`.
"""

from __future__ import annotations

from typing import Sequence


def minimize_moore(
    outputs: Sequence,
    transitions: Sequence[Sequence[int]],
    start: int,
) -> tuple[list[int], int]:
    """Minimize a Moore machine.

    ``outputs[s]`` is the observable output of state ``s`` (hashable);
    ``transitions[s][k]`` the successor of ``s`` under symbol ``k``.  Every
    state is considered observable (the FSM has no accepting set).

    Returns ``(state_map, n_classes)`` where ``state_map[s]`` is the id of
    ``s``'s equivalence class; class ids are assigned so that the start
    state's class keeps id ``state_map[start]`` consistent with first-seen
    ordering.
    """
    n = len(outputs)
    if n == 0:
        return [], 0
    symbol_count = len(transitions[0]) if n else 0

    # initial partition: by output
    classes: dict = {}
    state_map = [0] * n
    for state in range(n):
        key = outputs[state]
        if key not in classes:
            classes[key] = len(classes)
        state_map[state] = classes[key]

    # refine until stable: split classes by successor-class signatures
    while True:
        signatures: dict = {}
        new_map = [0] * n
        for state in range(n):
            signature = (
                state_map[state],
                tuple(state_map[transitions[state][k]] for k in range(symbol_count)),
            )
            if signature not in signatures:
                signatures[signature] = len(signatures)
            new_map[state] = signatures[signature]
        if len(signatures) == len(set(state_map)):
            return new_map, len(signatures)
        state_map = new_map
