"""A generic ε-NFA over hashable states and symbols.

The order-optimization core builds its NFSM directly (it needs closure
edges and producer entry points), but the underlying theory is the classic
automata construction the paper's Appendix A appeals to.  This package
provides that theory generically — used by the tests to cross-check the
specialized implementation, and by the DFSM minimization extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

State = Hashable
Symbol = Hashable


@dataclass
class NFA:
    """Non-deterministic finite automaton with ε-transitions.

    ``accepting`` may be empty: an FSM in the paper's sense is an NFA where
    every state matters (Appendix A.1).
    """

    states: set = field(default_factory=set)
    symbols: set = field(default_factory=set)
    transitions: dict = field(default_factory=dict)  # (state, symbol) -> set
    epsilon: dict = field(default_factory=dict)  # state -> set
    start: State = None
    accepting: set = field(default_factory=set)

    def add_transition(self, source: State, symbol: Symbol, target: State) -> None:
        self.states.update((source, target))
        self.symbols.add(symbol)
        self.transitions.setdefault((source, symbol), set()).add(target)

    def add_epsilon(self, source: State, target: State) -> None:
        self.states.update((source, target))
        self.epsilon.setdefault(source, set()).add(target)

    def epsilon_closure(self, states: Iterable[State]) -> frozenset:
        """All states reachable from ``states`` via ε-transitions."""
        closure = set(states)
        work = list(closure)
        while work:
            state = work.pop()
            for target in self.epsilon.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    work.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: Symbol) -> frozenset:
        """ε-closure after consuming one symbol from a state set."""
        moved: set = set()
        for state in states:
            moved |= self.transitions.get((state, symbol), set())
        return self.epsilon_closure(moved)

    def run(self, word: Iterable[Symbol]) -> frozenset:
        """The state set after consuming ``word`` from the start state."""
        current = self.epsilon_closure([self.start])
        for symbol in word:
            current = self.step(current, symbol)
        return current

    def accepts(self, word: Iterable[Symbol]) -> bool:
        return bool(self.run(word) & self.accepting)
