"""Generic automata substrate: ε-NFA, DFA/Moore machine, power-set
construction (paper Appendix A), and Moore minimization."""

from .dfa import DFA, subset_construction
from .minimize import minimize_moore
from .nfa import NFA

__all__ = ["NFA", "DFA", "subset_construction", "minimize_moore"]
