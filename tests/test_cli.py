"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


def test_prepare_demo(capsys):
    assert (
        main(
            [
                "prepare",
                "select * from persons, jobs where persons.jobid = jobs.id "
                "order by jobs.id, persons.name",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "interesting orders" in out
    assert "DFSM" in out
    assert "(jobs.id, persons.name)" in out


def test_plan_demo(capsys):
    assert (
        main(
            [
                "plan",
                "select * from persons, jobs where persons.jobid = jobs.id",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "join" in out
    assert "plans generated" in out


def test_plan_tpch(capsys):
    sql = (
        "select * from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "order by orders.o_orderkey"
    )
    assert main(["plan", "--catalog", "tpch", sql]) == 0
    out = capsys.readouterr().out
    assert "merge_join" in out or "hash_join" in out


def test_unknown_catalog():
    with pytest.raises(SystemExit, match="unknown catalog"):
        main(["plan", "--catalog", "nope", "select * from t"])


def test_sweep_tiny(capsys):
    assert main(["sweep", "--max-n", "5", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "%t" in out


def test_q8(capsys):
    assert main(["q8"]) == 0
    out = capsys.readouterr().out
    assert "with pruning" in out
    assert "fsm" in out
