"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


def test_prepare_demo(capsys):
    assert (
        main(
            [
                "prepare",
                "select * from persons, jobs where persons.jobid = jobs.id "
                "order by jobs.id, persons.name",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "interesting orders" in out
    assert "DFSM" in out
    assert "(jobs.id, persons.name)" in out


def test_plan_demo(capsys):
    assert (
        main(
            [
                "plan",
                "select * from persons, jobs where persons.jobid = jobs.id",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "join" in out
    assert "plans generated" in out


def test_plan_tpch(capsys):
    sql = (
        "select * from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "order by orders.o_orderkey"
    )
    assert main(["plan", "--catalog", "tpch", sql]) == 0
    out = capsys.readouterr().out
    assert "merge_join" in out or "hash_join" in out


def test_unknown_catalog():
    with pytest.raises(SystemExit, match="unknown catalog"):
        main(["plan", "--catalog", "nope", "select * from t"])


def test_sweep_tiny(capsys):
    assert main(["sweep", "--max-n", "5", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "%t" in out


def test_plan_enumerator_flag(capsys):
    sql = "select * from persons, jobs where persons.jobid = jobs.id"
    assert main(["plan", "--enumerator", "greedy", sql]) == 0
    out = capsys.readouterr().out
    assert "greedy enumeration" in out
    assert "pair(s) visited" in out


def test_plan_cross_products_flag(capsys):
    sql = "select * from persons, jobs"  # no join predicate
    with pytest.raises(ValueError, match="disconnected"):
        main(["plan", sql])
    capsys.readouterr()
    assert main(["plan", "--cross-products", sql]) == 0
    out = capsys.readouterr().out
    assert "cross product" in out


def test_sweep_topologies(capsys):
    assert (
        main(
            [
                "sweep",
                "--topologies", "chain,cycle",
                "--sizes", "4,11",
                "--enumerators", "dpsub,dpccp",
            ]
        )
        == 0
    )
    from repro.plangen import DPSUB_MAX_N

    out = capsys.readouterr().out
    assert "dpccp" in out
    # dpsub guard past the oracle horizon
    assert f"(skipped: n > {DPSUB_MAX_N})" in out


def test_plan_prepare_mode_flag(capsys):
    sql = "select * from persons, jobs where persons.jobid = jobs.id"
    assert main(["plan", "--prepare", "lazy", sql]) == 0
    lazy_out = capsys.readouterr().out
    assert "lazy preparation" in lazy_out
    assert "materialized on demand" in lazy_out
    assert main(["plan", "--prepare", "eager", sql]) == 0
    eager_out = capsys.readouterr().out
    assert "eager preparation" in eager_out
    # bit-identical plans: everything above the summary line must agree
    strip = lambda out: out.rsplit("\n\n", 1)[0]
    assert strip(lazy_out) == strip(eager_out)


def test_prepare_reports_stage_timings_and_mode(capsys):
    sql = (
        "select * from persons, jobs where persons.jobid = jobs.id "
        "order by jobs.id"
    )
    assert main(["prepare", "--prepare", "lazy", sql]) == 0
    out = capsys.readouterr().out
    assert "(lazy mode)" in out
    assert "stage timings (ms):" in out
    assert "determinize" in out


def test_run_executes_a_plan(capsys):
    sql = (
        "select * from persons, jobs where persons.jobid = jobs.id "
        "order by jobs.id"
    )
    assert main(["run", "--rows", "50", sql]) == 0
    out = capsys.readouterr().out
    assert "dataset: 100 row(s) over 2 relation(s)" in out
    assert "explain analyze (vector):" in out
    assert "actual: rows=" in out
    assert "physical sort(s)" in out


def test_run_both_engines_reports_agreement_and_speedup(capsys):
    sql = (
        "select * from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey"
    )
    assert main(["run", "--catalog", "tpch", "--engine", "both",
                 "--rows", "80", "--batch-size", "32", sql]) == 0
    out = capsys.readouterr().out
    assert "explain analyze (row):" in out
    assert "explain analyze (vector):" in out
    assert "engines agree" in out
    assert "speedup" in out


def test_run_all_engines_three_way_differential(capsys):
    from repro.exec import NUMPY_AVAILABLE

    sql = (
        "select * from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "order by orders.o_orderkey"
    )
    assert main(["run", "--catalog", "tpch", "--engine", "all",
                 "--rows", "80", sql]) == 0
    out = capsys.readouterr().out
    assert "explain analyze (row):" in out
    assert "explain analyze (vector):" in out
    assert "engines agree" in out
    if NUMPY_AVAILABLE:
        assert "explain analyze (numpy):" in out
        assert "numpy speedup" in out
    else:
        # without NumPy, "all" degrades to the two pure-Python engines
        assert "numpy" not in out


def test_plan_grouped_query_uses_aggregate_operator(capsys):
    sql = (
        "select orders.o_year, count(*) from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "group by orders.o_year"
    )
    assert main(["plan", "--catalog", "tpch", sql]) == 0
    out = capsys.readouterr().out
    assert "aggregate" in out  # stream_aggregate or hash_aggregate
    assert "count(*)" in out


def test_prepare_grouped_query_reports_the_grouping(capsys):
    sql = (
        "select customer.c_custkey, count(*) from customer, orders "
        "where customer.c_custkey = orders.o_custkey "
        "group by customer.c_custkey"
    )
    assert main(["prepare", "--catalog", "tpch", sql]) == 0
    out = capsys.readouterr().out
    assert "grouping: {customer.c_custkey}" in out


def test_run_grouped_query_all_engines_agree(capsys):
    sql = (
        "select orders.o_year, count(*), sum(lineitem.l_discount) "
        "from orders, lineitem "
        "where orders.o_orderkey = lineitem.l_orderkey "
        "group by orders.o_year order by orders.o_year"
    )
    assert main(["run", "--catalog", "tpch", "--engine", "all",
                 "--rows", "80", sql]) == 0
    out = capsys.readouterr().out
    assert "aggregate" in out
    assert "engines agree" in out


def test_run_distinct_all_engines_agree(capsys):
    sql = "select distinct orders.o_year from orders"
    assert main(["run", "--catalog", "tpch", "--engine", "all",
                 "--rows", "60", sql]) == 0
    out = capsys.readouterr().out
    assert "engines agree (7 row(s))" in out or "engines agree" in out


def test_q8(capsys):
    assert main(["q8"]) == 0
    out = capsys.readouterr().out
    assert "with pruning" in out
    assert "fsm" in out


def test_batch_random_two_passes(capsys):
    assert main(["batch", "--templates", "2", "--repeats", "3", "--passes", "2"]) == 0
    out = capsys.readouterr().out
    assert "6 query(ies)" in out
    assert "prepared cache" in out
    # 2 preparations, 4 template-repeat hits on the cold pass; the warm pass
    # serves all 6 queries from the plan cache.
    assert "4 hit(s), 2 miss(es)" in out
    assert "6 hit(s), 6 miss(es)" in out


def test_batch_tpch_no_cache(capsys):
    assert main(["batch", "--workload", "tpch", "--passes", "1", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "4 query(ies)" in out
    assert "0 hit(s)" in out


def test_prepare_store_persists_an_artifact(capsys, tmp_path):
    sql = (
        "select * from persons, jobs where persons.jobid = jobs.id "
        "order by jobs.id"
    )
    assert main(["prepare", "--store", str(tmp_path), sql]) == 0
    out = capsys.readouterr().out
    assert "artifact: stored" in out
    stored = list(tmp_path.glob("*.ropt"))
    assert len(stored) == 1
    assert f"{stored[0].stat().st_size} bytes" in out


def test_warm_then_batch_starts_warm(capsys, tmp_path):
    store = str(tmp_path / "artifacts")
    args = ["--templates", "2", "--repeats", "1", "--seed", "3"]
    assert main(["warm", "--artifacts", store] + args) == 0
    out = capsys.readouterr().out
    assert "2 stored" in out
    assert "2 on disk" in out
    # Warming again finds everything already on disk.
    assert main(["warm", "--artifacts", store] + args) == 0
    assert "2 already warm" in capsys.readouterr().out
    # A batch over the same templates (fresh session) warm-loads.
    assert main(["batch", "--artifacts", store, "--passes", "1"] + args) == 0
    out = capsys.readouterr().out
    assert "2 warm load(s), 0 cold build(s)" in out


def test_batch_artifacts_cold_then_saves(capsys, tmp_path):
    store = str(tmp_path / "artifacts")
    assert (
        main(
            [
                "batch", "--artifacts", store, "--passes", "1",
                "--templates", "2", "--repeats", "1", "--seed", "9",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "0 warm load(s), 2 cold build(s), 2 save(s)" in out


def test_serve_with_artifacts_stdin_loop(capsys, monkeypatch, tmp_path):
    import io

    sql = (
        "select * from persons, jobs where persons.jobid = jobs.id "
        "and persons.name = 'alice' order by jobs.id\n"
    )
    store = str(tmp_path / "artifacts")
    monkeypatch.setattr("sys.stdin", io.StringIO(sql + "\\quit\n"))
    assert main(["serve", "--artifacts", store]) == 0
    first = capsys.readouterr().out
    assert "0 warm load(s), 1 cold build(s), 1 save(s)" in first
    # Restarted server: same query answered from the on-disk artifact.
    monkeypatch.setattr("sys.stdin", io.StringIO(sql + "\\quit\n"))
    assert main(["serve", "--artifacts", store]) == 0
    second = capsys.readouterr().out
    assert "1 warm load(s), 0 cold build(s)" in second

    def plan_lines(out: str) -> list[str]:
        return [l for l in out.splitlines() if l.startswith(("scan", " ", "sort"))]

    assert plan_lines(first) == plan_lines(second)


def test_serve_reports_cache_sources(capsys, monkeypatch):
    import io

    lines = (
        "select * from persons, jobs where persons.jobid = jobs.id "
        "and persons.name = 'alice' order by jobs.id\n"
        "select * from persons, jobs where persons.jobid = jobs.id "
        "and persons.name = 'bob' order by jobs.id\n"
        "\\stats\n"
        "select nothing valid here\n"
        "\\quit\n"
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))
    assert main(["serve"]) == 0
    out = capsys.readouterr().out
    assert "[cold]" in out
    assert "[prepared cache]" in out  # same template, different constant
    assert "error:" in out  # a bad query must not kill the loop
    assert "queries optimized : 2" in out


def test_loadtest_journaled_with_replay_check(capsys, tmp_path):
    journal = str(tmp_path / "journal.jsonl")
    report_json = str(tmp_path / "report.json")
    assert (
        main(
            [
                "loadtest",
                "--procs", "2",
                "--workers", "2",
                "--clients", "3",
                "--queries", "4",
                "--journal", journal,
                "--replay-check",
                "--json", report_json,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "12 request(s)" in out
    assert "12 ok" in out
    assert "plans/s" in out
    assert "router            : 2 worker process(es)" in out
    assert "0 mismatch(es)" in out
    # The journal carries one record per offered request (zero dropped) ...
    from repro.workloads import load_journal

    records = load_journal(journal)
    assert len(records) == 12
    assert all(record.status == "ok" for record in records)
    # ... and the JSON report carries the headline numbers.
    import json

    report = json.loads((tmp_path / "report.json").read_text())
    assert report["requests"] == 12
    assert report["ok"] == 12


def test_loadtest_quota_sheds_with_structured_rejections(capsys):
    assert (
        main(
            [
                "loadtest",
                "--clients", "2",
                "--queries", "4",
                "--quota-burst", "2",
                "--quota-rate", "0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    # Every offered request is accounted for: the over-quota half answers
    # REJECTED(quota), nothing is dropped.
    assert "8 request(s)" in out
    assert "4 ok" in out
    assert "4 rejected (quota=4)" in out
    assert "admission" in out


def test_loadtest_replay_check_requires_a_journal():
    with pytest.raises(SystemExit, match="journal"):
        main(["loadtest", "--clients", "1", "--queries", "1", "--replay-check"])
