"""Golden ``explain analyze`` snapshots for the TPC-H/R workload.

Each query's chosen plan is *executed* by the vectorized engine — and,
when NumPy is installed, the array-kernel engine — over a fixed
catalog-driven synthetic dataset, and the annotated operator tree —
estimates, actual row/batch counts, and sort/no-sort markers — is
snapshotted under ``tests/golden/<name>.analyze.txt`` (vector) and
``tests/golden/<name>.numpy.analyze.txt``.  Any change that moves an
execution (an operator rewrite, a data-generation tweak, a counter bug)
fails with a diff:

    PYTHONPATH=src python -m pytest tests/workloads/test_golden_analyze.py \
        --update-golden

rewrites the snapshots, landing the drift in the change's own diff.

Determinism: the dataset generator is seeded per (seed, alias, column),
plan choice is covered by the plan-snapshot suite, and the counters are a
pure function of plan + data + batch size.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.exec import (
    NUMPY_AVAILABLE,
    ExecutionConfig,
    RowEngine,
    generate_dataset,
    make_engine,
    render_analyze,
)
from repro.plangen import FsmBackend, PlanGenerator
from repro.workloads import ALL_TPCH_QUERIES

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

ROWS_PER_TABLE = 60
SEED = 7
BATCH_SIZE = 16

SNAPSHOT_ENGINES = ("vector", "numpy") if NUMPY_AVAILABLE else ("vector",)


def golden_path(name: str, engine_name: str) -> Path:
    """Vector snapshots keep their historical name; other engines tag it."""
    suffix = "" if engine_name == "vector" else f".{engine_name}"
    return GOLDEN_DIR / f"{name}{suffix}.analyze.txt"


def analyzed_snapshot(
    name: str, engine_name: str = "vector"
) -> tuple[str, object, object, object, object]:
    """(snapshot text, spec, plan, dataset, result) for one workload query."""
    spec = ALL_TPCH_QUERIES[name]()
    plan = PlanGenerator(spec, FsmBackend()).run().best_plan
    dataset = generate_dataset(spec, rows_per_table=ROWS_PER_TABLE, seed=SEED)
    engine = make_engine(
        engine_name,
        ExecutionConfig(batch_size=BATCH_SIZE, check_merge_inputs=True),
    )
    result = engine.execute(plan, spec, dataset)
    header = (
        f"# golden explain-analyze for {spec.name}\n"
        f"# engine={engine_name} rows_per_table={ROWS_PER_TABLE} seed={SEED} "
        f"batch_size={BATCH_SIZE}\n"
        f"# regenerate: PYTHONPATH=src python -m pytest "
        f"tests/workloads/test_golden_analyze.py --update-golden"
    )
    text = render_analyze(result, header=header) + "\n"
    return text, spec, plan, dataset, result


@pytest.mark.parametrize("engine_name", SNAPSHOT_ENGINES)
@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_golden_explain_analyze(name: str, engine_name: str, update_golden: bool):
    snapshot, _, _, _, _ = analyzed_snapshot(name, engine_name)
    path = golden_path(name, engine_name)
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(snapshot)
        return
    assert path.exists(), (
        f"no golden explain-analyze snapshot for {name} ({engine_name}); "
        "create it with --update-golden"
    )
    golden = path.read_text()
    if snapshot != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                snapshot.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="freshly executed",
                lineterm="",
            )
        )
        pytest.fail(
            f"explain-analyze drift for {name} ({engine_name}) — if "
            f"intended, rerun with --update-golden and commit the change:\n"
            f"{diff}"
        )


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy not installed")
@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_numpy_engine_matches_and_never_sorts_more(name: str):
    """The array engine must answer each workload query identically to the
    vectorized engine and perform no more physical sorts (its join kernels
    consume the build side first, so an empty side short-circuits before
    the other subtree — and its sorts — are ever pulled)."""
    _, spec, plan, dataset, vector = analyzed_snapshot(name, "vector")
    _, _, _, _, numpy_result = analyzed_snapshot(name, "numpy")
    assert numpy_result.multiset() == vector.multiset()
    assert numpy_result.stats.sorts <= vector.stats.sorts


@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_row_engine_matches_the_golden_execution(name: str):
    """The snapshots double as a differential anchor: the reference row
    engine must produce the identical result multiset on the same data."""
    _, spec, plan, dataset, vector = analyzed_snapshot(name)
    config = ExecutionConfig(check_merge_inputs=True)
    row = RowEngine(config).execute(plan, spec, dataset)
    assert row.multiset() == vector.multiset()
    # The row engine executes every node; the streaming engine never pulls
    # (and so never sorts) a subtree below a join whose other side is empty.
    assert vector.stats.sorts <= row.stats.sorts
