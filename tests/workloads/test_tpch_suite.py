"""Integration tests: the full TPC-H/R query suite through both order
frameworks (shape of the paper's Section 7 experiment on more workloads)."""

import pytest

from repro.plangen import FsmBackend, PlanGenerator, SimmenBackend
from repro.query.joingraph import JoinGraph
from repro.workloads import ALL_TPCH_QUERIES, q5_query


@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
class TestTpchQueries:
    def test_query_is_connected(self, name):
        spec = ALL_TPCH_QUERIES[name]()
        graph = JoinGraph(spec)
        assert graph.connected(graph.all_mask)

    def test_both_backends_same_optimal_cost(self, name):
        spec = ALL_TPCH_QUERIES[name]()
        fsm = PlanGenerator(spec, FsmBackend()).run()
        simmen = PlanGenerator(spec, SimmenBackend()).run()
        assert fsm.best_plan.cost == pytest.approx(simmen.best_plan.cost)

    def test_fsm_generates_fewer_or_equal_plans(self, name):
        spec = ALL_TPCH_QUERIES[name]()
        fsm = PlanGenerator(spec, FsmBackend()).run()
        simmen = PlanGenerator(spec, SimmenBackend()).run()
        assert fsm.stats.plans_created <= simmen.stats.plans_created
        # per-plan annotations are always smaller (4 bytes/plan); the *total*
        # includes the fixed DFSM tables, which only amortize on queries with
        # sizable plan tables (q5/q8 — asserted there by the benchmarks)
        assert fsm.stats.state_bytes < simmen.stats.state_bytes

    def test_order_by_satisfied(self, name):
        spec = ALL_TPCH_QUERIES[name]()
        if spec.order_by is None:
            pytest.skip("query has no ORDER BY")
        backend = FsmBackend()
        result = PlanGenerator(spec, backend).run()
        assert backend.satisfies(result.best_plan.state, spec.order_by)


def test_q5_join_graph_has_a_cycle():
    """Q5's nation equality closes a cycle — the densest standard query."""
    graph = JoinGraph(q5_query())
    assert len(graph.edges) == 6
    assert graph.n == 6  # 6 edges over 6 nodes => cyclic
