"""The replayable load harness: SQL round-trips, deterministic streams,
JSONL journals, closed-loop load runs, and bit-for-bit replay."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Catalog, simple_table
from repro.core.attributes import Attribute
from repro.core.ordering import Ordering
from repro.query.predicates import JoinPredicate
from repro.query.query import AggregateSpec, QuerySpec, RelationRef, make_query
from repro.query.sql import sql_to_query
from repro.service import PoolFrontend, canonical_query_key, template_signature
from repro.workloads import (
    GeneratorConfig,
    JournalRecord,
    load_journal,
    replay_journal,
    run_load,
    skewed_client_streams,
    skewed_sql_streams,
    spec_to_sql,
    write_journal,
)


def tiny_streams(clients: int = 3, queries: int = 4):
    return skewed_sql_streams(
        clients,
        queries,
        n_templates=3,
        repeats=4,
        base_config=GeneratorConfig(n_relations=3),
        seed=7,
    )


# -- SQL round-trip ------------------------------------------------------------


def test_spec_to_sql_round_trips_the_canonical_key():
    """Rendering a generated spec to SQL and parsing it back binds to the
    same canonical plan-cache key — the property that makes a journaled
    request line a faithful stand-in for the spec it came from."""
    streams = skewed_client_streams(
        2,
        6,
        n_templates=3,
        repeats=3,
        base_config=GeneratorConfig(n_relations=4),
        seed=3,
    )
    seen = set()
    for stream in streams:
        for spec in stream:
            line = spec_to_sql(spec)
            if line in seen:
                continue
            seen.add(line)
            rebound = sql_to_query(line, spec.catalog)
            # Component [0] of the key is the catalog's identity; the rest
            # (relations, predicates, orderings) must match exactly.
            assert canonical_query_key(rebound)[1:] == canonical_query_key(spec)[1:]
    assert len(seen) >= 3  # the sample really covered multiple templates


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_grouped_spec_to_sql_round_trips_the_canonical_key(data):
    """Property (regression): grouped specs — GROUP BY, aggregates, an
    ORDER BY covered by the grouping — render to SQL that binds back to
    the same canonical plan-cache key.  ``spec_to_sql`` used to emit
    ``SELECT *`` for aggregated specs, silently dropping the aggregate
    list on the round trip."""
    catalog = (
        Catalog()
        .add(simple_table("t", ["a", "k"], 500, clustered_on="a"))
        .add(simple_table("u", ["b", "v"], 500))
    )
    columns = [
        Attribute("a", "t"),
        Attribute("k", "t"),
        Attribute("b", "u"),
        Attribute("v", "u"),
    ]
    group_by = tuple(
        data.draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=3, unique=True)
        )
    )
    functions = st.sampled_from(["count", "sum", "min", "max", "avg"])
    aggregates = []
    for function in data.draw(st.lists(functions, min_size=0, max_size=4)):
        argument = (
            None if function == "count" else data.draw(st.sampled_from(columns))
        )
        aggregates.append(AggregateSpec(function, argument))
    order_len = data.draw(st.integers(min_value=0, max_value=len(group_by)))
    order_by = Ordering(group_by[:order_len]) if order_len else None
    spec = make_query(
        catalog,
        ["t", "u"],
        [JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))],
        group_by=group_by,
        order_by=order_by,
        aggregates=tuple(aggregates),
        name="grouped-roundtrip",
    )
    rebound = sql_to_query(spec_to_sql(spec), catalog)
    assert canonical_query_key(rebound)[1:] == canonical_query_key(spec)[1:]


def test_spec_to_sql_rejects_what_sql_cannot_carry():
    catalog = Catalog().add(simple_table("t", ["a"], 100))
    spec = QuerySpec(
        name="q",
        catalog=catalog,
        relations=(RelationRef("t"),),
        joins=(),
        join_selectivities={("t", "t"): 0.5},
    )
    with pytest.raises(ValueError, match="selectivity"):
        spec_to_sql(spec)


# -- stream generation ---------------------------------------------------------


def test_skewed_sql_streams_are_deterministic():
    catalog_a, streams_a = tiny_streams()
    catalog_b, streams_b = tiny_streams()
    assert streams_a == streams_b
    assert sorted(catalog_a.tables) == sorted(catalog_b.tables)
    _, different = skewed_sql_streams(
        3,
        4,
        n_templates=3,
        repeats=4,
        base_config=GeneratorConfig(n_relations=3),
        seed=8,
    )
    assert different != streams_a


def test_skewed_streams_follow_the_zipf_head():
    """With skew=1.0 the Zipf head template carries ~1/H share of the
    traffic; the top template must clearly dominate a uniform spread."""
    _, streams = skewed_sql_streams(
        8,
        25,
        n_templates=4,
        skew=1.0,
        repeats=8,
        base_config=GeneratorConfig(n_relations=3),
        seed=0,
    )
    counts: dict[str, int] = {}
    total = 0
    for stream in streams:
        for line in stream:
            signature = template_signature(line)
            counts[signature] = counts.get(signature, 0) + 1
            total += 1
    assert total == 8 * 25
    top_share = max(counts.values()) / total
    assert top_share >= 0.30  # uniform over 4 templates would give 0.25
    assert len(counts) >= 2  # but the tail is present too


def test_streams_parse_against_the_merged_catalog():
    catalog, streams = tiny_streams()
    for line in {line for stream in streams for line in stream}:
        spec = sql_to_query(line, catalog)
        assert spec.relations


# -- the journal ---------------------------------------------------------------


def test_journal_round_trips_through_jsonl(tmp_path):
    records = [
        JournalRecord(0, "client-0", "select 1", "ok", "plan\n-- cost 5", 1.25),
        JournalRecord(1, "client-1", "select broken", "error", "error: no", 0.5),
        JournalRecord(2, "client-1", "select 2", "rejected", "REJECTED(quota)", 0.1),
    ]
    path = tmp_path / "journal.jsonl"
    write_journal(path, records)
    loaded = load_journal(path)
    assert [
        (r.seq, r.client, r.request, r.status, r.response) for r in loaded
    ] == [(r.seq, r.client, r.request, r.status, r.response) for r in records]


def test_journal_rejects_unknown_statuses():
    line = JournalRecord(0, "c", "q", "ok", "r", 0.0).to_json()
    with pytest.raises(ValueError, match="status"):
        JournalRecord.from_json(line.replace('"ok"', '"lost"'))


# -- the load harness and replay -----------------------------------------------


def test_run_load_accounts_for_every_offered_request(tmp_path):
    catalog, streams = tiny_streams()
    path = tmp_path / "run.jsonl"
    with PoolFrontend(catalog, n_shards=2) as frontend:
        report = run_load(frontend, streams, journal_path=path)
    offered = sum(len(stream) for stream in streams)
    assert report.requests == offered  # zero dropped, by construction
    assert report.ok == offered
    assert report.errors == 0 and report.rejected_total == 0
    assert report.p50_ms > 0.0 and report.p99_ms >= report.p50_ms
    assert report.plans_per_sec > 0.0
    assert "ok" in report.describe()
    assert report.to_dict()["requests"] == offered
    assert report.client_p99("client-0") > 0.0
    # Client-major deterministic ordering: seq is dense, clients grouped.
    records = load_journal(path)
    assert [record.seq for record in records] == list(range(offered))
    assert [record.client for record in records] == sorted(
        (record.client for record in records),
        key=lambda name: int(name.rsplit("-", 1)[1]),
    )


def test_two_runs_journal_identically_modulo_latency(tmp_path):
    catalog, streams = tiny_streams()

    def run(tag: str):
        path = tmp_path / f"{tag}.jsonl"
        with PoolFrontend(catalog, n_shards=2) as frontend:
            run_load(frontend, streams, journal_path=path)
        return [
            (r.seq, r.client, r.request, r.status, r.response)
            for r in load_journal(path)
        ]

    assert run("first") == run("second")


def test_replay_reproduces_a_recorded_run_bit_for_bit(tmp_path):
    catalog, streams = tiny_streams()
    path = tmp_path / "journal.jsonl"
    with PoolFrontend(catalog, n_shards=2) as frontend:
        run_load(frontend, streams, journal_path=path)
    # A *fresh* frontend (cold caches, different sharding) must answer the
    # byte-identical bodies.
    with PoolFrontend(catalog, n_shards=1) as fresh:
        replay = replay_journal(fresh, path)
    assert replay.exact
    assert replay.replayed == sum(len(stream) for stream in streams)
    assert replay.matched == replay.replayed
    assert "0 mismatch(es)" in replay.describe()


def test_replay_skips_rejections_and_reports_mismatches():
    catalog, streams = tiny_streams(clients=1, queries=1)
    with PoolFrontend(catalog, n_shards=1) as frontend:
        true_reply = frontend.ask(streams[0][0])
        records = [
            JournalRecord(0, "c", streams[0][0], "ok", true_reply.body, 1.0),
            JournalRecord(1, "c", "whatever", "rejected", "REJECTED(quota)", 0.1),
            JournalRecord(2, "c", streams[0][0], "ok", "the wrong answer", 1.0),
        ]
        report = replay_journal(frontend, records)
    assert report.skipped_rejected == 1
    assert report.replayed == 2
    assert report.matched == 1
    assert not report.exact
    assert len(report.mismatches) == 1
    assert "seq 2" in report.mismatches[0]
