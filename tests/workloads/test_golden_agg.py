"""Golden ``explain analyze`` snapshots for the *aggregated* TPC-H/R plans.

The plain analyze snapshots (``test_golden_analyze.py``) plan with the
library default config, where aggregation is off and a GROUP BY only
shapes the interesting orders.  This suite plans the same queries with
``enable_aggregation=True`` — the service-stack default since the GROUP
BY surface landed — so the chosen plans carry real stream-/hash-aggregate
operators, and snapshots their executed operator trees per engine under
``tests/golden/<name>.agg.analyze.txt`` (vector) and
``tests/golden/<name>.<engine>.agg.analyze.txt``.

    PYTHONPATH=src python -m pytest tests/workloads/test_golden_agg.py \
        --update-golden

rewrites the snapshots, landing any drift in the change's own diff.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.exec import (
    NUMPY_AVAILABLE,
    ExecutionConfig,
    RowEngine,
    generate_dataset,
    make_engine,
    render_analyze,
)
from repro.plangen import FsmBackend, PlanGenConfig, PlanGenerator
from repro.plangen.plan import HASH_AGGREGATE, STREAM_AGGREGATE
from repro.workloads import ALL_TPCH_QUERIES

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

ROWS_PER_TABLE = 60
SEED = 7
BATCH_SIZE = 16

AGG_CONFIG = PlanGenConfig(enable_aggregation=True)

SNAPSHOT_ENGINES = (
    ("vector", "numpy", "parallel-vector") if NUMPY_AVAILABLE else ("vector",)
)


def golden_path(name: str, engine_name: str) -> Path:
    suffix = "" if engine_name == "vector" else f".{engine_name}"
    return GOLDEN_DIR / f"{name}{suffix}.agg.analyze.txt"


def analyzed_snapshot(name: str, engine_name: str = "vector"):
    """(snapshot text, spec, plan, dataset, result) for one grouped query."""
    spec = ALL_TPCH_QUERIES[name]()
    plan = PlanGenerator(spec, FsmBackend(), config=AGG_CONFIG).run().best_plan
    dataset = generate_dataset(spec, rows_per_table=ROWS_PER_TABLE, seed=SEED)
    workers = 2 if engine_name.startswith("parallel-") else 1
    engine = make_engine(
        engine_name,
        ExecutionConfig(
            batch_size=BATCH_SIZE,
            check_merge_inputs=True,
            workers=workers,
            morsel_size=16,
            parallel_mode="thread",
        ),
    )
    result = engine.execute(plan, spec, dataset)
    header = (
        f"# golden aggregated explain-analyze for {spec.name}\n"
        f"# engine={engine_name} rows_per_table={ROWS_PER_TABLE} seed={SEED} "
        f"batch_size={BATCH_SIZE}\n"
        f"# regenerate: PYTHONPATH=src python -m pytest "
        f"tests/workloads/test_golden_agg.py --update-golden"
    )
    text = render_analyze(result, header=header) + "\n"
    return text, spec, plan, dataset, result


@pytest.mark.parametrize("engine_name", SNAPSHOT_ENGINES)
@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_golden_aggregated_analyze(name: str, engine_name: str, update_golden: bool):
    snapshot, _, plan, _, _ = analyzed_snapshot(name, engine_name)
    assert any(
        node.op in (STREAM_AGGREGATE, HASH_AGGREGATE) for node in plan.operators()
    ), f"{name} planned without an aggregate operator"
    path = golden_path(name, engine_name)
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(snapshot)
        return
    assert path.exists(), (
        f"no golden aggregated snapshot for {name} ({engine_name}); "
        "create it with --update-golden"
    )
    golden = path.read_text()
    if snapshot != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                snapshot.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="freshly executed",
                lineterm="",
            )
        )
        pytest.fail(
            f"aggregated analyze drift for {name} ({engine_name}) — if "
            f"intended, rerun with --update-golden and commit the change:\n"
            f"{diff}"
        )


@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_row_engine_matches_the_aggregated_golden(name: str):
    """Differential anchor: the reference row engine answers each grouped
    plan with the *identical ordered row list* (aggregation output order
    is deterministic, so multiset equality would be too weak)."""
    _, spec, plan, dataset, vector = analyzed_snapshot(name)
    row = RowEngine(ExecutionConfig(check_merge_inputs=True)).execute(
        plan, spec, dataset
    )
    assert row.rows() == vector.rows()
