"""Golden-plan regression snapshots for the TPC-H/R workload.

Every query in ``workloads/tpch_queries.py`` has its chosen plan (operator
tree + exact cost) serialized under ``tests/golden/``.  Any change that
moves a plan — a cost-model tweak, a pruning bug, a backend change — fails
here with a diff, so plan drift is always an explicit, reviewed decision:

    PYTHONPATH=src python -m pytest tests/workloads/test_golden_plans.py \
        --update-golden

rewrites the snapshots; the updated files land in the diff of the change
that moved the plans, which is the whole point.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.plangen import FsmBackend, PlanGenerator, SimmenBackend
from repro.workloads import ALL_TPCH_QUERIES

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def render_snapshot(spec, result) -> str:
    """Serialize a chosen plan: exact cost (repr — every bit), then tree."""
    return (
        f"# golden plan for {spec.name}\n"
        f"# regenerate: PYTHONPATH=src python -m pytest "
        f"tests/workloads/test_golden_plans.py --update-golden\n"
        f"cost {result.best_plan.cost!r}\n"
        f"{result.best_plan.explain()}\n"
    )


@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_golden_plan(name: str, update_golden: bool):
    spec = ALL_TPCH_QUERIES[name]()
    result = PlanGenerator(spec, FsmBackend()).run()
    snapshot = render_snapshot(spec, result)
    path = GOLDEN_DIR / f"{name}.txt"
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(snapshot)
        return
    assert path.exists(), (
        f"no golden snapshot for {name}; create it with --update-golden"
    )
    golden = path.read_text()
    if snapshot != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                snapshot.splitlines(),
                fromfile=f"golden/{name}.txt",
                tofile="freshly planned",
                lineterm="",
            )
        )
        pytest.fail(
            f"plan drift for {name} — if intended, rerun with "
            f"--update-golden and commit the change:\n{diff}"
        )


@pytest.mark.parametrize("name", sorted(ALL_TPCH_QUERIES))
def test_simmen_matches_the_golden_cost(name: str):
    """The snapshots double as a differential anchor: the baseline backend
    must reproduce the golden cost exactly (plan *shape* may differ when
    costs tie, so only the cost line is compared)."""
    path = GOLDEN_DIR / f"{name}.txt"
    assert path.exists(), f"no golden snapshot for {name}"
    golden_cost = float(path.read_text().splitlines()[2].removeprefix("cost "))
    spec = ALL_TPCH_QUERIES[name]()
    result = PlanGenerator(spec, SimmenBackend()).run()
    assert result.best_plan.cost == pytest.approx(golden_cost, rel=1e-9)
