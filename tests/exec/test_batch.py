"""Unit tests for the columnar Batch container."""

import pytest

from repro.core.attributes import Attribute
from repro.exec.batch import (
    Batch,
    batches_to_rows,
    concat_batches,
    rows_to_batches,
)

A, B = Attribute("a", "t"), Attribute("b", "t")


def rows_of(values):
    return [{A: v, B: -v} for v in values]


class TestBatchBasics:
    def test_from_rows_roundtrip(self):
        rows = rows_of([1, 2, 3])
        batch = Batch.from_rows(rows)
        assert batch.length == len(batch) == 3
        assert batch.column(A) == [1, 2, 3]
        assert batch.column(B) == [-1, -2, -3]
        assert batch.to_rows() == rows
        assert list(batch.iter_rows()) == rows

    def test_empty(self):
        batch = Batch.from_rows([])
        assert batch.length == 0
        assert batch.to_rows() == []

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            Batch({A: [1, 2], B: [1]})

    def test_unknown_column(self):
        with pytest.raises(KeyError, match="no column"):
            Batch.from_rows(rows_of([1])).column(Attribute("zz", "t"))

    def test_take_gathers_by_position(self):
        batch = Batch.from_rows(rows_of([10, 20, 30, 40]))
        taken = batch.take([3, 0, 0])
        assert taken.column(A) == [40, 10, 10]
        assert taken.length == 3

    def test_take_does_not_alias_source_lists(self):
        batch = Batch.from_rows(rows_of([1, 2]))
        taken = batch.take([0, 1])
        taken.columns[A][0] = 99
        assert batch.column(A) == [1, 2]

    def test_slice_clamps(self):
        batch = Batch.from_rows(rows_of([1, 2, 3]))
        assert batch.slice(1, 99).column(A) == [2, 3]
        assert batch.slice(-5, 1).column(A) == [1]
        assert batch.slice(3, 5).length == 0

    def test_key_tuples(self):
        batch = Batch.from_rows(rows_of([1, 2]))
        assert batch.key_tuples([A, B]) == [(1, -1), (2, -2)]
        assert batch.key_tuples([]) == [(), ()]


class TestBatchHelpers:
    def test_concat(self):
        a = Batch.from_rows(rows_of([1, 2]))
        b = Batch.from_rows(rows_of([3]))
        merged = concat_batches([a, Batch.from_rows([]), b])
        assert merged.column(A) == [1, 2, 3]

    def test_concat_empty(self):
        assert concat_batches([]).length == 0

    def test_concat_mismatched_columns_rejected(self):
        a = Batch.from_rows(rows_of([1]))
        b = Batch.from_rows([{A: 1}])
        with pytest.raises(ValueError, match="different columns"):
            concat_batches([a, b])

    def test_rows_to_batches_chunks(self):
        rows = rows_of(range(7))
        chunks = list(rows_to_batches(rows, 3))
        assert [c.length for c in chunks] == [3, 3, 1]
        assert batches_to_rows(chunks) == rows

    def test_rows_to_batches_rejects_bad_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(rows_to_batches(rows_of([1]), 0))

    def test_rows_to_batches_empty_input_yields_nothing(self):
        assert list(rows_to_batches([], 4)) == []
        assert batches_to_rows([]) == []

    def test_rows_to_batches_size_one(self):
        rows = rows_of([5, 6, 7])
        chunks = list(rows_to_batches(rows, 1))
        assert [c.length for c in chunks] == [1, 1, 1]
        assert batches_to_rows(chunks) == rows
