"""Unit tests for the iterator operators."""

import random

import pytest

from repro.core.attributes import Attribute, attrs
from repro.core.ordering import ordering
from repro.exec.iterators import (
    MergeInputNotSortedError,
    hash_join,
    merge_join,
    nested_loop_join,
    select_rows,
    sort_rows,
)

A, B = Attribute("a", "t"), Attribute("b", "u")


def t_rows(values):
    return [{A: v} for v in values]


def u_rows(values):
    return [{B: v} for v in values]


class TestSortAndSelect:
    def test_sort_rows(self):
        rows = t_rows([3, 1, 2])
        assert [r[A] for r in sort_rows(rows, ordering("t.a"))] == [1, 2, 3]

    def test_sort_is_stable(self):
        x = Attribute("x", "t")
        rows = [{A: 1, x: "first"}, {A: 1, x: "second"}]
        result = sort_rows(rows, ordering("t.a"))
        assert [r[x] for r in result] == ["first", "second"]

    def test_select_rows(self):
        rows = t_rows([1, 2, 3, 4])
        assert select_rows(rows, lambda r: r[A] % 2 == 0) == t_rows([2, 4])


class TestJoins:
    def reference(self, left, right):
        return nested_loop_join(left, right, lambda l, r: l[A] == r[B])

    def as_multiset(self, rows):
        return sorted(tuple(sorted((str(k), v) for k, v in row.items())) for row in rows)

    def test_nested_loop_basic(self):
        result = self.reference(t_rows([1, 2]), u_rows([2, 3]))
        assert result == [{A: 2, B: 2}]

    def test_hash_join_matches_reference(self):
        rng = random.Random(1)
        left = t_rows([rng.randrange(5) for _ in range(40)])
        right = u_rows([rng.randrange(5) for _ in range(30)])
        expected = self.as_multiset(self.reference(left, right))
        got = self.as_multiset(hash_join(left, right, A, B))
        assert got == expected

    def test_merge_join_matches_reference_with_duplicates(self):
        rng = random.Random(2)
        left = sort_rows(t_rows([rng.randrange(4) for _ in range(50)]), ordering("t.a"))
        right = sort_rows(u_rows([rng.randrange(4) for _ in range(35)]), ordering("u.b"))
        expected = self.as_multiset(self.reference(left, right))
        got = self.as_multiset(merge_join(left, right, A, B))
        assert got == expected

    def test_merge_join_preserves_left_order(self):
        left = sort_rows(t_rows([1, 1, 2, 3, 3]), ordering("t.a"))
        right = sort_rows(u_rows([1, 2, 3]), ordering("u.b"))
        result = merge_join(left, right, A, B)
        assert [r[A] for r in result] == [1, 1, 2, 3, 3]

    def test_hash_join_preserves_left_order(self):
        left = t_rows([3, 1, 2, 1])
        right = u_rows([1, 2, 3])
        result = hash_join(left, right, A, B)
        assert [r[A] for r in result] == [3, 1, 2, 1]

    def test_residual_predicate(self):
        x = Attribute("x", "t")
        y = Attribute("y", "u")
        left = [{A: 1, x: 1}, {A: 1, x: 2}]
        right = [{B: 1, y: 1}]
        residual = lambda l, r: l[x] == r[y]
        assert len(hash_join(left, right, A, B, residual)) == 1
        assert len(merge_join(left, right, A, B, residual)) == 1

    def test_empty_inputs(self):
        assert merge_join([], u_rows([1]), A, B) == []
        assert hash_join(t_rows([1]), [], A, B) == []


class TestMergeJoinSortedGuard:
    """Regression: an unsorted merge-join input silently produced a wrong
    result; with ``check_sorted=True`` it raises instead."""

    def test_unsorted_input_silently_drops_matches_without_guard(self):
        # [2, 1, 2] against [1, 2, 2]: the true result has 5 matches, but the
        # two-pointer merge skips past key 1 after seeing 2 first.
        left = t_rows([2, 1, 2])
        right = u_rows([1, 2, 2])
        reference = nested_loop_join(left, right, lambda l, r: l[A] == r[B])
        silent = merge_join(left, right, A, B)
        assert len(reference) == 5
        assert len(silent) < len(reference)  # the silent wrong answer

    def test_guard_raises_on_unsorted_left(self):
        with pytest.raises(MergeInputNotSortedError, match="left.*not sorted"):
            merge_join(t_rows([2, 1, 2]), u_rows([1, 2]), A, B, check_sorted=True)

    def test_guard_raises_on_unsorted_right(self):
        with pytest.raises(MergeInputNotSortedError, match="right.*not sorted"):
            merge_join(t_rows([1, 2]), u_rows([2, 1]), A, B, check_sorted=True)

    def test_guard_passes_sorted_inputs_through(self):
        left, right = t_rows([1, 2, 2]), u_rows([1, 1, 2])
        assert merge_join(left, right, A, B, check_sorted=True) == merge_join(
            left, right, A, B
        )
