"""Engine-contract tests: every engine answers every query identically.

The centerpiece is the **differential grid**: every join-graph topology ×
every enumeration strategy × both preparation modes, each plan executed by
the row-dict reference oracle, the vectorized streaming engine, and (when
NumPy is installed) the array-kernel engine, with bit-identical result
multisets required throughout.
"""

import os

import pytest

from repro.core.ordering import Ordering
from repro.exec import (
    NUMPY_AVAILABLE,
    ExecutionConfig,
    NumpyEngine,
    ParallelNumpyEngine,
    ParallelVectorEngine,
    RowEngine,
    VectorEngine,
    default_engine_name,
    forced_sort_variant,
    generate_dataset,
    make_engine,
    render_analyze,
    satisfies_ordering,
)
from repro.exec.data import Dataset, as_dataset, generate_query_data
from repro.plangen import FsmBackend, PlanGenConfig, PlanGenerator, SimmenBackend
from repro.plangen.plan import PlanNode, SCAN
from repro.workloads import TOPOLOGIES, GeneratorConfig, random_join_query, topology_query


def plan_for(spec, backend=None, config=PlanGenConfig()):
    return PlanGenerator(spec, backend or FsmBackend(), config=config).run().best_plan


def both_engines(batch_size=16):
    config = ExecutionConfig(batch_size=batch_size, check_merge_inputs=True)
    return RowEngine(config), VectorEngine(config)


def all_engines(batch_size=16):
    """Named (name, engine) pairs: the row reference first, then every
    other engine available in this environment.

    The parallel engines run in thread mode with a tiny morsel size so the
    differential grid exercises real multi-morsel scheduling (boundaries
    inside batches, inside duplicate key groups) deterministically and
    in-process."""
    config = ExecutionConfig(batch_size=batch_size, check_merge_inputs=True)
    parallel_config = ExecutionConfig(
        batch_size=batch_size,
        check_merge_inputs=True,
        workers=2,
        morsel_size=5,
        parallel_mode="thread",
    )
    engines = [
        ("row", RowEngine(config)),
        ("vector", VectorEngine(config)),
        ("parallel-vector", ParallelVectorEngine(parallel_config)),
    ]
    if NUMPY_AVAILABLE:
        engines.append(("numpy", NumpyEngine(config)))
        engines.append(("parallel-numpy", ParallelNumpyEngine(parallel_config)))
    return engines


class TestEngineContract:
    def test_engines_agree_on_a_random_query(self):
        spec = random_join_query(GeneratorConfig(n_relations=4, n_edges=4, seed=1))
        dataset = generate_dataset(spec, rows_per_table=30, default_domain=6, seed=1)
        plan = plan_for(spec)
        row_engine, vector_engine = both_engines()
        row = row_engine.execute(plan, spec, dataset)
        vector = vector_engine.execute(plan, spec, dataset)
        assert row.multiset() == vector.multiset()
        assert row.row_count == vector.row_count
        assert vector.stats.sorts <= row.stats.sorts

    def test_row_data_dict_is_accepted(self):
        """The legacy dict-of-row-lists data representation still works."""
        spec = random_join_query(GeneratorConfig(n_relations=3, seed=2))
        data = generate_query_data(spec, rows_per_table=12, domain=4, seed=2)
        plan = plan_for(spec)
        row_engine, vector_engine = both_engines()
        assert (
            row_engine.execute(plan, spec, data).multiset()
            == vector_engine.execute(plan, spec, data).multiset()
        )

    def test_unknown_operator_rejected_by_both(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=0))
        dataset = generate_dataset(spec, rows_per_table=5, seed=0)
        bogus = PlanNode("teleport", 1, state=None, cost=0.0, cardinality=0.0)
        for engine in both_engines():
            with pytest.raises(ValueError, match="cannot execute"):
                engine.execute(bogus, spec, dataset)

    def test_counters_account_every_operator(self):
        spec = random_join_query(GeneratorConfig(n_relations=3, seed=3))
        dataset = generate_dataset(spec, rows_per_table=20, default_domain=5, seed=3)
        plan = plan_for(spec)
        for engine in both_engines():
            result = engine.execute(plan, spec, dataset)
            assert set(result.stats.nodes) == {id(n) for n in plan.operators()}
            root = result.stats.nodes[id(plan)]
            assert root.rows == result.row_count
            by_op = result.stats.by_operator()
            assert by_op[SCAN]["rows"] >= 0
            assert result.stats.sorts == sum(
                e["sorts"] for e in by_op.values()
            )

    def test_vector_engine_batches_respect_batch_size_roughly(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=4))
        dataset = generate_dataset(spec, rows_per_table=50, default_domain=5, seed=4)
        plan = plan_for(spec)
        result = VectorEngine(ExecutionConfig(batch_size=8)).execute(
            plan, spec, dataset
        )
        scans = [
            c for c in result.stats.nodes.values() if c.op in ("scan", "index_scan")
        ]
        for counters in scans:
            assert counters.batches >= counters.rows // 8

    def test_render_analyze_mentions_actuals_and_sort_markers(self):
        spec = random_join_query(GeneratorConfig(n_relations=3, seed=5))
        spec.order_by = Ordering([spec.joins[0].left])
        dataset = generate_dataset(spec, rows_per_table=15, default_domain=4, seed=5)
        plan = plan_for(spec)
        _, vector_engine = both_engines()
        text = render_analyze(
            vector_engine.execute(plan, spec, dataset), header="analyze:"
        )
        assert "actual: rows=" in text
        assert "no-sort" in text
        assert "physical sort(s)" in text

    def test_make_engine_and_env_default(self, monkeypatch):
        assert make_engine("row").name == "row"
        assert make_engine("vector").name == "vector"
        with pytest.raises(ValueError, match="unknown execution engine"):
            make_engine("turbo")
        monkeypatch.delenv("REPRO_EXEC_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        assert default_engine_name() == "vector"
        monkeypatch.setenv("REPRO_EXEC_ENGINE", "row")
        assert make_engine().name == "row"
        monkeypatch.setenv("REPRO_EXEC_ENGINE", "warp")
        with pytest.raises(ValueError, match="unknown execution engine"):
            default_engine_name()

    def test_make_engine_numpy_resolution(self, monkeypatch):
        # "numpy" is always a *valid* name; without NumPy it degrades to
        # the vectorized engine with a warning instead of failing.
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        if NUMPY_AVAILABLE:
            assert make_engine("numpy").name == "numpy"
            monkeypatch.setenv("REPRO_EXEC_ENGINE", "numpy")
            assert default_engine_name() == "numpy"
        else:
            with pytest.warns(RuntimeWarning, match="falls back"):
                assert make_engine("numpy").name == "vector"

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            ExecutionConfig(batch_size=0)

    def test_generate_dataset_rejects_bad_sizing(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=7))
        with pytest.raises(ValueError, match="mutually exclusive"):
            generate_dataset(spec, rows_per_table=10, scale=2.0)
        with pytest.raises(ValueError, match="scale must be > 0"):
            generate_dataset(spec, scale=0.0)
        with pytest.raises(ValueError, match="rows_per_table must be >= 0"):
            generate_dataset(spec, rows_per_table=-1)

    def test_dataset_coercion(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=6))
        data = generate_query_data(spec, rows_per_table=4, seed=6)
        dataset = as_dataset(data)
        assert isinstance(dataset, Dataset)
        assert as_dataset(dataset) is dataset
        assert dataset.rows() == data
        assert dataset.row_count() == 8
        with pytest.raises(KeyError, match="no relation"):
            dataset.batch("nope")


class TestNumpyFallbackWarning:
    """The numpy→vector fallback warns once per process, not per resolution."""

    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        from repro.exec import engine as engine_module

        monkeypatch.setattr(engine_module, "NUMPY_AVAILABLE", False)
        monkeypatch.setattr(engine_module, "_numpy_fallback_warned", False)

    def test_fallback_resolves_to_vector_with_a_warning(self):
        from repro.exec.engine import resolve_engine_name

        with pytest.warns(RuntimeWarning, match="falls back"):
            assert resolve_engine_name("numpy") == "vector"

    def test_warning_fires_once_across_repeated_resolutions(self, recwarn):
        from repro.exec.engine import resolve_engine_name

        for _ in range(5):
            assert resolve_engine_name("numpy") == "vector"
        fallback = [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback) == 1

    def test_make_engine_shares_the_once_latch(self, recwarn, monkeypatch):
        # Both entry points (explicit name, env default) funnel through the
        # same per-process latch: a batch run resolving per shard must not
        # print a warning per shard.
        monkeypatch.setenv("REPRO_EXEC_ENGINE", "numpy")
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        assert make_engine("numpy").name == "vector"
        assert default_engine_name() == "vector"
        assert make_engine().name == "vector"
        fallback = [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback) == 1

    def test_other_engines_never_warn(self, recwarn):
        from repro.exec.engine import resolve_engine_name

        assert resolve_engine_name("vector") == "vector"
        assert resolve_engine_name("row") == "row"
        assert not recwarn.list


class TestEngineEdgeCases:
    def setup_method(self):
        self.spec = random_join_query(GeneratorConfig(n_relations=2, seed=9))
        self.dataset = generate_dataset(self.spec, rows_per_table=5, seed=9)

    def test_abstract_engine_refuses(self):
        from repro.exec.engine import ExecutionEngine

        with pytest.raises(NotImplementedError):
            ExecutionEngine().execute(None, self.spec, self.dataset)

    def test_vector_rejects_malformed_sort_and_index_scan(self):
        sort_node = PlanNode(
            "sort", 1, state=None, cost=0.0, cardinality=0.0, ordering=None
        )
        scan_node = PlanNode(
            "index_scan",
            1,
            state=None,
            cost=0.0,
            cardinality=0.0,
            alias=self.spec.aliases[0],
        )
        engine = VectorEngine()
        with pytest.raises(ValueError, match="malformed sort"):
            engine.execute(sort_node, self.spec, self.dataset)
        with pytest.raises(ValueError, match="without ordering"):
            engine.execute(scan_node, self.spec, self.dataset)

    def test_render_analyze_marks_unexecuted_nodes(self):
        plan = plan_for(self.spec)
        engine = VectorEngine()
        result = engine.execute(plan, self.spec, self.dataset)
        extra = PlanNode("scan", 1, state=None, cost=0.0, cardinality=0.0)
        result.plan = forced_sort_variant(extra, Ordering([]))
        result.plan.left = extra
        assert "not executed" in render_analyze(result)

    def test_dataset_and_batch_reprs(self):
        assert "relations" in repr(self.dataset)
        assert "rows" in repr(self.dataset.batch(self.spec.aliases[0]))


class TestDifferentialGrid:
    """The acceptance grid: all topologies × enumerators × prepare modes.

    One dataset per topology; the FSM plan under every (enumerator,
    prepare-mode) combination plus the Simmen baseline plan, all executed
    by every available engine (row reference, vectorized, NumPy) — every
    result multiset must be bit-identical, and the batch engines must
    additionally agree on emission *order*.
    """

    N = 4
    ROWS = 18
    DOMAIN = 5

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_grid(self, topology):
        spec = topology_query(topology, self.N, seed=11)
        spec.order_by = Ordering([spec.joins[0].left])
        dataset = generate_dataset(
            spec, rows_per_table=self.ROWS, default_domain=self.DOMAIN, seed=11
        )
        engines = all_engines(batch_size=7)
        reference = None
        for enumerator in ("dpsub", "dpccp", "greedy"):
            for mode in ("eager", "lazy"):
                plan = plan_for(
                    spec,
                    backend=FsmBackend(prepare_mode=mode),
                    config=PlanGenConfig(enumerator=enumerator),
                )
                label = f"{topology}/{enumerator}/{mode}"
                results = {
                    name: engine.execute(plan, spec, dataset)
                    for name, engine in engines
                }
                row = results["row"]
                for name, result in results.items():
                    assert result.multiset() == row.multiset(), f"{label}:{name}"
                    assert satisfies_ordering(result.rows(), spec.order_by), (
                        f"{label}:{name}"
                    )
                    if name != "row":
                        assert result.stats.sorts <= row.stats.sorts, (
                            f"{label}:{name}"
                        )
                if "numpy" in results:
                    # The array kernels mirror the streaming operators
                    # tuple-for-tuple, not just as multisets.
                    assert results["numpy"].rows() == results["vector"].rows(), (
                        label
                    )
                # The morsel scheduler re-sequences per-morsel outputs, so
                # parallel emission order is the serial order bit-for-bit.
                assert (
                    results["parallel-vector"].rows() == results["vector"].rows()
                ), label
                if "parallel-numpy" in results:
                    assert (
                        results["parallel-numpy"].rows() == results["numpy"].rows()
                    ), label
                if reference is None:
                    reference = row.multiset()
                else:
                    assert row.multiset() == reference, label
        simmen_plan = plan_for(spec, backend=SimmenBackend())
        for name, engine in engines:
            assert (
                engine.execute(simmen_plan, spec, dataset).multiset() == reference
            ), f"{topology}/simmen:{name}"

    def test_forced_sort_variant_is_result_preserving(self):
        spec = topology_query("chain", 3, seed=12)
        dataset = generate_dataset(
            spec, rows_per_table=self.ROWS, default_domain=self.DOMAIN, seed=12
        )
        plan = plan_for(spec)
        ordering = Ordering([spec.joins[0].left])
        forced = forced_sort_variant(plan, ordering)
        engines = all_engines()
        baseline = engines[0][1].execute(plan, spec, dataset).multiset()
        for name, engine in engines:
            result = engine.execute(forced, spec, dataset)
            assert result.multiset() == baseline, name
            assert satisfies_ordering(result.rows(), ordering), name
