"""Morsel-parallel execution: scheduler semantics, config plumbing, and
the concurrency fixes that ride along.

The differential guarantees (parallel ≡ serial, bit for bit) live in the
engine grid (``test_engine.py``) and the property oracle
(``test_props_exec.py``); this module pins the machinery itself — fragment
extraction, the partitioned hash build, worker-side counter aggregation,
the empty-build short-circuit, the process-mode payload shipping, the
engine-name upgrade rules, and the ``Dataset.array_batch`` first-touch
lock.
"""

import pickle
import threading

import pytest

from repro.core.attributes import Attribute
from repro.exec import (
    ENGINES,
    NUMPY_AVAILABLE,
    ExecutionConfig,
    ParallelVectorEngine,
    RowEngine,
    VectorEngine,
    default_engine_name,
    default_worker_count,
    generate_dataset,
    make_engine,
    parallel_engine_name,
    render_analyze,
)
from repro.exec.data import Dataset
from repro.exec.morsel import (
    VectorHashBuild,
    extract_fragment,
    run_morsel,
)
from repro.exec.parallel import (
    _broadcast_payload,
    _morsel_spans,
    _run_morsel_from_file,
    resolve_parallel_mode,
)
from repro.exec.vectorized import build_hash_index
from repro.plangen import FsmBackend, PlanGenConfig, PlanGenerator
from repro.plangen.plan import SCAN, SORT
from repro.workloads import GeneratorConfig, random_join_query, topology_query

if NUMPY_AVAILABLE:
    from repro.exec import ParallelNumpyEngine


def plan_for(spec):
    return PlanGenerator(spec, FsmBackend(), config=PlanGenConfig()).run().best_plan


def parallel_config(**overrides):
    defaults = dict(
        batch_size=16,
        check_merge_inputs=True,
        workers=2,
        morsel_size=5,
        parallel_mode="thread",
    )
    defaults.update(overrides)
    return ExecutionConfig(**defaults)


class TestFragmentExtraction:
    def test_join_spine_over_a_scan(self):
        spec = topology_query("chain", 4, seed=3)
        plan = plan_for(spec)
        fragment = extract_fragment(plan)
        if fragment is None:  # a pure-sort root would have no spine
            pytest.skip("plan has no join spine at the root")
        # The spine is the chain of left children, each a join, and the
        # source is the first non-join below it.
        for i, node in enumerate(fragment.spine):
            assert node.op.endswith("join")
            if i + 1 < len(fragment.spine):
                assert node.left is fragment.spine[i + 1]
        assert fragment.spine[-1].left is fragment.source
        assert not fragment.source.op.endswith("join")
        assert fragment.nodes() == (*fragment.spine, fragment.source)
        assert fragment.source_index == len(fragment.spine)

    def test_non_join_root_has_no_fragment(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=1))
        plan = plan_for(spec)
        for node in plan.operators():
            if node.op in (SCAN, SORT, "index_scan"):
                assert extract_fragment(node) is None

    def test_morsel_spans_cover_exactly(self):
        assert _morsel_spans(0, 5) == []
        assert _morsel_spans(5, 5) == [(0, 5)]
        assert _morsel_spans(12, 5) == [(0, 5), (5, 10), (10, 12)]
        assert _morsel_spans(3, 1000) == [(0, 3)]


class TestVectorHashBuild:
    def test_partitioned_lookup_matches_single_dict_index(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=5))
        dataset = generate_dataset(spec, rows_per_table=40, default_domain=6, seed=5)
        alias = spec.aliases[0]
        batch = dataset.batch(alias)
        key = next(iter(batch.columns))
        flat = build_hash_index(batch, key)
        for n_partitions in (1, 2, 4, 7):
            build = VectorHashBuild(batch, key, n_partitions)
            assert build.batch is batch
            for value in set(batch.column(key)) | {"missing"}:
                assert build.lookup(value) == flat.get(value), (
                    value,
                    n_partitions,
                )

    def test_zero_partitions_clamps_to_one(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=5))
        dataset = generate_dataset(spec, rows_per_table=4, seed=5)
        batch = dataset.batch(spec.aliases[0])
        key = next(iter(batch.columns))
        assert VectorHashBuild(batch, key, 0).n_partitions == 1


class TestSchedulerSemantics:
    def _case(self, seed=7, rows=40):
        spec = topology_query("chain", 3, seed=seed)
        dataset = generate_dataset(spec, rows_per_table=rows, default_domain=5, seed=seed)
        return spec, dataset, plan_for(spec)

    def test_workers_one_is_the_serial_path(self, monkeypatch):
        """At workers=1 the parallel engine never consults the scheduler:
        the fragment extractor is not even called."""
        import repro.exec.parallel as parallel_module

        spec, dataset, plan = self._case()

        def boom(node):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("extract_fragment called at workers=1")

        monkeypatch.setattr(parallel_module, "extract_fragment", boom)
        engine = ParallelVectorEngine(parallel_config(workers=1))
        serial = VectorEngine(ExecutionConfig(batch_size=16, check_merge_inputs=True))
        assert (
            engine.execute(plan, spec, dataset).rows()
            == serial.execute(plan, spec, dataset).rows()
        )

    def test_counters_cover_every_node_and_match_output(self):
        spec, dataset, plan = self._case()
        engine = ParallelVectorEngine(parallel_config())
        result = engine.execute(plan, spec, dataset)
        row = RowEngine(ExecutionConfig()).execute(plan, spec, dataset)
        assert result.multiset() == row.multiset()
        assert set(result.stats.nodes) == {id(n) for n in plan.operators()}
        assert result.stats.nodes[id(plan)].rows == result.row_count
        assert result.stats.workers == 2

    def test_empty_build_short_circuits_like_the_serial_engine(self):
        """A join whose build side comes up empty emits nothing, and the
        probe subtree below it must stay un-executed — same contract as the
        serial hash join, observable through explain-analyze."""
        spec, dataset, plan = self._case()
        # Empty every table: any build side the spine drains is empty.
        empty = Dataset(
            {alias: batch.slice(0, 0) for alias, batch in dataset.tables.items()}
        )
        engine = ParallelVectorEngine(parallel_config())
        result = engine.execute(plan, spec, empty)
        assert result.row_count == 0
        assert "not executed" in render_analyze(result)

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
    def test_numpy_scheduler_agrees_with_vector_scheduler(self):
        spec, dataset, plan = self._case(seed=9)
        vector = ParallelVectorEngine(parallel_config()).execute(plan, spec, dataset)
        numpy = ParallelNumpyEngine(parallel_config()).execute(plan, spec, dataset)
        assert numpy.rows() == vector.rows()

    def test_single_morsel_runs_inline(self):
        """A source smaller than one morsel must not touch any pool."""
        import repro.exec.parallel as parallel_module

        spec, dataset, plan = self._case(rows=4)
        engine = ParallelVectorEngine(parallel_config(morsel_size=10_000))
        before = dict(parallel_module._POOLS)
        result = engine.execute(plan, spec, dataset)
        row = RowEngine(ExecutionConfig()).execute(plan, spec, dataset)
        assert result.multiset() == row.multiset()
        assert parallel_module._POOLS == before

    def test_process_mode_end_to_end(self):
        """The real ProcessPoolExecutor path, payload broadcast included."""
        spec, dataset, plan = self._case()
        engine = ParallelVectorEngine(
            parallel_config(parallel_mode="process", morsel_size=7)
        )
        serial = VectorEngine(ExecutionConfig(batch_size=16, check_merge_inputs=True))
        assert (
            engine.execute(plan, spec, dataset).rows()
            == serial.execute(plan, spec, dataset).rows()
        )


class TestPayloadShipping:
    def _payload(self):
        """A real fragment payload, captured from the scheduler."""
        spec = topology_query("chain", 3, seed=13)
        dataset = generate_dataset(spec, rows_per_table=30, default_domain=5, seed=13)
        plan = plan_for(spec)
        fragment = extract_fragment(plan)
        assert fragment is not None
        engine = ParallelVectorEngine(parallel_config())
        captured = {}

        original = engine._dispatch

        def capture(payload, spans):
            captured["payload"] = payload
            captured["spans"] = spans
            return original(payload, spans)

        engine._dispatch = capture
        engine.execute(plan, spec, dataset)
        return captured["payload"], captured["spans"]

    def test_payload_pickles_and_file_roundtrip_runs(self, monkeypatch):
        import repro.exec.parallel as parallel_module

        payload, spans = self._payload()
        assert pickle.loads(pickle.dumps(payload)).flavor == payload.flavor
        monkeypatch.setattr(parallel_module, "_WORKER_PAYLOADS", {})
        path = _broadcast_payload(payload)
        try:
            start, stop = spans[0]
            direct = run_morsel(payload, start, stop)
            via_file = _run_morsel_from_file(path, start, stop)
            assert [b.to_rows() for b in direct[0]] == [
                b.to_rows() for b in via_file[0]
            ]
            assert direct[1] == via_file[1]
            # Second call hits the worker-side cache: the payload object is
            # reused, not re-read from disk.
            cached = parallel_module._WORKER_PAYLOADS[path]
            assert _run_morsel_from_file(path, start, stop)[1] == direct[1]
            assert parallel_module._WORKER_PAYLOADS[path] is cached
        finally:
            import os

            os.unlink(path)

    def test_worker_payload_cache_is_bounded(self, monkeypatch):
        import repro.exec.parallel as parallel_module

        payload, spans = self._payload()
        monkeypatch.setattr(parallel_module, "_WORKER_PAYLOADS", {})
        paths = [_broadcast_payload(payload) for _ in range(6)]
        try:
            for path in paths:
                _run_morsel_from_file(path, *spans[0])
            assert (
                len(parallel_module._WORKER_PAYLOADS)
                <= parallel_module._WORKER_PAYLOAD_CACHE_SIZE
            )
        finally:
            import os

            for path in paths:
                os.unlink(path)


class TestEngineNameResolution:
    def test_registry_contains_the_parallel_engines(self):
        assert "parallel-vector" in ENGINES
        assert "parallel-numpy" in ENGINES

    def test_make_engine_builds_parallel_engines(self):
        engine = make_engine("parallel-vector", parallel_config())
        assert isinstance(engine, ParallelVectorEngine)
        assert engine.name == "parallel-vector"
        if NUMPY_AVAILABLE:
            assert make_engine("parallel-numpy").name == "parallel-numpy"

    def test_parallel_upgrade_rules(self):
        assert parallel_engine_name("vector", 1) == "vector"
        assert parallel_engine_name("vector", 2) == "parallel-vector"
        assert parallel_engine_name("row", 4) == "row"  # the oracle stays serial
        assert parallel_engine_name("parallel-vector", 4) == "parallel-vector"
        assert parallel_engine_name("parallel-vector", 1) == "parallel-vector"
        if NUMPY_AVAILABLE:
            assert parallel_engine_name("numpy", 2) == "parallel-numpy"

    def test_env_worker_count_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        assert default_worker_count() == 1
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        assert default_worker_count() == 3
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "zoom")
        with pytest.raises(ValueError, match="positive integer"):
            default_worker_count()
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_worker_count()

    def test_env_workers_upgrade_the_default_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_ENGINE", raising=False)
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        assert default_engine_name() == "parallel-vector"
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "1")
        assert default_engine_name() == "vector"
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        monkeypatch.setenv("REPRO_EXEC_ENGINE", "row")
        assert default_engine_name() == "row"
        if NUMPY_AVAILABLE:
            monkeypatch.setenv("REPRO_EXEC_ENGINE", "numpy")
            assert default_engine_name() == "parallel-numpy"

    def test_parallel_numpy_falls_back_to_parallel_vector(self, monkeypatch):
        from repro.exec import engine as engine_module

        monkeypatch.setattr(engine_module, "NUMPY_AVAILABLE", False)
        monkeypatch.setattr(engine_module, "_numpy_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="falls back"):
            assert (
                engine_module.resolve_engine_name("parallel-numpy")
                == "parallel-vector"
            )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError, match="morsel_size"):
            ExecutionConfig(morsel_size=0)
        with pytest.raises(ValueError, match="parallel_mode"):
            ExecutionConfig(parallel_mode="fiber")

    def test_mode_resolution(self):
        assert resolve_parallel_mode("auto", "vector") == "process"
        assert resolve_parallel_mode("auto", "numpy") == "thread"
        assert resolve_parallel_mode("thread", "vector") == "thread"
        assert resolve_parallel_mode("process", "numpy") == "process"


class TestSessionIntegration:
    def _session_case(self):
        from repro.service import OptimizationSession, SessionConfig

        spec = topology_query("star", 3, seed=21)
        # workers pinned to 1: these tests exercise the per-call override,
        # so the session default must not float with REPRO_EXEC_WORKERS
        # (the parallel-smoke CI leg exports it).
        session = OptimizationSession(
            spec.catalog, config=SessionConfig(batch_size=16, workers=1)
        )
        dataset = generate_dataset(spec, rows_per_table=30, default_domain=5, seed=21)
        return session, spec, dataset

    def test_execute_workers_upgrades_and_counts_the_parallel_engine(self):
        session, spec, dataset = self._session_case()
        serial = session.execute(spec, data=dataset, engine="vector")
        result = session.execute(spec, data=dataset, engine="vector", workers=2)
        assert result.engine == "parallel-vector"
        assert result.stats.workers == 2
        assert result.rows() == serial.rows()
        stats = session.statistics()
        assert stats.exec_engines.get("parallel-vector") == 1
        assert stats.exec_engines.get("vector") == 1

    def test_explain_analyze_names_engine_and_worker_count(self):
        session, spec, dataset = self._session_case()
        text = session.explain_analyze(spec, data=dataset, engine="vector", workers=2)
        assert "engine=parallel-vector workers=2" in text
        serial_text = session.explain_analyze(spec, data=dataset, engine="vector")
        assert "workers=" not in serial_text

    def test_session_config_workers_flow_to_execution(self):
        from repro.service import OptimizationSession, SessionConfig

        spec = topology_query("chain", 3, seed=22)
        dataset = generate_dataset(spec, rows_per_table=20, default_domain=5, seed=22)
        session = OptimizationSession(
            spec.catalog, config=SessionConfig(batch_size=16, workers=2)
        )
        result = session.execute(spec, data=dataset)
        assert result.engine.startswith("parallel-")
        assert result.stats.workers == 2


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
class TestDatasetConversionLock:
    def test_concurrent_first_touch_converts_once(self, monkeypatch):
        import repro.exec.arraybatch as arraybatch_module

        spec = random_join_query(GeneratorConfig(n_relations=2, seed=31))
        dataset = generate_dataset(spec, rows_per_table=50, seed=31)
        alias = spec.aliases[0]

        n_threads = 4
        barrier = threading.Barrier(n_threads)
        calls = []
        original = arraybatch_module.ArrayBatch.from_batch.__func__

        def counting(cls, batch, hints=None):
            calls.append(threading.get_ident())
            return original(cls, batch, hints)

        monkeypatch.setattr(
            arraybatch_module.ArrayBatch, "from_batch", classmethod(counting)
        )
        results = []

        def touch():
            barrier.wait()
            results.append(dataset.array_batch(alias))

        threads = [threading.Thread(target=touch) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One conversion, and everyone got the same cached object.
        assert len(calls) == 1
        assert all(r is results[0] for r in results)

    def test_dataset_pickles_without_the_lock(self):
        spec = random_join_query(GeneratorConfig(n_relations=2, seed=32))
        dataset = generate_dataset(spec, rows_per_table=10, seed=32)
        dataset.array_batch(spec.aliases[0])
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone.row_count() == dataset.row_count()
        # The clone has a working lock of its own and a cold cache.
        assert clone.array_batch(spec.aliases[0]).length == 10
