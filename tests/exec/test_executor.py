"""End-to-end: generated plans execute correctly, and every ordering the
ADT claims holds on the physical tuple stream (Section 2 semantics)."""

import pytest

from repro.core.ordering import Ordering
from repro.exec.data import generate_query_data
from repro.exec.executor import execute_plan
from repro.exec.iterators import nested_loop_join
from repro.exec.verify import satisfies_ordering
from repro.plangen import FsmBackend, OracleBackend, PlanGenerator
from repro.plangen.plan import JOIN_OPS
from repro.workloads.generator import GeneratorConfig, random_join_query


def reference_result(spec, data):
    """Join everything with nested loops, apply all predicates."""
    aliases = list(spec.aliases)
    rows = data[aliases[0]]
    for alias in aliases[1:]:
        rows = nested_loop_join(rows, data[alias], lambda l, r: True)
    for join in spec.joins:
        rows = [r for r in rows if r[join.left] == r[join.right]]
    for selection in spec.selections_for_all() if hasattr(spec, "selections_for_all") else []:
        pass
    return rows


def as_multiset(rows):
    return sorted(
        tuple(sorted((str(k), v) for k, v in row.items())) for row in rows
    )


@pytest.mark.parametrize("seed", range(5))
def test_plan_result_matches_reference(seed):
    spec = random_join_query(GeneratorConfig(n_relations=4, n_edges=4, seed=seed))
    data = generate_query_data(spec, rows_per_table=12, domain=4, seed=seed)
    result = PlanGenerator(spec, FsmBackend()).run()
    got = execute_plan(result.best_plan, spec, data)
    expected = reference_result(spec, data)
    assert as_multiset(got) == as_multiset(expected)


@pytest.mark.parametrize("seed", range(5))
def test_all_claimed_orderings_hold_on_stream(seed):
    """The oracle backend's state is the explicit set of claimed logical
    orderings — every one of them must hold on the executed stream, at every
    operator of the plan."""
    spec = random_join_query(GeneratorConfig(n_relations=4, n_edges=3, seed=seed))
    data = generate_query_data(spec, rows_per_table=15, domain=3, seed=seed)
    result = PlanGenerator(spec, OracleBackend()).run()

    for node in result.best_plan.operators():
        rows = execute_plan(node, spec, data)
        for claimed in node.state:
            assert satisfies_ordering(rows, claimed), (
                f"operator {node.op} claims {claimed!r} but the stream "
                f"violates it (seed {seed})"
            )


@pytest.mark.parametrize("seed", range(3))
def test_fsm_claimed_orderings_hold_on_stream(seed):
    """Same check through the FSM: all satisfied testable orders hold."""
    spec = random_join_query(GeneratorConfig(n_relations=4, n_edges=4, seed=seed))
    data = generate_query_data(spec, rows_per_table=15, domain=3, seed=seed)
    backend = FsmBackend()
    result = PlanGenerator(spec, backend).run()
    optimizer = backend.optimizer

    for node in result.best_plan.operators():
        rows = execute_plan(node, spec, data)
        for claimed in optimizer.satisfied_orders(node.state):
            assert satisfies_ordering(rows, claimed), (
                f"{node.op} claims {claimed!r}, stream violates it"
            )


def test_order_by_is_satisfied_physically():
    spec = random_join_query(GeneratorConfig(n_relations=3, n_edges=2, seed=1))
    order_by = Ordering([spec.joins[0].left])
    spec.order_by = order_by
    data = generate_query_data(spec, rows_per_table=20, domain=4, seed=1)
    result = PlanGenerator(spec, FsmBackend()).run()
    rows = execute_plan(result.best_plan, spec, data)
    assert satisfies_ordering(rows, order_by)


def test_merge_join_plans_execute_correctly():
    """Force a merge-join-only configuration and validate the result."""
    from repro.plangen import PlanGenConfig

    spec = random_join_query(GeneratorConfig(n_relations=3, n_edges=2, seed=4))
    data = generate_query_data(spec, rows_per_table=18, domain=4, seed=4)
    config = PlanGenConfig(enable_hash_join=False, enable_nl_join=False)
    result = PlanGenerator(spec, FsmBackend(), config=config).run()
    assert all(op == "merge_join" for op in result.best_plan.join_ops())
    got = execute_plan(result.best_plan, spec, data)
    expected = reference_result(spec, data)
    assert as_multiset(got) == as_multiset(expected)
