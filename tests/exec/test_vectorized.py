"""Unit tests for the vectorized streaming operators.

Every operator is checked against its row-iterator sibling on random data
(same multiset, same stream order where the contract promises one), plus
streaming-specific behavior the row engine cannot express: batch-boundary
duplicate groups, pipeline laziness, and the cross-batch sortedness guard.
"""

import random

import pytest

from repro.core.attributes import Attribute
from repro.core.ordering import Ordering
from repro.exec.batch import Batch, batches_to_rows, rows_to_batches
from repro.exec.iterators import (
    MergeInputNotSortedError,
    hash_join,
    merge_join,
    nested_loop_join,
    sort_rows,
)
from repro.exec.vectorized import (
    hash_join_batches,
    merge_join_batches,
    nl_join_batches,
    scan_batches,
    sort_batches,
)
from repro.query.predicates import EqualsConstant, JoinPredicate, RangePredicate

A = Attribute("a", "t")
X = Attribute("x", "t")
B = Attribute("b", "u")
Y = Attribute("y", "u")


def t_rows(rng, n, domain=4):
    return [{A: rng.randrange(domain), X: rng.randrange(3)} for _ in range(n)]


def u_rows(rng, n, domain=4):
    return [{B: rng.randrange(domain), Y: rng.randrange(3)} for _ in range(n)]


def multiset(rows):
    return sorted(
        tuple(sorted((str(k), v) for k, v in row.items())) for row in rows
    )


@pytest.mark.parametrize("batch_size", [1, 3, 1000])
class TestJoinParity:
    """Batched joins agree with the row iterators at any batch size."""

    def test_merge_join(self, batch_size):
        rng = random.Random(0)
        left = sort_rows(t_rows(rng, 37), Ordering([A]))
        right = sort_rows(u_rows(rng, 23), Ordering([B]))
        expected = merge_join(left, right, A, B)
        got = batches_to_rows(
            merge_join_batches(
                rows_to_batches(left, batch_size),
                rows_to_batches(right, batch_size),
                A,
                B,
                batch_size=batch_size,
            )
        )
        assert got == expected  # exact stream order, not just multiset

    def test_hash_join(self, batch_size):
        rng = random.Random(1)
        left, right = t_rows(rng, 31), u_rows(rng, 19)
        expected = hash_join(left, right, A, B)
        got = batches_to_rows(
            hash_join_batches(
                rows_to_batches(left, batch_size),
                rows_to_batches(right, batch_size),
                A,
                B,
                batch_size=batch_size,
            )
        )
        assert got == expected

    def test_nl_join(self, batch_size):
        rng = random.Random(2)
        left, right = t_rows(rng, 17), u_rows(rng, 13)
        predicate = JoinPredicate(A, B)
        expected = nested_loop_join(left, right, lambda l, r: l[A] == r[B])
        got = batches_to_rows(
            nl_join_batches(
                rows_to_batches(left, batch_size),
                rows_to_batches(right, batch_size),
                (predicate,),
                batch_size=batch_size,
            )
        )
        assert got == expected

    def test_cross_join(self, batch_size):
        rng = random.Random(3)
        left, right = t_rows(rng, 5), u_rows(rng, 4)
        got = batches_to_rows(
            nl_join_batches(
                rows_to_batches(left, batch_size),
                rows_to_batches(right, batch_size),
                (),
                batch_size=batch_size,
            )
        )
        assert len(got) == 20
        assert multiset(got) == multiset(
            nested_loop_join(left, right, lambda l, r: True)
        )

    def test_residual_predicates(self, batch_size):
        rng = random.Random(4)
        left = sort_rows(t_rows(rng, 29, domain=3), Ordering([A]))
        right = sort_rows(u_rows(rng, 27, domain=3), Ordering([B]))
        residual = JoinPredicate(X, Y)

        def condition(l, r):
            return l[X] == r[Y]

        expected = merge_join(left, right, A, B, condition)
        for join in (merge_join_batches, hash_join_batches):
            got = batches_to_rows(
                join(
                    rows_to_batches(left, batch_size),
                    rows_to_batches(right, batch_size),
                    A,
                    B,
                    (residual,),
                    batch_size=batch_size,
                )
            )
            assert multiset(got) == multiset(expected), join.__name__


class TestMergeJoinStreaming:
    def test_duplicate_group_spanning_batches(self):
        # Key 5 spans three left batches and two right batches.
        left = [{A: 5, X: i} for i in range(7)]
        right = [{B: 5, Y: i} for i in range(4)]
        got = batches_to_rows(
            merge_join_batches(
                rows_to_batches(left, 3),
                rows_to_batches(right, 2),
                A,
                B,
                batch_size=3,
            )
        )
        assert len(got) == 28
        expected = merge_join(left, right, A, B)
        assert got == expected

    def test_is_lazy_on_left_input(self):
        """Consuming one output batch must not drain the whole left side."""
        pulled = []

        def left_source():
            for v in range(100):
                pulled.append(v)
                yield Batch.from_rows([{A: v, X: 0}])

        right = rows_to_batches([{B: v, Y: 0} for v in range(100)], 5)
        stream = merge_join_batches(left_source(), right, A, B, batch_size=4)
        next(stream)
        assert len(pulled) < 20

    def test_cross_batch_guard_catches_boundary_violation(self):
        # Each batch is internally sorted; the violation is at the boundary.
        # The right key is large so the merge keeps consuming left batches
        # (the guard validates keys as they stream past, not up front).
        left = [{A: 3, X: 0}, {A: 4, X: 0}, {A: 1, X: 0}, {A: 2, X: 0}]
        right = [{B: 100, Y: 0}]
        with pytest.raises(MergeInputNotSortedError, match="left"):
            batches_to_rows(
                merge_join_batches(
                    rows_to_batches(left, 2),
                    rows_to_batches(right, 2),
                    A,
                    B,
                    check_sorted=True,
                )
            )


class TestScanAndSort:
    def test_scan_batches_chunks_and_preserves_order(self):
        table = Batch.from_rows([{A: v, X: v % 3} for v in range(10)])
        batches = list(scan_batches(table, (), batch_size=4))
        assert [b.length for b in batches] == [4, 4, 2]
        assert [r[A] for r in batches_to_rows(batches)] == list(range(10))

    def test_scan_pushes_down_selections(self):
        table = Batch.from_rows([{A: v, X: v % 3} for v in range(30)])
        selections = (EqualsConstant(X, 1), RangePredicate(A, ">=", 10))
        rows = batches_to_rows(scan_batches(table, selections, batch_size=7))
        assert rows
        assert all(r[X] == 1 and r[A] >= 10 for r in rows)
        # order preserved under filtering
        assert [r[A] for r in rows] == sorted(r[A] for r in rows)

    def test_scan_between_and_comparisons(self):
        table = Batch.from_rows([{A: v, X: 0} for v in range(10)])
        cases = [
            (RangePredicate(A, "between", 2, 5), {2, 3, 4, 5}),
            (RangePredicate(A, "<", 2), {0, 1}),
            (RangePredicate(A, "<=", 2), {0, 1, 2}),
            (RangePredicate(A, ">", 7), {8, 9}),
            (RangePredicate(A, "<>", 0), set(range(1, 10))),
        ]
        for predicate, expected in cases:
            rows = batches_to_rows(scan_batches(table, (predicate,), 100))
            assert {r[A] for r in rows} == expected, predicate

    def test_sort_batches_matches_sort_rows(self):
        rng = random.Random(7)
        rows = t_rows(rng, 41)
        order = Ordering([A, X])
        got = batches_to_rows(
            sort_batches(iter(rows_to_batches(rows, 6)), order, batch_size=5)
        )
        assert got == sort_rows(rows, order)

    def test_sort_batches_empty_stream(self):
        assert list(sort_batches(iter(()), Ordering([A]), 4)) == []
