"""Unit tests for the Section 2 order-satisfaction predicates."""

from repro.core.attributes import attrs
from repro.core.ordering import EMPTY_ORDERING, ordering
from repro.exec.verify import (
    satisfied_orderings,
    satisfies_ordering,
    satisfies_ordering_formal,
)

A, B = attrs("a", "b")


def rows(*pairs):
    return [{A: a, B: b} for a, b in pairs]


class TestSatisfiesOrdering:
    def test_empty_ordering_always_satisfied(self):
        assert satisfies_ordering(rows((3, 1), (1, 2)), EMPTY_ORDERING)

    def test_empty_and_singleton_streams(self):
        assert satisfies_ordering([], ordering("a"))
        assert satisfies_ordering(rows((5, 0)), ordering("a"))

    def test_single_attribute(self):
        assert satisfies_ordering(rows((1, 9), (2, 0), (2, 5)), ordering("a"))
        assert not satisfies_ordering(rows((2, 0), (1, 9)), ordering("a"))

    def test_lexicographic(self):
        assert satisfies_ordering(rows((1, 1), (1, 2), (2, 0)), ordering("a", "b"))
        assert not satisfies_ordering(rows((1, 2), (1, 1)), ordering("a", "b"))

    def test_ties_everywhere(self):
        assert satisfies_ordering(rows((1, 1), (1, 1), (1, 1)), ordering("a", "b"))

    def test_prefix_weaker_than_full(self):
        stream = rows((1, 2), (1, 1), (2, 0))
        assert satisfies_ordering(stream, ordering("a"))
        assert not satisfies_ordering(stream, ordering("a", "b"))


class TestFormalDefinition:
    def test_agrees_with_fast_check_on_examples(self):
        streams = [
            rows((1, 1), (1, 2), (2, 0)),
            rows((1, 2), (1, 1)),
            rows((2, 0), (1, 9)),
            rows((1, 1), (1, 1)),
            rows(),
            rows((5, 5)),
            rows((0, 3), (1, 2), (1, 2), (1, 3), (4, 0)),
        ]
        for stream in streams:
            for order in (ordering("a"), ordering("b"), ordering("a", "b"),
                          ordering("b", "a"), EMPTY_ORDERING):
                assert satisfies_ordering(stream, order) == (
                    satisfies_ordering_formal(stream, order)
                ), (stream, order)

    def test_formal_catches_non_adjacent_violation(self):
        # (1), (1), (0): adjacent pairs (1,1) fine, (1,0) violates; but a
        # non-adjacent check (rows 0 and 2) must also catch it.
        stream = rows((1, 0), (1, 0), (0, 0))
        assert not satisfies_ordering_formal(stream, ordering("a"))
        assert not satisfies_ordering(stream, ordering("a"))


def test_satisfied_orderings_filters():
    stream = rows((1, 5), (1, 3), (2, 3))
    result = satisfied_orderings(stream, [ordering("a"), ordering("b"), ordering("a", "b")])
    assert result == [ordering("a")]
