"""Differential tests for GROUP BY / DISTINCT execution.

Every grouped query must answer bit-identically — tuple for tuple, in
order — on the row-dict reference oracle, the vectorized engine, the
NumPy engine, and both morsel-parallel engines.  The grid crosses the
aggregate operators (stream vs. hash), every aggregate function, and the
data shapes that historically break aggregation kernels: empty inputs,
all-duplicate keys, and key runs straddling morsel boundaries.
"""

import pytest

from repro.catalog.schema import Catalog, Column, Index, Table, simple_table
from repro.core.attributes import Attribute
from repro.core.ordering import ordering
from repro.exec import (
    NUMPY_AVAILABLE,
    ExecutionConfig,
    NumpyEngine,
    ParallelNumpyEngine,
    ParallelVectorEngine,
    RowEngine,
    VectorEngine,
    generate_dataset,
)
from repro.exec.aggregate import (
    finalize_state,
    hash_aggregate_rows,
    merge_state,
    new_state,
    output_attributes,
    stream_aggregate_rows,
    update_state,
)
from repro.plangen import FsmBackend, PlanGenConfig, PlanGenerator
from repro.plangen.plan import HASH_AGGREGATE, SORT, STREAM_AGGREGATE
from repro.query.predicates import JoinPredicate
from repro.query.query import AggregateSpec, make_query

AGG_CONFIG = PlanGenConfig(enable_aggregation=True)


def plan_for(spec):
    return PlanGenerator(spec, FsmBackend(), config=AGG_CONFIG).run().best_plan


def all_engines(batch_size=16, morsel_size=3):
    """The row oracle first, then every engine this environment has.

    ``morsel_size=3`` is deliberately smaller than every duplicate-key run
    the generated datasets contain, so the parallel engines must merge
    partial aggregation states across morsel boundaries to agree."""
    config = ExecutionConfig(batch_size=batch_size, check_merge_inputs=True)
    parallel_config = ExecutionConfig(
        batch_size=batch_size,
        check_merge_inputs=True,
        workers=2,
        morsel_size=morsel_size,
        parallel_mode="thread",
    )
    engines = [
        ("row", RowEngine(config)),
        ("vector", VectorEngine(config)),
        ("parallel-vector", ParallelVectorEngine(parallel_config)),
    ]
    if NUMPY_AVAILABLE:
        engines.append(("numpy", NumpyEngine(config)))
        engines.append(("parallel-numpy", ParallelNumpyEngine(parallel_config)))
    return engines


def assert_identical(spec, dataset):
    plan = plan_for(spec)
    engines = all_engines()
    reference = engines[0][1].execute(plan, spec, dataset).rows()
    for name, engine in engines[1:]:
        rows = engine.execute(plan, spec, dataset).rows()
        assert rows == reference, f"{name} diverged from row on {spec.name}"
    return plan, reference


def int_catalog():
    """Two joinable tables whose columns all declare ``dtype="int"`` — the
    declaration the parallel engines require before they trust per-morsel
    partial SUM/AVG states (float addition does not reassociate)."""

    def table(name, cols, clustered):
        return Table(
            name=name,
            columns=tuple(Column(c, dtype="int") for c in cols),
            cardinality=1000,
            indexes=(Index(f"idx_{name}", name, (clustered,), clustered=True),),
        )

    return Catalog().add(table("t", ["a", "k"], "a")).add(table("u", ["b", "k"], "b"))


ALL_FUNCTIONS = (
    AggregateSpec("count"),
    AggregateSpec("sum", Attribute("k", "t")),
    AggregateSpec("avg", Attribute("k", "t")),
    AggregateSpec("min", Attribute("k", "u")),
    AggregateSpec("max", Attribute("k", "u")),
)


def grouped_spec(catalog, *, order=True, name="grouped"):
    return make_query(
        catalog,
        ["t", "u"],
        [JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))],
        group_by=(Attribute("a", "t"),),
        order_by=ordering("t.a") if order else None,
        aggregates=ALL_FUNCTIONS,
        name=name,
    )


class TestDifferentialGrid:
    @pytest.mark.parametrize("seed", range(3))
    def test_stream_aggregate_all_functions(self, seed):
        spec = grouped_spec(int_catalog(), name=f"stream-s{seed}")
        dataset = generate_dataset(spec, rows_per_table=40, seed=seed)
        plan, rows = assert_identical(spec, dataset)
        assert any(n.op == STREAM_AGGREGATE for n in plan.operators())
        assert rows, "expected at least one group"

    @pytest.mark.parametrize("seed", range(3))
    def test_hash_aggregate_all_functions(self, seed):
        catalog = int_catalog()
        spec = make_query(
            catalog,
            ["t", "u"],
            [JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))],
            group_by=(Attribute("k", "u"),),
            aggregates=ALL_FUNCTIONS,
            name=f"hash-s{seed}",
        )
        dataset = generate_dataset(spec, rows_per_table=40, seed=seed)
        plan, rows = assert_identical(spec, dataset)
        assert any(n.op == HASH_AGGREGATE for n in plan.operators())
        assert rows

    def test_distinct_keys_only(self):
        catalog = int_catalog()
        spec = make_query(
            catalog,
            ["t", "u"],
            [JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))],
            group_by=(Attribute("k", "t"), Attribute("k", "u")),
            name="distinct",
        )
        dataset = generate_dataset(spec, rows_per_table=40, seed=2)
        _, rows = assert_identical(spec, dataset)
        distinct = {tuple(sorted((str(k), v) for k, v in row.items())) for row in rows}
        assert len(distinct) == len(rows), "DISTINCT emitted a duplicate"

    def test_empty_input(self):
        spec = grouped_spec(int_catalog(), name="empty")
        dataset = generate_dataset(spec, rows_per_table=40, seed=0)
        from repro.exec.data import Dataset

        empty = Dataset(
            {alias: batch.slice(0, 0) for alias, batch in dataset.tables.items()}
        )
        plan = plan_for(spec)
        for name, engine in all_engines():
            assert engine.execute(plan, spec, empty).rows() == [], name

    def test_all_duplicate_keys(self):
        """domain=1 collapses every key into one run longer than any
        morsel/batch — the worst case for run detection and merging."""
        spec = grouped_spec(int_catalog(), name="dup")
        dataset = generate_dataset(
            spec, rows_per_table=30, default_domain=1, seed=4
        )
        _, rows = assert_identical(spec, dataset)
        assert len(rows) <= 2

    def test_runs_straddle_morsel_and_batch_boundaries(self):
        """Tiny batches and morsels force every group to span boundaries."""
        spec = grouped_spec(int_catalog(), name="straddle")
        dataset = generate_dataset(
            spec, rows_per_table=50, default_domain=3, seed=5
        )
        plan = plan_for(spec)
        reference = None
        for batch_size, morsel_size in ((4, 2), (16, 3), (64, 7)):
            for name, engine in all_engines(batch_size, morsel_size):
                rows = engine.execute(plan, spec, dataset).rows()
                if reference is None:
                    reference = rows
                assert rows == reference, (name, batch_size, morsel_size)

    def test_float_sums_fall_back_to_serial_order(self):
        """Without ``dtype="int"`` declarations the parallel engines must
        not re-associate SUM/AVG — partial aggregation is gated off, and
        results still match the serial oracle exactly."""
        catalog = (
            Catalog()
            .add(simple_table("t", ["a", "k"], 1000, clustered_on="a"))
            .add(simple_table("u", ["b", "k"], 1000, clustered_on="b"))
        )
        spec = grouped_spec(catalog, order=False, name="nohints")
        dataset = generate_dataset(spec, rows_per_table=40, seed=6)
        assert_identical(spec, dataset)

    def test_avg_is_a_python_float_everywhere(self):
        spec = grouped_spec(int_catalog(), name="avg-type")
        dataset = generate_dataset(spec, rows_per_table=40, seed=7)
        plan = plan_for(spec)
        avg_attr = AggregateSpec("avg", Attribute("k", "t")).output
        for name, engine in all_engines():
            for row in engine.execute(plan, spec, dataset).rows():
                assert type(row[avg_attr]) in (int, float), name


class TestAccumulatorAlgebra:
    """The per-function fold/merge/finalize algebra the kernels share."""

    def test_count_star(self):
        state = new_state("count")
        for _ in range(3):
            state = update_state("count", state, None)
        assert finalize_state("count", state) == 3

    def test_sum_ignores_no_rows(self):
        assert finalize_state("sum", new_state("sum")) is None

    def test_avg_true_division(self):
        state = new_state("avg")
        for value in (1, 2):
            state = update_state("avg", state, value)
        assert finalize_state("avg", state) == 1.5

    def test_merge_associates_with_sequential_fold(self):
        values = [5, 1, 4, 2, 8]
        for function in ("count", "sum", "min", "max", "avg"):
            sequential = new_state(function)
            for value in values:
                sequential = update_state(function, sequential, value)
            left = new_state(function)
            for value in values[:2]:
                left = update_state(function, left, value)
            right = new_state(function)
            for value in values[2:]:
                right = update_state(function, right, value)
            merged = merge_state(function, left, right)
            assert finalize_state(function, merged) == finalize_state(
                function, sequential
            )

    def test_merge_with_empty_side(self):
        for function in ("count", "sum", "min", "max", "avg"):
            state = update_state(function, new_state(function), 7)
            assert merge_state(function, state, new_state(function)) == state
            assert merge_state(function, new_state(function), state) == state

    def test_output_attributes_order(self):
        keys = (Attribute("a", "t"),)
        aggs = (AggregateSpec("count"), AggregateSpec("sum", Attribute("k", "t")))
        assert output_attributes(keys, aggs) == (
            Attribute("a", "t"),
            Attribute("count(*)"),
            Attribute("sum(t.k)"),
        )

    def test_row_level_stream_equals_hash_on_sorted_input(self):
        keys = (Attribute("g"),)
        aggs = (AggregateSpec("count"), AggregateSpec("sum", Attribute("v")))
        rows = [
            {Attribute("g"): g, Attribute("v"): v}
            for g, v in ((1, 10), (1, 20), (2, 5), (3, 1), (3, 2))
        ]
        assert list(stream_aggregate_rows(rows, keys, aggs)) == list(
            hash_aggregate_rows(rows, keys, aggs)
        )
