"""Error paths and corner cases of the executor."""

import pytest

from repro.catalog.schema import Catalog, simple_table
from repro.core.attributes import Attribute
from repro.core.ordering import ordering
from repro.exec.data import apply_constant, generate_query_data, most_common_value
from repro.exec.executor import Executor
from repro.plangen.plan import PlanNode
from repro.query.query import make_query


@pytest.fixture
def setup():
    catalog = Catalog().add(simple_table("t", ["a"], 100))
    spec = make_query(catalog, ["t"])
    data = generate_query_data(spec, rows_per_table=10, domain=3, seed=0)
    return spec, data


class TestExecutorErrors:
    def test_unknown_operator(self, setup):
        spec, data = setup
        plan = PlanNode("cartesian", 1, state=0, cost=0, cardinality=0)
        with pytest.raises(ValueError, match="cannot execute"):
            Executor(spec, data).run(plan)

    def test_index_scan_requires_ordering(self, setup):
        spec, data = setup
        plan = PlanNode(
            "index_scan", 1, state=0, cost=0, cardinality=0, alias="t"
        )
        with pytest.raises(ValueError, match="ordering"):
            Executor(spec, data).run(plan)

    def test_malformed_sort(self, setup):
        spec, data = setup
        plan = PlanNode(
            "sort", 1, state=0, cost=0, cardinality=0, ordering=ordering("t.a")
        )
        with pytest.raises(ValueError, match="malformed"):
            Executor(spec, data).run(plan)


class TestDataHelpers:
    def test_rows_respect_domain(self, setup):
        spec, data = setup
        attribute = Attribute("a", "t")
        assert all(0 <= row[attribute] < 3 for row in data["t"])

    def test_apply_constant(self, setup):
        spec, data = setup
        attribute = Attribute("a", "t")
        filtered = apply_constant(data["t"], attribute, 1)
        assert all(row[attribute] == 1 for row in filtered)

    def test_most_common_value(self):
        attribute = Attribute("a", "t")
        rows = [{attribute: v} for v in (1, 2, 2, 3)]
        assert most_common_value(rows, attribute) == 2
        with pytest.raises(ValueError):
            most_common_value([], attribute)

    def test_generation_deterministic(self, setup):
        spec, _ = setup
        d1 = generate_query_data(spec, rows_per_table=5, seed=3)
        d2 = generate_query_data(spec, rows_per_table=5, seed=3)
        assert d1 == d2
