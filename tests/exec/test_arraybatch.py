"""Edge-case tests for the NumPy typed-array substrate.

The differential grid proves whole plans agree across engines; these tests
pin the *pieces* — `ArrayBatch` construction/conversion, dtype inference,
and the array kernels — on the inputs most likely to break them: empty
batches, single-row batches (batch_size=1), selections that filter every
row, duplicate-heavy merge keys straddling batch boundaries, and int/str
round-trips that must come back as native Python scalars, never NumPy
ones (the `repr`-keyed multiset oracle would flag `np.int64(5)` vs `5`).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.attributes import Attribute  # noqa: E402
from repro.core.ordering import Ordering  # noqa: E402
from repro.exec import MergeInputNotSortedError  # noqa: E402
from repro.exec.arraybatch import (  # noqa: E402
    ArrayBatch,
    concat_array_batches,
    emit_chunks,
    infer_array,
    stable_order,
)
from repro.exec.numpy_kernels import (  # noqa: E402
    _check_sorted,
    filter_positions,
    hash_join_array_batches,
    index_scan_array_batches,
    merge_join_array_batches,
    nl_join_array_batches,
    scan_array_batches,
    sort_array_batches,
)
from repro.query.predicates import (  # noqa: E402
    EqualsConstant,
    JoinPredicate,
    RangePredicate,
)

A, B = Attribute("a", "t"), Attribute("b", "t")
X, Y = Attribute("x", "u"), Attribute("y", "u")


def rows_of(values):
    return [{A: v, B: -v} for v in values]


def batch_of(values):
    return ArrayBatch.from_rows(rows_of(values))


def drain(batches):
    rows = []
    for batch in batches:
        rows.extend(batch.to_rows())
    return rows


class TestInferArray:
    def test_all_int_becomes_int64(self):
        array = infer_array([1, 2, 3])
        assert array.dtype == np.int64
        assert array.tolist() == [1, 2, 3]

    def test_all_str_becomes_unicode(self):
        array = infer_array(["aa", "b", "ccc"])
        assert array.dtype.kind == "U"
        assert array.tolist() == ["aa", "b", "ccc"]

    def test_int64_overflow_falls_back_to_object(self):
        big = 2**63  # one past int64
        array = infer_array([1, big])
        assert array.dtype == object
        assert array.tolist() == [1, big]

    def test_mixed_types_fall_back_to_object(self):
        array = infer_array([1, "one"])
        assert array.dtype == object
        assert array.tolist() == [1, "one"]

    def test_bool_is_not_an_int_column(self):
        # bool is an int subclass; a bool column must stay object so its
        # values round-trip as True/False, not 1/0.
        array = infer_array([True, False])
        assert array.dtype == object
        assert array.tolist() == [True, False]

    def test_empty_without_hint_is_object(self):
        array = infer_array([])
        assert array.dtype == object
        assert len(array) == 0

    def test_hints_pin_dtypes(self):
        assert infer_array([], hint="int").dtype == np.int64
        assert infer_array(["z"], hint="str").dtype.kind == "U"
        assert infer_array([1], hint="float").dtype == np.float64

    def test_unknown_hint_rejected(self):
        with pytest.raises(ValueError, match="unknown dtype hint"):
            infer_array([1], hint="decimal")


class TestArrayBatchBasics:
    def test_int_round_trip_yields_native_scalars(self):
        rows = rows_of([1, 2, 3])
        batch = ArrayBatch.from_rows(rows)
        back = batch.to_rows()
        assert back == rows
        for row in back:
            for value in row.values():
                assert type(value) is int

    def test_str_round_trip_yields_native_scalars(self):
        rows = [{A: s, B: s * 2} for s in ("x", "yy", "zzz")]
        back = ArrayBatch.from_rows(rows).to_rows()
        assert back == rows
        for row in back:
            for value in row.values():
                assert type(value) is str

    def test_empty_batch(self):
        batch = ArrayBatch.from_rows([])
        assert batch.length == len(batch) == 0
        assert batch.to_rows() == []
        assert list(batch.iter_rows()) == []

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            ArrayBatch({A: np.arange(2), B: np.arange(1)})

    def test_multidimensional_column_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ArrayBatch({A: np.zeros((2, 2))})

    def test_unknown_column(self):
        with pytest.raises(KeyError, match="no column"):
            batch_of([1]).column(Attribute("zz", "t"))

    def test_take_gathers_and_copies(self):
        batch = batch_of([10, 20, 30, 40])
        taken = batch.take([3, 0, 0])
        assert taken.column(A).tolist() == [40, 10, 10]
        taken.columns[A][0] = 99
        assert batch.column(A).tolist() == [10, 20, 30, 40]

    def test_take_empty_indices(self):
        taken = batch_of([1, 2]).take([])
        assert taken.length == 0
        assert taken.to_rows() == []

    def test_slice_clamps(self):
        batch = batch_of([1, 2, 3])
        assert batch.slice(1, 99).column(A).tolist() == [2, 3]
        assert batch.slice(-5, 1).column(A).tolist() == [1]
        assert batch.slice(3, 5).length == 0

    def test_key_tuples_native(self):
        batch = batch_of([1, 2])
        tuples = batch.key_tuples([A, B])
        assert tuples == [(1, -1), (2, -2)]
        assert all(type(v) is int for t in tuples for v in t)
        assert batch.key_tuples([]) == [(), ()]

    def test_dtype_hints_applied_by_from_rows(self):
        batch = ArrayBatch.from_rows(rows_of([1, 2]), hints={A: "float"})
        assert batch.column(A).dtype == np.float64
        assert batch.column(B).dtype == np.int64

    def test_repr(self):
        assert "2 rows x 2 cols" in repr(batch_of([1, 2]))


class TestConcatAndChunks:
    def test_concat(self):
        merged = concat_array_batches(
            [batch_of([1, 2]), ArrayBatch.from_rows([]), batch_of([3])]
        )
        assert merged.column(A).tolist() == [1, 2, 3]

    def test_concat_empty(self):
        assert concat_array_batches([]).length == 0

    def test_concat_single_live_batch_is_identity(self):
        batch = batch_of([1, 2])
        assert concat_array_batches([ArrayBatch.from_rows([]), batch]) is batch

    def test_concat_mismatched_columns_rejected(self):
        other = ArrayBatch({A: np.arange(1)})
        with pytest.raises(ValueError, match="different columns"):
            concat_array_batches([batch_of([1]), other])

    def test_emit_chunks_batch_size_one(self):
        chunks = list(emit_chunks(batch_of([1, 2, 3]), 1))
        assert [c.length for c in chunks] == [1, 1, 1]
        assert drain(iter(chunks)) == rows_of([1, 2, 3])

    def test_emit_chunks_empty_is_silent(self):
        assert list(emit_chunks(ArrayBatch.from_rows([]), 4)) == []


class TestStableOrder:
    def test_empty_key_list_is_identity(self):
        assert stable_order([], 4).tolist() == [0, 1, 2, 3]

    def test_stability_preserves_input_order_of_ties(self):
        keys = np.asarray([2, 1, 2, 1, 1])
        assert stable_order([keys], 5).tolist() == [1, 3, 4, 0, 2]

    def test_multi_key_lexicographic(self):
        first = np.asarray([1, 0, 1, 0])
        second = np.asarray([9, 8, 7, 6])
        assert stable_order([first, second], 4).tolist() == [3, 1, 2, 0]

    def test_object_dtype_keys(self):
        keys = np.empty(3, dtype=object)
        keys[:] = [(2, "b"), (1, "a"), (1, "b")]
        assert stable_order([keys], 3).tolist() == [1, 2, 0]


class TestScanKernels:
    def test_all_rows_filtered_out(self):
        table = batch_of([1, 2, 3])
        out = list(scan_array_batches(table, [EqualsConstant(A, 99)], 2))
        assert drain(iter(out)) == []

    def test_filter_positions_none_means_all(self):
        assert filter_positions(batch_of([1, 2]), []) is None

    def test_range_selections(self):
        table = batch_of([1, 2, 3, 4, 5])
        cases = [
            (RangePredicate(A, "between", 2, 4), [2, 3, 4]),
            (RangePredicate(A, "<", 3), [1, 2]),
            (RangePredicate(A, "<=", 3), [1, 2, 3]),
            (RangePredicate(A, ">", 3), [4, 5]),
            (RangePredicate(A, ">=", 3), [3, 4, 5]),
            (RangePredicate(A, "<>", 3), [1, 2, 4, 5]),
        ]
        for predicate, expected in cases:
            rows = drain(scan_array_batches(table, [predicate], 2))
            assert [r[A] for r in rows] == expected, predicate.operator

    def test_conjunction_of_selections(self):
        table = batch_of([1, 2, 3, 4])
        rows = drain(
            scan_array_batches(
                table,
                [RangePredicate(A, ">=", 2), RangePredicate(A, "<", 4)],
                1,
            )
        )
        assert [r[A] for r in rows] == [2, 3]

    def test_index_scan_sorts_survivors_stably(self):
        rows = [{A: v, B: i} for i, v in enumerate([3, 1, 3, 1])]
        table = ArrayBatch.from_rows(rows)
        out = drain(
            index_scan_array_batches(table, Ordering([A]), [], batch_size=1)
        )
        assert [(r[A], r[B]) for r in out] == [(1, 1), (1, 3), (3, 0), (3, 2)]

    def test_sort_kernel_empty_input(self):
        assert list(sort_array_batches(iter([]), Ordering([A]), 4)) == []

    def test_sort_kernel_batch_size_one(self):
        chunks = [batch_of([3, 1]), batch_of([2])]
        out = list(sort_array_batches(iter(chunks), Ordering([A]), 1))
        assert [c.length for c in out] == [1, 1, 1]
        assert [r[A] for r in drain(iter(out))] == [1, 2, 3]


def left_rows(values):
    return [{A: v, B: -v} for v in values]


def right_rows(values):
    return [{X: v, Y: v * 10} for v in values]


def chunked(rows, size):
    return iter(
        [ArrayBatch.from_rows(rows[i : i + size]) for i in range(0, len(rows), size)]
    )


class TestJoinKernels:
    def test_merge_join_duplicates_straddling_batch_boundaries(self):
        # Key runs of 1/2/3 duplicates on both sides, chunked so every run
        # crosses a batch boundary; expected pairs = per-key products in
        # left-major, right-input order.
        lvals = [1, 2, 2, 3, 3, 3]
        rvals = [1, 1, 2, 3, 3, 4]
        out = drain(
            merge_join_array_batches(
                chunked(left_rows(lvals), 2),
                chunked(right_rows(rvals), 2),
                A,
                X,
                batch_size=1,
            )
        )
        expected = [
            {**lr, **rr}
            for lr in left_rows(lvals)
            for rr in right_rows(rvals)
            if lr[A] == rr[X]
        ]
        assert out == expected

    def test_merge_join_empty_sides(self):
        assert (
            drain(
                merge_join_array_batches(chunked([], 2), chunked([], 2), A, X)
            )
            == []
        )
        assert (
            drain(
                merge_join_array_batches(
                    chunked(left_rows([1]), 2), chunked([], 2), A, X
                )
            )
            == []
        )

    def test_merge_join_detects_unsorted_input(self):
        with pytest.raises(
            MergeInputNotSortedError, match="left merge-join input"
        ):
            drain(
                merge_join_array_batches(
                    chunked(left_rows([2, 1]), 2),
                    chunked(right_rows([1, 2]), 2),
                    A,
                    X,
                    check_sorted=True,
                )
            )

    def test_check_sorted_message_uses_native_reprs(self):
        keys = np.asarray([1, 3, 2], dtype=np.int64)
        with pytest.raises(MergeInputNotSortedError, match=r"2 follows 3"):
            _check_sorted(keys, A, "right")

    def test_merge_join_residual_predicate(self):
        lvals, rvals = [1, 1, 2], [1, 2]
        extra = JoinPredicate(B, Y)
        # B = -v on the left, Y = 10*v on the right: only v = 0 would match,
        # so the residual filters every candidate pair out.
        out = drain(
            merge_join_array_batches(
                chunked(left_rows(lvals), 2),
                chunked(right_rows(rvals), 2),
                A,
                X,
                residuals=[extra],
            )
        )
        assert out == []

    def test_hash_join_matches_merge_join_on_unsorted_build(self):
        lvals = [3, 1, 2, 1]
        rvals = [2, 1, 3, 1, 9]
        out = drain(
            hash_join_array_batches(
                chunked(left_rows(lvals), 3),
                chunked(right_rows(rvals), 2),
                A,
                X,
                batch_size=1,
            )
        )
        expected = [
            {**lr, **rr}
            for lr in left_rows(lvals)
            for rr in right_rows(rvals)
            if lr[A] == rr[X]
        ]
        assert out == expected

    def test_hash_join_mixed_dtype_keys_never_match(self):
        # int64 probe against str build: harmonized to object, Python
        # semantics say int != str, so the join is empty — not an error.
        out = drain(
            hash_join_array_batches(
                chunked(left_rows([1, 2]), 2),
                chunked(right_rows(["1", "2"]), 2),
                A,
                X,
            )
        )
        assert out == []

    def test_hash_join_heterogeneous_object_keys_match_by_equality(self):
        # A build column mixing int and str has no total order, so the
        # searchsorted partition fails; the dict-grouping fallback must
        # still find the int matches, in probe-major/build-insertion order.
        out = drain(
            hash_join_array_batches(
                chunked(left_rows([2, 1]), 2),
                chunked(right_rows(["2", 1, 2, 1]), 2),
                A,
                X,
            )
        )
        assert [(r[A], r[X], r[Y]) for r in out] == [
            (2, 2, 20),
            (1, 1, 10),
            (1, 1, 10),
        ]

    def test_nl_join_cross_product_order(self):
        out = drain(
            nl_join_array_batches(
                chunked(left_rows([1, 2]), 1),
                chunked(right_rows([7, 8]), 1),
                predicates=[],
                batch_size=1,
            )
        )
        assert [(r[A], r[X]) for r in out] == [
            (1, 7),
            (1, 8),
            (2, 7),
            (2, 8),
        ]

    def test_nl_join_with_predicate(self):
        out = drain(
            nl_join_array_batches(
                chunked(left_rows([1, 2, 3]), 2),
                chunked(right_rows([2, 3, 3]), 2),
                predicates=[JoinPredicate(A, X)],
            )
        )
        assert [(r[A], r[X]) for r in out] == [(2, 2), (3, 3), (3, 3)]

    def test_nl_join_empty_inner_short_circuits(self):
        def exploding():
            raise AssertionError("outer side must not be pulled")
            yield  # pragma: no cover

        assert (
            drain(
                nl_join_array_batches(
                    exploding(), chunked([], 2), predicates=[]
                )
            )
            == []
        )
