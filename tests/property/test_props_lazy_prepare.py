"""Property: lazy preparation is observationally identical to eager.

The lazy machine is, by construction, a reachability-restricted relabeling
of the eager power-set DFSM (both intern states by their ε-closed NFSM node
set and compute successors with the shared ``fd_successor`` kernel).  These
properties pin that argument down over randomized instances:

* along arbitrary operation sequences — constructor, ``infer`` walks,
  mid-plan sort entries — both modes give identical ``contains`` answers
  for every testable order, and the underlying state *sets* coincide
  exactly (the strongest form of "identical infer answers": not just the
  same observable bits, the same represented set of logical orderings);
* the lazy machine never materializes more states than the eager total —
  laziness can only shrink the bill, never inflate it.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.optimizer import OrderOptimizer

from .strategies import instances


def _walk_states(optimizer: OrderOptimizer, interesting, fdsets, walk):
    """Drive one component through every entry point and the symbol walk,
    yielding (label, state) at each step for comparison."""
    fd_handles = [optimizer.fdset_handle(f) for f in fdsets]
    entries = [("scan", optimizer.scan_state())]
    for order in interesting.produced:
        handle = optimizer.producer_handle(order)
        entries.append((f"produced:{order!r}", optimizer.state_for_produced(handle)))
        entries.append(
            (
                f"sort:{order!r}",
                optimizer.state_after_sort(handle, fd_handles[:2]),
            )
        )
    for label, state in entries:
        yield label, state
        for step, symbol in enumerate(walk):
            state = optimizer.infer(state, fd_handles[symbol])
            yield f"{label}+{step}", state


def _observations(optimizer: OrderOptimizer, interesting, fdsets, walk):
    """(label, represented node set, contains row) per step of the drive."""
    testable = range(len(optimizer.tables.testable_orders))
    out = []
    for label, state in _walk_states(optimizer, interesting, fdsets, walk):
        nodes = optimizer.dfsm.states[state]
        answers = tuple(optimizer.contains(state, h) for h in testable)
        out.append((label, nodes, answers))
    return out


@given(instances())
@settings(max_examples=60, deadline=None)
def test_lazy_equals_eager_along_random_operation_sequences(instance):
    interesting, fdsets, walk = instance
    eager = OrderOptimizer.prepare(interesting, fdsets)
    lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")

    # Same testable-order layout (handles are positional).
    assert eager.tables.testable_orders == lazy.tables.testable_orders

    eager_obs = _observations(eager, interesting, fdsets, walk)
    lazy_obs = _observations(lazy, interesting, fdsets, walk)
    assert eager_obs == lazy_obs


@given(instances())
@settings(max_examples=60, deadline=None)
def test_lazy_never_materializes_more_than_eager_total(instance):
    interesting, fdsets, walk = instance
    eager = OrderOptimizer.prepare(interesting, fdsets)
    lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")

    for _ in _walk_states(lazy, interesting, fdsets, walk):
        pass
    assert lazy.tables.states_materialized <= eager.tables.states_total

    # Forcing the lazy machine reaches exactly the eager power set.
    assert lazy.tables.materialize_all() == eager.tables.states_total
