"""Differential-testing oracle: FSM backend vs. Simmen baseline.

The paper's Section 7 claim is that the FSM framework changes the *size of
the search space*, never the *quality of the chosen plan*: both frameworks
answer the same ``contains``/``infer`` questions, so bottom-up DP must pick
best plans of equal cost.  This suite hammers that claim over hundreds of
seeded random join queries with ``ORDER BY``/``GROUP BY`` clauses — two
live ordering backends behind one interface make every query its own
oracle.

Independence: plan-level ``ORDER BY`` satisfaction is *not* checked through
either backend under test.  ``closure_orderings`` recomputes the logical
ordering set of a finished plan tree bottom-up with the explicit
``Ω``-closure (``repro.core.inference.omega``), replaying exactly the FD
applications the plan generator performed — so a backend that wrongly
claimed satisfaction and skipped a needed sort is caught here.

The seed grid is fixed (not hypothesis-drawn): the acceptance bar is
"≥200 seeded queries, zero cost mismatches", and a deterministic grid makes
a red run reproducible by seed alone.
"""

from __future__ import annotations

import pytest

from repro.core.fd import FDSet
from repro.core.inference import omega
from repro.core.ordering import EMPTY_ORDERING, Ordering
from repro.plangen import FsmBackend, PlanGenerator, SimmenBackend
from repro.plangen.dp import PlanGenConfig
from repro.plangen.plan import (
    AGGREGATE_OPS,
    INDEX_SCAN,
    JOIN_OPS,
    SCAN,
    SORT,
    PlanNode,
)
from repro.query.analyzer import QueryOrderInfo
from repro.query.joingraph import JoinGraph, iter_bits
from repro.query.query import QuerySpec
from repro.workloads.generator import GeneratorConfig, random_join_query

# 40 seeds x {3,4,5} relations x {chain, chain+1 edge} = 240 queries.
SEED_GRID = [
    GeneratorConfig(n_relations=n, n_edges=n - 1 + extra, seed=seed)
    for seed in range(40)
    for n in (3, 4, 5)
    for extra in (0, 1)
]
assert len(SEED_GRID) >= 200


def clause_variant(spec: QuerySpec, seed: int) -> QuerySpec:
    """Attach deterministic ORDER BY / GROUP BY clauses to a generated query.

    Join attributes are the only guaranteed columns; the seed picks one or
    two of them for ``ORDER BY`` and, for every third query, reuses them as
    ``GROUP BY`` keys, so all clause shapes appear across the grid.
    """
    joins = spec.joins
    attributes = [joins[seed % len(joins)].left]
    if seed % 3 == 0:
        second = joins[(seed + 1) % len(joins)].right
        if second not in attributes:
            attributes.append(second)
    order_by = Ordering(attributes)
    group_by = tuple(order_by) if seed % 3 == 1 else ()
    return QuerySpec(
        catalog=spec.catalog,
        relations=spec.relations,
        joins=joins,
        selections=spec.selections,
        order_by=order_by,
        group_by=group_by,
        name=f"{spec.name}-diff",
    )


def differential_cases() -> list[QuerySpec]:
    return [
        clause_variant(random_join_query(config), config.seed)
        for config in SEED_GRID
    ]


# -- the independent Ω-closure oracle ------------------------------------------


def closure_orderings(
    plan: PlanNode, spec: QuerySpec, info: QueryOrderInfo
) -> frozenset[Ordering]:
    """Logical orderings of a plan's output, from first principles.

    Recomputes the state bottom-up over the plan *tree* using the explicit
    closure ``omega`` — no DFSM, no Simmen ADT — replaying the same FD-set
    applications ``PlanGenerator`` performs: scans apply their relation's
    constant bindings, sorts replay every FD set holding for their input,
    joins carry the order of their (left) order-carrying input and apply
    the other side's held FD sets plus the newly evaluated predicates.
    """
    graph = JoinGraph(spec)

    def held_fdsets(mask: int) -> list[FDSet]:
        held = []
        for i in iter_bits(mask):
            fdset = info.scan_fdsets.get(graph.aliases[i])
            if fdset is not None:
                held.append(fdset)
        held.extend(info.join_fdsets[join] for join in graph.edges_within(mask))
        return held

    def apply_all(state: frozenset[Ordering], fdsets) -> frozenset[Ordering]:
        for fdset in fdsets:
            if fdset.items:
                state = omega(state, [fdset])
        return state

    def walk(node: PlanNode) -> frozenset[Ordering]:
        if node.op == SCAN:
            fdset = info.scan_fdsets.get(node.alias)
            return apply_all(
                frozenset({EMPTY_ORDERING}), [fdset] if fdset else []
            )
        if node.op == INDEX_SCAN:
            fdset = info.scan_fdsets.get(node.alias)
            return apply_all(
                omega([node.ordering], ()), [fdset] if fdset else []
            )
        if node.op == SORT:
            return apply_all(
                omega([node.ordering], ()), held_fdsets(node.relations)
            )
        if node.op in JOIN_OPS:
            state = walk(node.left)
            fdsets = held_fdsets(node.right.relations)
            fdsets.extend(info.join_fdsets[p] for p in node.predicates)
            return apply_all(state, fdsets)
        raise AssertionError(f"unexpected operator {node.op}")  # pragma: no cover

    return walk(plan)


# -- the differential suite ----------------------------------------------------


def test_fsm_and_simmen_agree_on_cost_over_200_seeded_queries():
    """Zero cost mismatches across the whole grid (the Section 7 claim)."""
    mismatches = []
    for spec in differential_cases():
        fsm = PlanGenerator(spec, FsmBackend()).run()
        simmen = PlanGenerator(spec, SimmenBackend()).run()
        if round(fsm.best_plan.cost, 6) != round(simmen.best_plan.cost, 6):
            mismatches.append(
                (spec.name, fsm.best_plan.cost, simmen.best_plan.cost)
            )
    assert mismatches == [], (
        f"{len(mismatches)} cost mismatch(es) out of {len(SEED_GRID)} "
        f"queries: {mismatches[:5]}"
    )


@pytest.mark.parametrize("grid_slice", range(4))
def test_both_backends_satisfy_order_by(grid_slice):
    """Every best plan provably delivers the ORDER BY (Ω-closure oracle).

    Split into four slices so a failure localizes without parametrizing
    240 test items.
    """
    cases = differential_cases()[grid_slice::4]
    for spec in cases:
        for backend in (FsmBackend(), SimmenBackend()):
            result = PlanGenerator(spec, backend).run()
            orderings = closure_orderings(result.best_plan, spec, result.info)
            assert spec.order_by in orderings, (
                f"{backend.name} plan for {spec.name} does not satisfy "
                f"ORDER BY {spec.order_by!r}\n{result.best_plan.explain()}"
            )


def test_both_backends_plan_the_group_by():
    """GROUP BY queries aggregate on exactly the query's keys.

    With the groupings extension on, both backends must produce a plan
    whose top is an aggregate over the ``GROUP BY`` attribute set (FSM may
    choose a *streaming* aggregate where it can prove groupedness — that is
    the extension's point, so costs are not compared here).
    """
    config = PlanGenConfig(enable_aggregation=True)
    cases = [s for s in differential_cases() if s.group_by][:24]
    assert len(cases) >= 20
    for spec in cases:
        for backend in (FsmBackend(), SimmenBackend()):
            result = PlanGenerator(spec, backend, config=config).run()
            top = result.best_plan
            if top.op == SORT:  # ORDER BY enforcer above the aggregate
                top = top.left
            assert top.op in AGGREGATE_OPS, (
                f"{backend.name} plan for {spec.name} has no aggregate:\n"
                f"{result.best_plan.explain()}"
            )
            assert top.detail == ", ".join(str(a) for a in spec.group_by)


def test_fsm_search_space_is_never_larger_on_the_grid():
    """The flip side of equal quality: FSM never creates more plans."""
    for spec in differential_cases()[::8]:
        fsm = PlanGenerator(spec, FsmBackend()).run()
        simmen = PlanGenerator(spec, SimmenBackend()).run()
        assert fsm.stats.plans_created <= simmen.stats.plans_created


def test_lazy_fsm_matches_simmen_and_eager_fsm_on_the_full_grid():
    """The lazy preparation path through the same oracle, full grid.

    Three-way check per seeded query: the lazily-prepared FSM backend must
    (a) match Simmen's optimal cost — the cost oracle now covers the new
    path end-to-end — and (b) produce a *bit-identical plan tree* to the
    eagerly-prepared FSM backend (same operators, same shapes, same costs:
    the lazy machine is a relabeling, so DP pruning decisions cannot
    differ).  It must also never materialize more DFSM states than the
    eager machine holds in total.
    """
    mismatches = []
    for spec in differential_cases():
        eager = PlanGenerator(spec, FsmBackend()).run()
        lazy = PlanGenerator(spec, FsmBackend(prepare_mode="lazy")).run()
        simmen = PlanGenerator(spec, SimmenBackend()).run()
        if round(lazy.best_plan.cost, 6) != round(simmen.best_plan.cost, 6):
            mismatches.append(("simmen", spec.name))
        if lazy.best_plan.explain() != eager.best_plan.explain():
            mismatches.append(("eager", spec.name))
        assert eager.stats.states_total is not None
        assert lazy.stats.states_total is None  # lazy never forces the count
        assert lazy.stats.states_materialized <= eager.stats.states_total
    assert mismatches == [], (
        f"{len(mismatches)} divergence(s) out of {len(SEED_GRID)} queries: "
        f"{mismatches[:5]}"
    )
