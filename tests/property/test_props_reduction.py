"""Property tests for the Simmen reduction algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.reduction import ReductionContext, reduce_ordering, reduced_contains
from repro.core.fd import ConstantBinding, Equation
from repro.core.inference import omega

from .strategies import fd_items, orderings


@st.composite
def contexts(draw):
    items = draw(st.frozensets(fd_items(), min_size=0, max_size=4))
    return ReductionContext(items)


@st.composite
def equation_only_contexts(draw):
    items = draw(
        st.frozensets(
            fd_items().filter(lambda i: isinstance(i, Equation)),
            min_size=0,
            max_size=3,
        )
    )
    return ReductionContext(items)


class TestReductionLaws:
    @given(orderings(), contexts())
    @settings(deadline=None)
    def test_idempotent(self, order, context):
        once = reduce_ordering(order, context)
        assert reduce_ordering(once, context) == once

    @given(orderings(), contexts())
    @settings(deadline=None)
    def test_result_is_subsequence_of_normalized_input(self, order, context):
        normalized = list(context.normalize(order))
        reduced = list(reduce_ordering(order, context))
        it = iter(normalized)
        assert all(any(a == b for b in it) for a in reduced)

    @given(orderings(), contexts())
    @settings(deadline=None)
    def test_reduction_never_grows(self, order, context):
        assert len(reduce_ordering(order, context)) <= len(order)

    @given(orderings(), contexts())
    @settings(deadline=None)
    def test_self_contains(self, order, context):
        """Any physical ordering satisfies itself."""
        assert reduced_contains(order, order, context)

    @given(orderings(min_size=2), contexts())
    @settings(deadline=None)
    def test_prefix_contains(self, order, context):
        """Any physical ordering satisfies its prefixes."""
        for prefix in order.prefixes():
            assert reduced_contains(order, prefix, context)


class TestAgreementWithOmegaOnEquations:
    """With only equations (no constants, no compound FDs) the reduction is
    confluent and must agree exactly with Ω-closure membership."""

    @given(orderings(max_size=2), orderings(max_size=2), equation_only_contexts())
    @settings(max_examples=80, deadline=None)
    def test_contains_equals_omega_membership(self, physical, required, context):
        got = reduced_contains(physical, required, context)
        closure = omega([physical], context.items)
        assert got == (required in closure), (
            physical,
            required,
            sorted(map(str, context.items)),
        )


class TestConstantsAreStronger:
    """Reduction exploits constant-prefix stripping, so with constants it
    can only be *more* complete than Ω (never less)."""

    @given(orderings(max_size=2), orderings(max_size=2), contexts())
    @settings(max_examples=80, deadline=None)
    def test_omega_membership_implies_reduced_contains(
        self, physical, required, context
    ):
        has_compound = any(
            lhs and len(lhs) >= 1 and True for lhs, _ in context.fds
        )
        if has_compound:
            return  # non-confluence can cause false negatives there
        if required in omega([physical], context.items):
            assert reduced_contains(physical, required, context)
