"""Property tests for the plan generator across random join graphs."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plangen import FsmBackend, OracleBackend, PlanGenerator, SimmenBackend
from repro.workloads.generator import GeneratorConfig, random_join_query


class UnprunedOracle(OracleBackend):
    """Keeps every plan (unique key per emission) — exhaustive reference."""

    name = "unpruned"

    def __init__(self) -> None:
        self._counter = itertools.count()

    def plan_key(self, state):
        return next(self._counter)


@st.composite
def query_configs(draw):
    n = draw(st.integers(3, 5))
    max_edges = n * (n - 1) // 2
    extra = draw(st.integers(0, min(2, max_edges - (n - 1))))
    seed = draw(st.integers(0, 500))
    return GeneratorConfig(n_relations=n, n_edges=n - 1 + extra, seed=seed)


class TestPlanGeneratorProperties:
    @given(query_configs())
    @settings(max_examples=15, deadline=None)
    def test_all_backends_agree_on_optimal_cost(self, config):
        spec = random_join_query(config)
        costs = set()
        for backend in (FsmBackend(), SimmenBackend(), OracleBackend()):
            result = PlanGenerator(spec, backend).run()
            costs.add(round(result.best_plan.cost, 6))
        assert len(costs) == 1

    @given(query_configs())
    @settings(max_examples=10, deadline=None)
    def test_order_pruning_preserves_optimality(self, config):
        spec = random_join_query(config)
        pruned = PlanGenerator(spec, FsmBackend()).run()
        exhaustive = PlanGenerator(spec, UnprunedOracle()).run()
        assert abs(pruned.best_plan.cost - exhaustive.best_plan.cost) < 1e-6

    @given(query_configs())
    @settings(max_examples=15, deadline=None)
    def test_fsm_search_space_never_larger(self, config):
        spec = random_join_query(config)
        fsm = PlanGenerator(spec, FsmBackend()).run()
        simmen = PlanGenerator(spec, SimmenBackend()).run()
        assert fsm.stats.plans_created <= simmen.stats.plans_created

    @given(query_configs())
    @settings(max_examples=10, deadline=None)
    def test_plan_covers_all_relations_and_predicates(self, config):
        spec = random_join_query(config)
        result = PlanGenerator(spec, FsmBackend()).run()
        plan = result.best_plan
        scanned = {n.alias for n in plan.operators() if n.alias}
        assert scanned == set(spec.aliases)
        applied = {p for n in plan.operators() for p in n.predicates}
        assert applied == set(spec.joins)
