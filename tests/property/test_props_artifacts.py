"""Property: a round-tripped prepared component is bit-identical.

The artifact store's whole correctness claim is that serving a decoded
component is indistinguishable from serving the one that was encoded.
These properties pin it over randomized instances: for any preparation
(eager or lazy) the encode→decode round trip preserves every observable —
the represented state sets, every ``contains`` answer along arbitrary
operation sequences, and the table layout itself — and a second encode of
the decoded component reproduces the identical bytes (so artifacts are
stable across save/load/save generations, not just one hop).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.optimizer import OrderOptimizer
from repro.core.serialize import decode_optimizer, encode_optimizer

from .strategies import instances
from .test_props_lazy_prepare import _observations


@given(instances())
@settings(max_examples=40, deadline=None)
def test_round_trip_preserves_every_observation(instance):
    interesting, fdsets, walk = instance
    original = OrderOptimizer.prepare(interesting, fdsets)
    decoded = decode_optimizer(*encode_optimizer(original))

    assert decoded.tables.testable_orders == original.tables.testable_orders
    assert decoded.fingerprint == original.fingerprint
    assert _observations(decoded, interesting, fdsets, walk) == _observations(
        original, interesting, fdsets, walk
    )


@given(instances())
@settings(max_examples=25, deadline=None)
def test_frozen_lazy_round_trip_answers_like_eager(instance):
    # An artifact saved from a lazy session must serve later sessions the
    # same answers an eager build would — freezing densifies the machine.
    interesting, fdsets, walk = instance
    lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
    # Drive the lazy machine first so the encoder sees a partially (or
    # fully) materialized component, not just the start state.
    _observations(lazy, interesting, fdsets, walk)
    decoded = decode_optimizer(*encode_optimizer(lazy))
    eager = OrderOptimizer.prepare(interesting, fdsets)
    assert _observations(decoded, interesting, fdsets, walk) == _observations(
        eager, interesting, fdsets, walk
    )


@given(instances())
@settings(max_examples=25, deadline=None)
def test_reencoding_is_byte_stable_across_generations(instance):
    interesting, fdsets, _ = instance
    original = OrderOptimizer.prepare(interesting, fdsets)
    first = encode_optimizer(original)
    decoded = decode_optimizer(*first)
    second = encode_optimizer(decoded)
    # meta, pickle section, and table section all reproduce exactly: a
    # load/save cycle rewrites the identical artifact body.
    assert second[0] == first[0]
    assert second[2] == first[2]
    # The pickle section is not byte-compared (pickling does not normalize
    # internal dict ordering) — decoding it again must still agree.
    redecoded = decode_optimizer(*second)
    assert tuple(redecoded.tables.contains_rows) == tuple(
        decoded.tables.contains_rows
    )
    assert [list(row) for row in redecoded.tables.transitions] == [
        list(row) for row in decoded.tables.transitions
    ]
