"""Property tests for execution-level soundness of the inference rules.

The key law: take a stream physically sorted on ``o``; restrict it so that
a set of FD items *actually holds on the data* (equal columns for
equations, one value for constants).  Then every ordering in
``Ω({o}, items)`` must hold on the restricted stream — the Section 2 rules
are sound with respect to real tuples.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Attribute
from repro.core.fd import ConstantBinding, Equation, FunctionalDependency
from repro.core.inference import omega
from repro.core.ordering import Ordering
from repro.exec.iterators import sort_rows
from repro.exec.verify import satisfies_ordering, satisfies_ordering_formal

POOL = tuple(Attribute(name) for name in "abcd")


@st.composite
def streams(draw):
    n_rows = draw(st.integers(0, 12))
    rng = random.Random(draw(st.integers(0, 10_000)))
    rows = [{a: rng.randrange(3) for a in POOL} for _ in range(n_rows)]
    return rows


@st.composite
def pool_orderings(draw, max_size=3):
    attrs = draw(
        st.lists(st.sampled_from(POOL), min_size=1, max_size=max_size, unique=True)
    )
    return Ordering(attrs)


class TestVerifierAgreement:
    @given(streams(), pool_orderings())
    @settings(max_examples=80, deadline=None)
    def test_fast_equals_formal(self, rows, order):
        assert satisfies_ordering(rows, order) == satisfies_ordering_formal(
            rows, order
        )

    @given(streams(), pool_orderings())
    @settings(max_examples=60, deadline=None)
    def test_sorted_stream_satisfies_its_ordering_and_prefixes(self, rows, order):
        sorted_stream = sort_rows(rows, order)
        assert satisfies_ordering(sorted_stream, order)
        for prefix in order.prefixes():
            assert satisfies_ordering(sorted_stream, prefix)


class TestInferenceSoundOnData:
    @given(streams(), pool_orderings(max_size=2), st.data())
    @settings(max_examples=60, deadline=None)
    def test_omega_orderings_hold_on_restricted_stream(self, rows, order, data):
        # Pick FD items and restrict the rows so they hold physically.
        a, b = POOL[0], POOL[1]
        kind = data.draw(st.sampled_from(("equation", "constant", "fd")))
        if kind == "equation":
            item = Equation(a, b)
            rows = [r for r in rows if r[a] == r[b]]
        elif kind == "constant":
            item = ConstantBinding(a)
            rows = [r for r in rows if r[a] == 1]
        else:
            # enforce the FD c -> d by overwriting d as a function of c
            c, d = POOL[2], POOL[3]
            item = FunctionalDependency(frozenset({c}), d)
            rows = [{**r, d: (r[c] * 7 + 1) % 5} for r in rows]

        stream = sort_rows(rows, order)
        for derived in omega([order], [item]):
            assert satisfies_ordering(stream, derived), (
                f"{derived!r} claimed by Ω but violated on data ({kind})"
            )
