"""Property tests for execution-level soundness of the inference rules,
and the execution-backed differential oracle across the engines.

Two layers:

* the original law — take a stream physically sorted on ``o``; restrict it
  so a set of FD items *actually holds on the data*; then every ordering in
  ``Ω({o}, items)`` must hold on the restricted stream;
* the engine oracle — for random datasets and random queries, the chosen
  plan, a forced-full-sort variant of it, and the Simmen-baseline plan must
  all produce identical result multisets on **every** engine (the row-dict
  reference, the vectorized streaming engine, and — when NumPy is
  installed — the array-kernel engine); every ordering the ADT claims must
  hold on each engine's actual tuple stream; and neither batch engine may
  sort more often than the reference.  Assertion messages name the engine
  so a CI differential failure identifies the diverging backend directly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Attribute
from repro.core.fd import ConstantBinding, Equation, FunctionalDependency
from repro.core.inference import omega
from repro.core.ordering import Ordering
from repro.exec import (
    NUMPY_AVAILABLE,
    ExecutionConfig,
    NumpyEngine,
    ParallelNumpyEngine,
    ParallelVectorEngine,
    RowEngine,
    VectorEngine,
    forced_sort_variant,
    generate_dataset,
)
from repro.exec.iterators import sort_rows
from repro.exec.verify import satisfies_ordering, satisfies_ordering_formal
from repro.plangen import FsmBackend, PlanGenerator, SimmenBackend
from repro.query.predicates import EqualsConstant
from repro.query.query import QuerySpec
from repro.workloads import GeneratorConfig, random_join_query

POOL = tuple(Attribute(name) for name in "abcd")


@st.composite
def streams(draw):
    n_rows = draw(st.integers(0, 12))
    rng = random.Random(draw(st.integers(0, 10_000)))
    rows = [{a: rng.randrange(3) for a in POOL} for _ in range(n_rows)]
    return rows


@st.composite
def pool_orderings(draw, max_size=3):
    attrs = draw(
        st.lists(st.sampled_from(POOL), min_size=1, max_size=max_size, unique=True)
    )
    return Ordering(attrs)


class TestVerifierAgreement:
    @given(streams(), pool_orderings())
    @settings(max_examples=80, deadline=None)
    def test_fast_equals_formal(self, rows, order):
        assert satisfies_ordering(rows, order) == satisfies_ordering_formal(
            rows, order
        )

    @given(streams(), pool_orderings())
    @settings(max_examples=60, deadline=None)
    def test_sorted_stream_satisfies_its_ordering_and_prefixes(self, rows, order):
        sorted_stream = sort_rows(rows, order)
        assert satisfies_ordering(sorted_stream, order)
        for prefix in order.prefixes():
            assert satisfies_ordering(sorted_stream, prefix)


class TestInferenceSoundOnData:
    @given(streams(), pool_orderings(max_size=2), st.data())
    @settings(max_examples=60, deadline=None)
    def test_omega_orderings_hold_on_restricted_stream(self, rows, order, data):
        # Pick FD items and restrict the rows so they hold physically.
        a, b = POOL[0], POOL[1]
        kind = data.draw(st.sampled_from(("equation", "constant", "fd")))
        if kind == "equation":
            item = Equation(a, b)
            rows = [r for r in rows if r[a] == r[b]]
        elif kind == "constant":
            item = ConstantBinding(a)
            rows = [r for r in rows if r[a] == 1]
        else:
            # enforce the FD c -> d by overwriting d as a function of c
            c, d = POOL[2], POOL[3]
            item = FunctionalDependency(frozenset({c}), d)
            rows = [{**r, d: (r[c] * 7 + 1) % 5} for r in rows]

        stream = sort_rows(rows, order)
        for derived in omega([order], [item]):
            assert satisfies_ordering(stream, derived), (
                f"{derived!r} claimed by Ω but violated on data ({kind})"
            )


# -- the execution-backed differential oracle ---------------------------------


@st.composite
def exec_cases(draw):
    """A random query (sometimes with ORDER BY and a pushed-down selection)
    plus a random dataset sized for dense joins."""
    n_relations = draw(st.integers(2, 4))
    max_edges = n_relations * (n_relations - 1) // 2
    n_edges = draw(st.integers(n_relations - 1, max_edges))
    seed = draw(st.integers(0, 10_000))
    spec = random_join_query(
        GeneratorConfig(n_relations=n_relations, n_edges=n_edges, seed=seed)
    )
    join_attrs = [a for j in spec.joins for a in (j.left, j.right)]
    if draw(st.booleans()):
        first = draw(st.sampled_from(join_attrs))
        rest = [a for a in join_attrs if a != first]
        order_attrs = [first] + (
            [draw(st.sampled_from(rest))] if rest and draw(st.booleans()) else []
        )
        spec.order_by = Ordering(dict.fromkeys(order_attrs))
    rows = draw(st.integers(0, 30))
    domain = draw(st.integers(2, 8))
    if draw(st.booleans()):
        # A selection the scan must push down (int constants stay inside
        # the generated integer domain, so they hit real rows).
        attribute = draw(st.sampled_from(join_attrs))
        spec = QuerySpec(
            catalog=spec.catalog,
            relations=spec.relations,
            joins=spec.joins,
            selections=(EqualsConstant(attribute, draw(st.integers(0, domain - 1))),),
            order_by=spec.order_by,
            group_by=spec.group_by,
            name=spec.name,
        )
    data_seed = draw(st.integers(0, 10_000))
    dataset = generate_dataset(
        spec, rows_per_table=rows, default_domain=domain, seed=data_seed
    )
    batch_size = draw(st.sampled_from((1, 3, 16, 1024)))
    return spec, dataset, batch_size


def _oracle_engines(config):
    """The reference engine first, then every other available engine."""
    engines = [("row", RowEngine(config)), ("vector", VectorEngine(config))]
    if NUMPY_AVAILABLE:
        engines.append(("numpy", NumpyEngine(config)))
    return engines


class TestEngineDifferentialOracle:
    """All engines (row reference, vectorized, NumPy when available) on the
    chosen plan, its forced-full-sort variant, and the Simmen-baseline
    plan."""

    @given(exec_cases())
    @settings(max_examples=40, deadline=None)
    def test_engines_agree_and_claims_hold(self, case):
        spec, dataset, batch_size = case
        config = ExecutionConfig(batch_size=batch_size, check_merge_inputs=True)
        engines = _oracle_engines(config)

        backend = FsmBackend()
        plan = PlanGenerator(spec, backend).run().best_plan
        results = {
            name: engine.execute(plan, spec, dataset) for name, engine in engines
        }
        row = results["row"]
        reference = row.multiset()
        for name, result in results.items():
            assert result.multiset() == reference, (
                f"{name} engine diverged from the row reference"
            )
            if name != "row":
                assert result.stats.sorts <= row.stats.sorts, (
                    f"{name} engine sorted more than the row reference"
                )

        # Every ordering the ADT claims for the root must hold on the
        # physical stream — on every engine.
        optimizer = backend.optimizer
        for claimed in optimizer.satisfied_orders(plan.state):
            for name, result in results.items():
                assert satisfies_ordering(result.rows(), claimed), (
                    f"{name} engine violated claimed ordering {claimed!r}"
                )
        if spec.order_by is not None:
            for name, result in results.items():
                assert satisfies_ordering(result.rows(), spec.order_by), (
                    f"{name} engine violated the requested ORDER BY"
                )

        # A forced full sort may reorder, never change, the result.
        ordering = spec.order_by or Ordering([spec.joins[0].left])
        forced = forced_sort_variant(plan, ordering)
        for name, engine in engines:
            result = engine.execute(forced, spec, dataset)
            assert result.multiset() == reference, (
                f"{name} engine changed the result under a forced sort"
            )
            assert satisfies_ordering(result.rows(), ordering), (
                f"{name} engine ignored the forced sort ordering"
            )

        # The baseline backend's plan answers the same query on all engines.
        simmen_plan = PlanGenerator(spec, SimmenBackend()).run().best_plan
        for name, engine in engines:
            assert (
                engine.execute(simmen_plan, spec, dataset).multiset() == reference
            ), f"{name} engine diverged on the Simmen-baseline plan"


class TestMorselParallelOracle:
    """Morsel-parallel execution against the serial engines.

    Worker counts {1, 2, 4} × morsel sizes {1, 7, 1000}: the parallel
    engines must match the row reference's result multiset bit-for-bit,
    match their serial twin's *emission order* tuple-for-tuple, preserve
    every ordering the ADT claims (and any requested ORDER BY), and never
    sort more than the reference.  The generated datasets draw join keys
    from domains of 2–8 over up to 30 rows, so one-row and seven-row
    morsels routinely cut *inside* runs of duplicate keys — the case where
    a wrong merge or re-sequencing step would show up as reordered or
    duplicated join groups.
    """

    @given(
        exec_cases(),
        st.sampled_from((1, 2, 4)),
        st.sampled_from((1, 7, 1000)),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_matches_serial_bit_for_bit(self, case, workers, morsel_size):
        spec, dataset, batch_size = case
        serial_config = ExecutionConfig(
            batch_size=batch_size, check_merge_inputs=True, workers=1
        )
        parallel_config = ExecutionConfig(
            batch_size=batch_size,
            check_merge_inputs=True,
            workers=workers,
            morsel_size=morsel_size,
            parallel_mode="thread",
        )
        backend = FsmBackend()
        plan = PlanGenerator(spec, backend).run().best_plan
        row = RowEngine(serial_config).execute(plan, spec, dataset)
        pairs = [
            (
                "parallel-vector",
                ParallelVectorEngine(parallel_config),
                VectorEngine(serial_config),
            )
        ]
        if NUMPY_AVAILABLE:
            pairs.append(
                (
                    "parallel-numpy",
                    ParallelNumpyEngine(parallel_config),
                    NumpyEngine(serial_config),
                )
            )
        claimed = list(backend.optimizer.satisfied_orders(plan.state))
        for name, parallel_engine, serial_engine in pairs:
            result = parallel_engine.execute(plan, spec, dataset)
            serial = serial_engine.execute(plan, spec, dataset)
            assert result.multiset() == row.multiset(), (
                f"{name} (workers={workers}, morsel={morsel_size}) diverged "
                "from the row reference"
            )
            assert result.rows() == serial.rows(), (
                f"{name} (workers={workers}, morsel={morsel_size}) changed "
                "the serial emission order"
            )
            assert result.stats.sorts <= row.stats.sorts, name
            assert result.stats.workers == workers, name
            for ordering in claimed:
                assert satisfies_ordering(result.rows(), ordering), (
                    f"{name} violated claimed ordering {ordering!r} at "
                    f"workers={workers}, morsel={morsel_size}"
                )
            if spec.order_by is not None:
                assert satisfies_ordering(result.rows(), spec.order_by), (
                    f"{name} violated the requested ORDER BY at "
                    f"workers={workers}, morsel={morsel_size}"
                )
