"""Shared hypothesis strategies for order-optimization instances."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.attributes import Attribute
from repro.core.fd import ConstantBinding, Equation, FDSet, FunctionalDependency
from repro.core.interesting import InterestingOrders
from repro.core.ordering import Ordering

ATTRIBUTE_POOL = tuple(Attribute(name) for name in "abcdexy")


@st.composite
def orderings(draw, min_size=1, max_size=3, pool=ATTRIBUTE_POOL):
    attrs = draw(
        st.lists(
            st.sampled_from(pool), min_size=min_size, max_size=max_size, unique=True
        )
    )
    return Ordering(attrs)


@st.composite
def fd_items(draw, pool=ATTRIBUTE_POOL):
    kind = draw(st.sampled_from(("fd", "equation", "constant")))
    if kind == "constant":
        return ConstantBinding(draw(st.sampled_from(pool)))
    if kind == "equation":
        pair = draw(
            st.lists(st.sampled_from(pool), min_size=2, max_size=2, unique=True)
        )
        return Equation(pair[0], pair[1])
    lhs = draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=2, unique=True)
    )
    rhs = draw(st.sampled_from([a for a in pool if a not in lhs]))
    return FunctionalDependency(frozenset(lhs), rhs)


@st.composite
def fdset_lists(draw, min_sets=1, max_sets=3, pool=ATTRIBUTE_POOL):
    return draw(
        st.lists(
            st.builds(
                FDSet,
                st.frozensets(fd_items(pool=pool), min_size=1, max_size=2),
            ),
            min_size=min_sets,
            max_size=max_sets,
        )
    )


@st.composite
def interesting_orders(draw, pool=ATTRIBUTE_POOL):
    produced = draw(
        st.lists(orderings(pool=pool), min_size=1, max_size=3, unique_by=repr)
    )
    tested = draw(
        st.lists(orderings(pool=pool), min_size=0, max_size=2, unique_by=repr)
    )
    return InterestingOrders.of(produced, tested)


@st.composite
def instances(draw, pool=ATTRIBUTE_POOL):
    """(interesting orders, fd sets, symbol walk) triples."""
    interesting = draw(interesting_orders(pool=pool))
    fdsets = draw(fdset_lists(pool=pool))
    walk = draw(
        st.lists(st.integers(0, len(fdsets) - 1), min_size=0, max_size=4)
    )
    return interesting, fdsets, walk
