"""Property tests: the Ω closure laws and FSM ≡ oracle equivalence.

The central property of the whole reproduction: for arbitrary interesting
orders, FD sets, and operator sequences, the prepared DFSM answers
``contains`` exactly like the executable specification ``Ω`` — with and
without the Section 5.7 pruning heuristics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import derive_item, omega, prefix_closure
from repro.core.optimizer import BuilderOptions, OrderOptimizer

from .strategies import fd_items, fdset_lists, instances, orderings


class TestClosureLaws:
    @given(orderings())
    def test_prefix_closure_idempotent(self, order):
        once = prefix_closure([order])
        assert prefix_closure(once) == once

    @given(orderings(), fdset_lists())
    @settings(deadline=None)
    def test_omega_contains_seed_and_prefixes(self, order, fdsets):
        closure = omega([order], fdsets)
        assert order in closure
        assert prefix_closure([order]) <= closure

    @given(orderings(), fdset_lists())
    @settings(max_examples=50, deadline=None)
    def test_omega_idempotent(self, order, fdsets):
        once = omega([order], fdsets)
        assert omega(once, fdsets) == once

    @given(orderings(), fdset_lists(max_sets=2), fdset_lists(max_sets=2))
    @settings(max_examples=40, deadline=None)
    def test_omega_monotone_in_fds(self, order, fds_a, fds_b):
        assert omega([order], fds_a) <= omega([order], fds_a + fds_b)

    @given(orderings(min_size=2), fd_items())
    def test_derivations_preserve_relative_order(self, order, item):
        """Insertions/substitutions never reorder existing attributes."""
        source_positions = {a: i for i, a in enumerate(order)}
        for derivation in derive_item(order, item):
            result = derivation.result
            common = [a for a in result if a in source_positions]
            indices = [source_positions[a] for a in common]
            assert indices == sorted(indices)

    @given(orderings(), fd_items())
    def test_derivations_are_duplicate_free(self, order, item):
        for derivation in derive_item(order, item):
            attrs = derivation.result.attributes
            assert len(set(attrs)) == len(attrs)


class TestFsmMatchesOracle:
    def _walk_and_compare(self, interesting, fdsets, walk, options):
        optimizer = OrderOptimizer.prepare(interesting, fdsets, options)
        for start in interesting.produced:
            state = optimizer.state_for_produced(optimizer.producer_handle(start))
            oracle = omega([start], ())
            for index in walk:
                fdset = fdsets[index]
                state = optimizer.infer(state, optimizer.fdset_handle(fdset))
                oracle = omega(oracle, [fdset]) if fdset.items else oracle
                for order in interesting.all_orders:
                    got = optimizer.contains(state, optimizer.ordering_handle(order))
                    expected = order in oracle
                    assert got == expected, (
                        f"contains({order!r}) = {got}, oracle says {expected} "
                        f"(start {start!r}, walk {walk})"
                    )

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_pruned_fsm_matches_oracle(self, instance):
        interesting, fdsets, walk = instance
        self._walk_and_compare(interesting, fdsets, walk, BuilderOptions())

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_unpruned_fsm_matches_oracle(self, instance):
        interesting, fdsets, walk = instance
        self._walk_and_compare(
            interesting, fdsets, walk, BuilderOptions().without_pruning()
        )

    @given(instances(), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_scan_plus_constants_matches_oracle(self, instance, salt):
        """The empty-ordering entry point agrees with Ω from the empty
        ordering (constants create orderings out of nothing)."""
        from repro.core.ordering import EMPTY_ORDERING

        interesting, fdsets, walk = instance
        optimizer = OrderOptimizer.prepare(interesting, fdsets, BuilderOptions())
        state = optimizer.scan_state()
        oracle = frozenset({EMPTY_ORDERING})
        for index in walk:
            fdset = fdsets[index]
            state = optimizer.infer(state, optimizer.fdset_handle(fdset))
            oracle = omega(oracle, [fdset]) if fdset.items else oracle
            for order in interesting.all_orders:
                got = optimizer.contains(state, optimizer.ordering_handle(order))
                assert got == (order in oracle)
