"""Unit + differential tests for the pluggable enumeration layer.

The heart of this module is the differential oracle demanded by the DPccp
refactor: on hundreds of seeded random graphs across every topology, the
DPccp enumerator must be *indistinguishable* from the naive DPsub oracle —
identical optimal costs under both ordering backends, identical pair sets,
and never more visited pairs.
"""

import random

import pytest

from repro.core.optimizer import OrderOptimizer, preparation_fingerprint
from repro.plangen import (
    ENUMERATORS,
    DPccp,
    DPsub,
    FsmBackend,
    Greedy,
    PlanGenConfig,
    SimmenBackend,
    generate_plan,
    make_strategy,
    resolve_enumerator,
)
from repro.query.joingraph import JoinGraph
from repro.workloads.generator import (
    TOPOLOGIES,
    GeneratorConfig,
    random_join_query,
    topology_query,
)


def graph_of(spec, **kwargs):
    return JoinGraph(spec, **kwargs)


def pair_list(strategy_name, graph):
    cardinality = lambda mask: float(mask)  # only greedy consults it
    return list(make_strategy(strategy_name).pairs(graph, cardinality))


class TestResolution:
    def test_auto_resolves_by_relation_count(self):
        assert resolve_enumerator("auto", 5, 12) == "dpccp"
        assert resolve_enumerator("auto", 12, 12) == "dpccp"
        assert resolve_enumerator("auto", 13, 12) == "greedy"

    def test_explicit_names_pass_through(self):
        for name in ENUMERATORS:
            assert resolve_enumerator(name, 100, 2) == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown enumerator"):
            resolve_enumerator("bushy", 5, 12)

    def test_registry_names(self):
        assert set(ENUMERATORS) == {"dpsub", "dpccp", "greedy"}
        assert isinstance(make_strategy("dpccp"), DPccp)
        assert isinstance(make_strategy("dpsub"), DPsub)
        assert isinstance(make_strategy("greedy"), Greedy)


class TestPairContracts:
    """Structural contract of pairs(): validity, uniqueness, DP-valid order."""

    def graphs(self):
        for topology in TOPOLOGIES:
            n = 6 if topology != "clique" else 5
            yield graph_of(topology_query(topology, n, seed=1))
        yield graph_of(
            random_join_query(GeneratorConfig(n_relations=6, n_edges=8, seed=3))
        )

    def test_pairs_are_valid_and_unique(self):
        for graph in self.graphs():
            for name in ("dpsub", "dpccp"):
                seen = set()
                for left, right in pair_list(name, graph):
                    assert left and right and left & right == 0
                    assert graph.connected(left) and graph.connected(right)
                    assert graph.connects(left, right)
                    key = frozenset((left, right))
                    assert key not in seen, f"{name} duplicated {left:b}|{right:b}"
                    seen.add(key)

    def test_dpccp_pair_set_equals_dpsub(self):
        for graph in self.graphs():
            dpsub = {frozenset(p) for p in pair_list("dpsub", graph)}
            dpccp = {frozenset(p) for p in pair_list("dpccp", graph)}
            assert dpccp == dpsub

    def test_dp_valid_emission_order(self):
        """When a pair arrives, both sides' DP tables must be complete:
        every pair whose union equals a side has already been emitted."""
        for graph in self.graphs():
            for name in ("dpsub", "dpccp"):
                pairs = pair_list(name, graph)
                last_pair_of_union = {}
                for index, (left, right) in enumerate(pairs):
                    last_pair_of_union[left | right] = index
                for index, (left, right) in enumerate(pairs):
                    for side in (left, right):
                        if side.bit_count() < 2:
                            continue
                        assert last_pair_of_union[side] < index, (
                            f"{name}: pair #{index} uses incomplete side "
                            f"{side:b}"
                        )

    def test_chain_ccp_count_is_cubic(self):
        # chains have exactly (n^3 - n) / 6 csg-cmp pairs
        for n in (4, 8, 12):
            graph = graph_of(topology_query("chain", n))
            assert len(pair_list("dpccp", graph)) == (n**3 - n) // 6

    def test_greedy_yields_one_join_tree(self):
        for graph in self.graphs():
            pairs = pair_list("greedy", graph)
            assert len(pairs) == graph.n - 1
            covered = set()
            for left, right in pairs:
                assert left & right == 0
                assert graph.connects(left, right)
                covered.add(left | right)
            assert graph.all_mask in covered

    def test_greedy_prefers_smallest_join(self):
        graph = graph_of(topology_query("star", 5, seed=0))
        cards = {}

        def cardinality(mask):
            cards.setdefault(mask, float(mask.bit_count() * 100 - mask))
            return cards[mask]

        first = next(iter(Greedy().pairs(graph, cardinality)))
        best = min(
            (1 | (1 << i) for i in range(1, 5)),
            key=cardinality,
        )
        assert first[0] | first[1] == best


def _random_topology_spec(seed):
    """Deterministic spec #seed: cycles through every topology, n <= 10.

    Size caps per topology keep the four-run differential affordable: the
    sparse shapes (DPccp's target) go up to n=10, while dense shapes stop
    where the DPsub oracle's exhaustive scan is still cheap.
    """
    rng = random.Random(10_000 + seed)
    kinds = ("chain", "star", "cycle", "clique", "grid", "random")
    kind = kinds[seed % len(kinds)]
    if kind == "clique":
        return topology_query("clique", rng.randint(3, 5), seed=seed)
    if kind == "grid":
        return topology_query("grid", rng.randint(4, 7), seed=seed)
    if kind == "star":
        return topology_query("star", rng.randint(3, 7), seed=seed)
    if kind == "random":
        n = rng.randint(3, 8)
        extra = rng.randint(0, min(3, n * (n - 1) // 2 - (n - 1)))
        return random_join_query(
            GeneratorConfig(n_relations=n, n_edges=n - 1 + extra, seed=seed)
        )
    if kind == "cycle":
        return topology_query("cycle", rng.randint(3, 8), seed=seed)
    return topology_query("chain", rng.randint(2, 10), seed=seed)


class TestDifferentialOracle:
    """DPccp vs the DPsub oracle on >= 200 seeded graphs, both backends."""

    N_GRAPHS = 200

    @pytest.mark.parametrize("batch", range(8))
    def test_dpccp_matches_dpsub_costs_and_pairs(self, batch):
        batch_size = self.N_GRAPHS // 8
        for seed in range(batch * batch_size, (batch + 1) * batch_size):
            spec = _random_topology_spec(seed)

            # One prepared FSM component per spec, shared by both
            # enumerator runs: preparation is enumerator-independent.
            prepared = {}

            def preparer(info):
                key = preparation_fingerprint(info.interesting, info.fdsets)
                if key not in prepared:
                    prepared[key] = OrderOptimizer.prepare(
                        info.interesting, info.fdsets
                    )
                return prepared[key]

            results = {}
            for backend_name, backend_factory in (
                ("fsm", lambda: FsmBackend(preparer=preparer)),
                ("simmen", SimmenBackend),
            ):
                for enumerator in ("dpsub", "dpccp"):
                    results[backend_name, enumerator] = generate_plan(
                        spec,
                        backend_factory(),
                        config=PlanGenConfig(enumerator=enumerator),
                    )

            for backend_name in ("fsm", "simmen"):
                sub = results[backend_name, "dpsub"]
                ccp = results[backend_name, "dpccp"]
                assert ccp.best_plan.cost == pytest.approx(
                    sub.best_plan.cost
                ), f"{spec.name}: {backend_name} costs diverged"
                assert ccp.stats.pairs_visited <= sub.stats.pairs_visited, (
                    f"{spec.name}: DPccp visited more pairs than DPsub"
                )
                assert ccp.stats.plans_created == sub.stats.plans_created, (
                    f"{spec.name}: {backend_name} search spaces diverged"
                )


class TestGreedyQuality:
    """Greedy is a heuristic: valid plans, never better than exact DP."""

    @pytest.mark.parametrize("seed", range(10))
    def test_greedy_cost_bounded_below_by_exact(self, seed):
        spec = _random_topology_spec(seed)
        exact = generate_plan(
            spec, FsmBackend(), config=PlanGenConfig(enumerator="dpccp")
        )
        greedy = generate_plan(
            spec, FsmBackend(), config=PlanGenConfig(enumerator="greedy")
        )
        assert greedy.best_plan.cost >= exact.best_plan.cost - 1e-6
        assert greedy.best_plan.relations == exact.best_plan.relations
        assert greedy.stats.pairs_visited == len(spec.relations) - 1
        assert greedy.stats.enumerator == "greedy"
