"""Integration tests for the DP plan generator with all three backends."""

import itertools

import pytest

from repro.catalog.schema import Catalog, simple_table
from repro.core.attributes import Attribute
from repro.core.ordering import Ordering, ordering
from repro.plangen import (
    FsmBackend,
    OracleBackend,
    PlanGenConfig,
    SimmenBackend,
    generate_plan,
)
from repro.plangen.plan import INDEX_SCAN, MERGE_JOIN, NL_JOIN, SCAN, SORT
from repro.query.predicates import EqualsConstant, JoinPredicate
from repro.query.query import make_query
from repro.workloads.generator import GeneratorConfig, random_join_query


def two_table_catalog(card_t=10_000, card_u=10_000, index_t=True, index_u=True):
    return (
        Catalog()
        .add(
            simple_table(
                "t", ["a", "k"], card_t, clustered_on="a" if index_t else None
            )
        )
        .add(
            simple_table(
                "u", ["b", "k"], card_u, clustered_on="b" if index_u else None
            )
        )
    )


def two_table_query(catalog, **kwargs):
    join = JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))
    return make_query(catalog, ["t", "u"], [join], **kwargs)


ALL_BACKENDS = [FsmBackend, SimmenBackend, OracleBackend]


class TestSingleRelation:
    def test_scan_only(self):
        catalog = Catalog().add(simple_table("t", ["a"], 500))
        result = generate_plan(make_query(catalog, ["t"]), FsmBackend())
        assert result.best_plan.op == SCAN
        assert result.best_plan.cost == 500.0

    def test_order_by_prefers_index_over_sort(self):
        catalog = Catalog().add(simple_table("t", ["a"], 50_000, clustered_on="a"))
        spec = make_query(catalog, ["t"], order_by=ordering("t.a"))
        result = generate_plan(spec, FsmBackend())
        assert result.best_plan.op == INDEX_SCAN

    def test_order_by_sorts_when_no_index(self):
        catalog = Catalog().add(simple_table("t", ["a"], 1000))
        spec = make_query(catalog, ["t"], order_by=ordering("t.a"))
        result = generate_plan(spec, FsmBackend())
        assert result.best_plan.op == SORT
        assert result.best_plan.ordering == ordering("t.a")

    def test_order_by_without_enforcers_fails(self):
        catalog = Catalog().add(simple_table("t", ["a"], 1000))
        spec = make_query(catalog, ["t"], order_by=ordering("t.a"))
        config = PlanGenConfig(enable_sort_enforcers=False)
        with pytest.raises(RuntimeError, match="ORDER BY"):
            generate_plan(spec, FsmBackend(), config=config)


class TestJoins:
    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_merge_join_used_with_indexes(self, backend_cls):
        """Both inputs index-sorted on the join keys: merge join, no sorts."""
        spec = two_table_query(two_table_catalog())
        result = generate_plan(spec, backend_cls())
        assert result.best_plan.op == MERGE_JOIN
        assert all(n.op != SORT for n in result.best_plan.operators())

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_join_order_by_exploits_merge_output(self, backend_cls):
        """ORDER BY the join key: the merge join's output order is free."""
        spec = two_table_query(
            two_table_catalog(), order_by=Ordering([Attribute("a", "t")])
        )
        result = generate_plan(spec, backend_cls())
        assert result.best_plan.op == MERGE_JOIN  # no final sort needed

    def test_equivalent_order_by_via_equation(self):
        """ORDER BY u.b satisfied by output sorted on t.a (t.a = u.b)."""
        spec = two_table_query(
            two_table_catalog(), order_by=Ordering([Attribute("b", "u")])
        )
        result = generate_plan(spec, FsmBackend())
        assert result.best_plan.op == MERGE_JOIN

    def test_sort_enforcer_inserted_when_beneficial(self):
        """One side unsorted and small: sort it, then merge."""
        catalog = two_table_catalog(card_t=100_000, card_u=200, index_u=False)
        spec = two_table_query(catalog)
        result = generate_plan(spec, FsmBackend())
        ops = [n.op for n in result.best_plan.operators()]
        if result.best_plan.op == MERGE_JOIN:
            assert SORT in ops  # u was sorted on the fly

    def test_disconnected_graph_rejected(self):
        catalog = two_table_catalog()
        spec = make_query(catalog, ["t", "u"])  # no join predicate
        with pytest.raises(ValueError, match="disconnected"):
            generate_plan(spec, FsmBackend())

    def test_constant_selection_enables_ordering(self):
        """After k = const, an index scan on (a) also satisfies (k, a)...
        validated indirectly: both backends produce the same optimal cost."""
        catalog = two_table_catalog()
        spec = make_query(
            catalog,
            ["t", "u"],
            [JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))],
            selections=[EqualsConstant(Attribute("k", "t"), 7)],
        )
        costs = {b.name: generate_plan(spec, b).best_plan.cost
                 for b in (FsmBackend(), SimmenBackend(), OracleBackend())}
        assert len(set(costs.values())) == 1, costs


class TestCrossProducts:
    def test_disconnected_plans_with_cross_products(self):
        catalog = two_table_catalog(card_t=1000, card_u=50)
        spec = make_query(catalog, ["t", "u"])  # no join predicate
        config = PlanGenConfig(enable_cross_products=True)
        result = generate_plan(spec, FsmBackend(), config=config)
        assert result.best_plan.op == NL_JOIN
        assert result.best_plan.detail == "cross product"
        assert result.best_plan.predicates == ()
        assert result.best_plan.cardinality == pytest.approx(1000 * 50)

    @pytest.mark.parametrize("enumerator", ["dpsub", "dpccp", "greedy"])
    def test_partially_connected_all_enumerators_agree(self, enumerator):
        """Two joined relations plus an island: every strategy plans it,
        the exact ones at the exact optimum."""
        catalog = (
            two_table_catalog()
            .add(simple_table("v", ["c"], 30))
        )
        spec = make_query(
            catalog,
            ["t", "u", "v"],
            [JoinPredicate(Attribute("a", "t"), Attribute("b", "u"))],
        )
        config = PlanGenConfig(
            enable_cross_products=True, enumerator=enumerator
        )
        result = generate_plan(spec, FsmBackend(), config=config)
        assert result.best_plan.relations == 0b111
        exact = generate_plan(
            spec,
            FsmBackend(),
            config=PlanGenConfig(enable_cross_products=True, enumerator="dpsub"),
        )
        if enumerator != "greedy":
            assert result.best_plan.cost == pytest.approx(exact.best_plan.cost)
        else:
            assert result.best_plan.cost >= exact.best_plan.cost - 1e-6

    def test_cross_product_survives_nl_join_disabled(self):
        """Nested loops is the only cross-join implementation, so the
        synthetic pair ignores the operator toggle instead of dead-ending."""
        catalog = two_table_catalog()
        spec = make_query(catalog, ["t", "u"])
        config = PlanGenConfig(enable_cross_products=True, enable_nl_join=False)
        result = generate_plan(spec, FsmBackend(), config=config)
        assert result.best_plan.op == NL_JOIN


class TestEnumeratorConfig:
    def test_stats_record_resolved_enumerator_and_pairs(self):
        spec = two_table_query(two_table_catalog())
        result = generate_plan(spec, FsmBackend())
        assert result.stats.enumerator == "dpccp"  # auto at n=2
        assert result.stats.pairs_visited == 1

    def test_auto_threshold_switches_to_greedy(self):
        spec = random_join_query(GeneratorConfig(n_relations=5, seed=0))
        config = PlanGenConfig(greedy_threshold=4)
        result = generate_plan(spec, FsmBackend(), config=config)
        assert result.stats.enumerator == "greedy"
        assert result.stats.pairs_visited == 4

    def test_unknown_enumerator_raises(self):
        spec = two_table_query(two_table_catalog())
        with pytest.raises(ValueError, match="unknown enumerator"):
            generate_plan(
                spec, FsmBackend(), config=PlanGenConfig(enumerator="bushy")
            )


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_queries_same_optimal_cost(self, seed):
        spec = random_join_query(
            GeneratorConfig(n_relations=5, n_edges=5, seed=seed)
        )
        costs = {}
        for backend in (FsmBackend(), SimmenBackend(), OracleBackend()):
            result = generate_plan(spec, backend)
            costs[backend.name] = round(result.best_plan.cost, 6)
        assert len(set(costs.values())) == 1, costs

    @pytest.mark.parametrize("seed", range(3))
    def test_fsm_matches_oracle_plan_counts(self, seed):
        """FSM states must induce exactly the oracle's plan classes."""
        spec = random_join_query(
            GeneratorConfig(n_relations=5, n_edges=6, seed=seed)
        )
        fsm = generate_plan(spec, FsmBackend())
        oracle = generate_plan(spec, OracleBackend())
        assert fsm.stats.plans_created == oracle.stats.plans_created
        assert fsm.stats.plans_retained == oracle.stats.plans_retained

    def test_fsm_search_space_not_larger_than_simmen(self):
        for seed in range(5):
            spec = random_join_query(
                GeneratorConfig(n_relations=6, n_edges=6, seed=seed)
            )
            fsm = generate_plan(spec, FsmBackend())
            simmen = generate_plan(spec, SimmenBackend())
            assert fsm.stats.plans_created <= simmen.stats.plans_created
            assert fsm.stats.plans_retained <= simmen.stats.plans_retained


class UnprunedOracle(OracleBackend):
    """Oracle variant that never prunes: every plan gets a unique key."""

    name = "unpruned"

    def __init__(self) -> None:
        self._counter = itertools.count()

    def plan_key(self, state):
        return next(self._counter)


class TestOptimality:
    """Order-aware pruning must never lose the optimal plan: compare against
    a no-pruning run that keeps every plan alternative."""

    @pytest.mark.parametrize("seed", range(4))
    def test_dp_optimal_vs_exhaustive(self, seed):
        spec = random_join_query(
            GeneratorConfig(n_relations=4, n_edges=4, seed=seed)
        )
        pruned = generate_plan(spec, FsmBackend())
        exhaustive = generate_plan(spec, UnprunedOracle())
        assert pruned.best_plan.cost == pytest.approx(exhaustive.best_plan.cost)

    def test_exhaustive_with_order_by(self):
        spec = random_join_query(GeneratorConfig(n_relations=4, seed=9))
        join_attr = spec.joins[0].left
        spec.order_by = Ordering([join_attr])
        pruned = generate_plan(spec, FsmBackend())
        exhaustive = generate_plan(spec, UnprunedOracle())
        assert pruned.best_plan.cost == pytest.approx(exhaustive.best_plan.cost)


class TestStats:
    def test_plans_created_counts_all_constructions(self):
        spec = two_table_query(two_table_catalog())
        result = generate_plan(spec, FsmBackend())
        assert result.stats.plans_created >= result.stats.plans_retained
        assert result.stats.plans_created > 0

    def test_memory_accounting(self):
        spec = two_table_query(two_table_catalog())
        fsm = generate_plan(spec, FsmBackend())
        simmen = generate_plan(spec, SimmenBackend())
        assert fsm.stats.state_bytes == 4 * fsm.stats.plans_retained
        assert fsm.stats.shared_bytes > 0  # DFSM tables
        assert simmen.stats.shared_bytes == 0
        assert simmen.stats.state_bytes > 0

    def test_us_per_plan(self):
        spec = two_table_query(two_table_catalog())
        result = generate_plan(spec, FsmBackend())
        assert result.stats.us_per_plan > 0.0

    def test_tables_exposed(self):
        spec = two_table_query(two_table_catalog())
        result = generate_plan(spec, FsmBackend())
        assert set(result.tables) == {0b01, 0b10, 0b11}


class TestAggregatePlanning:
    """The aggregate operators and the post-aggregate order state."""

    AGG_CONFIG = PlanGenConfig(enable_aggregation=True)

    def test_stream_aggregate_projects_state_to_group_keys(self):
        """Regression: the stream-aggregate node used to carry its input's
        order state unchanged, claiming orderings over attributes the
        aggregated output no longer even contains."""
        backend = FsmBackend()
        spec = two_table_query(
            two_table_catalog(), group_by=(Attribute("b", "u"),)
        )
        result = generate_plan(spec, backend, config=self.AGG_CONFIG)
        top = result.best_plan
        assert top.op == "stream_aggregate"
        # Without an ORDER BY the aggregate makes no ordering promise at
        # all, in particular not the input order it consumed.
        assert not backend.satisfies(top.state, ordering("t.a"))
        assert not backend.satisfies(top.state, ordering("u.b"))

    def test_order_covered_by_grouping_needs_no_sort(self):
        backend = FsmBackend()
        spec = two_table_query(
            two_table_catalog(),
            group_by=(Attribute("a", "t"),),
            order_by=ordering("t.a"),
        )
        result = generate_plan(spec, backend, config=self.AGG_CONFIG)
        top = result.best_plan
        assert top.op == "stream_aggregate"
        assert all(node.op != SORT for node in top.operators())
        # The projected state still carries the ORDER BY the grouping covers.
        assert backend.satisfies(top.state, ordering("t.a"))

    def test_order_by_outside_group_keys_rejected(self):
        spec = two_table_query(
            two_table_catalog(),
            group_by=(Attribute("k", "t"),),
            order_by=ordering("t.a"),
        )
        with pytest.raises(RuntimeError, match="GROUP BY"):
            generate_plan(spec, FsmBackend(), config=self.AGG_CONFIG)

    def test_aggregate_detail_names_the_group_keys(self):
        spec = two_table_query(
            two_table_catalog(), group_by=(Attribute("a", "t"),)
        )
        result = generate_plan(spec, FsmBackend(), config=self.AGG_CONFIG)
        assert result.best_plan.detail == "t.a"
