"""Unit tests for the cost model: the order-related trade-offs must exist."""

from repro.plangen.cost import DEFAULT_COST_MODEL as M


class TestCostModel:
    def test_scan_linear(self):
        assert M.scan(1000) == 1000.0
        assert M.index_scan(1000) > M.scan(1000)

    def test_sort_superlinear(self):
        assert M.sort(0.0, 2000) > 2 * M.sort(0.0, 1000)

    def test_sort_small_input_guard(self):
        assert M.sort(0.0, 0) >= 0.0
        assert M.sort(5.0, 1) >= 5.0

    def test_costs_cumulative(self):
        base = M.merge_join(100.0, 200.0, 10, 20)
        assert base > 300.0

    def test_merge_beats_hash_on_sorted_inputs(self):
        """Pre-sorted merge join must be the cheapest join."""
        args = (0.0, 0.0, 10_000, 10_000)
        assert M.merge_join(*args) < M.hash_join(*args)
        assert M.merge_join(*args) < M.nested_loop_join(*args)

    def test_hash_beats_sort_plus_merge_on_large_unsorted(self):
        n = 1_000_000
        sorted_inputs = M.sort(0.0, n) + M.sort(0.0, n)
        assert M.hash_join(0.0, 0.0, n, n) < sorted_inputs + M.merge_join(
            0.0, 0.0, n, n
        )

    def test_sort_merge_beats_hash_when_one_side_sorted_and_small(self):
        big, small = 100_000, 50
        cost_sort_merge = M.sort(0.0, small) + M.merge_join(0.0, 0.0, big, small)
        cost_hash = M.hash_join(0.0, 0.0, big, small)
        assert cost_sort_merge < cost_hash

    def test_nl_wins_for_tiny_inputs(self):
        args = (0.0, 0.0, 3, 3)
        assert M.nested_loop_join(*args) < M.hash_join(*args)
        assert M.nested_loop_join(*args) < M.merge_join(*args)

    def test_nl_loses_for_large_inputs(self):
        args = (0.0, 0.0, 10_000, 10_000)
        assert M.nested_loop_join(*args) > M.hash_join(*args)
