"""Unit tests for plan nodes."""

from repro.core.ordering import ordering
from repro.plangen.plan import MERGE_JOIN, SCAN, SORT, PlanNode


def scan(mask=1, cost=10.0):
    return PlanNode(SCAN, mask, state=0, cost=cost, cardinality=100, detail="t")


class TestPlanNode:
    def test_operators_preorder(self):
        left = scan(1)
        right = scan(2)
        join = PlanNode(
            MERGE_JOIN, 3, state=0, cost=50.0, cardinality=10, left=left, right=right
        )
        assert [n.op for n in join.operators()] == [MERGE_JOIN, SCAN, SCAN]
        assert join.operator_count == 3

    def test_join_ops(self):
        left = scan(1)
        sort = PlanNode(
            SORT, 1, state=0, cost=20.0, cardinality=100, left=left,
            ordering=ordering("t.a"),
        )
        join = PlanNode(
            MERGE_JOIN, 3, state=0, cost=50.0, cardinality=10, left=sort,
            right=scan(2),
        )
        assert join.join_ops() == [MERGE_JOIN]

    def test_explain_structure(self):
        sort = PlanNode(
            SORT, 1, state=0, cost=20.0, cardinality=100, left=scan(),
            ordering=ordering("t.a"),
        )
        text = sort.explain()
        lines = text.splitlines()
        assert lines[0].startswith("sort")
        assert "order=(t.a)" in lines[0]
        assert lines[1].startswith("  scan")

    def test_repr(self):
        assert "scan" in repr(scan())
