"""Unit tests for the ordering backends (the ADT interface itself)."""

import pytest

from repro.core.attributes import attrs
from repro.core.fd import ConstantBinding, Equation, FDSet
from repro.core.interesting import InterestingOrders
from repro.core.ordering import EMPTY_ORDERING, ordering
from repro.plangen.backends import FsmBackend, OracleBackend, SimmenBackend
from repro.query.analyzer import QueryOrderInfo

A, B, X = attrs("a", "b", "x")


def make_info():
    interesting = InterestingOrders.of(
        produced=[ordering("a"), ordering("b")],
        tested=[ordering("x")],
    )
    fdsets = (FDSet.of(Equation(A, B)), FDSet.of(ConstantBinding(X)))
    return QueryOrderInfo(interesting=interesting, fdsets=fdsets)


ALL_BACKENDS = [FsmBackend, SimmenBackend, OracleBackend]


@pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
class TestBackendContract:
    def test_scan_state_satisfies_nothing(self, backend_cls):
        backend = backend_cls()
        backend.prepare(make_info())
        state = backend.scan_state()
        for order in (ordering("a"), ordering("b"), ordering("x")):
            assert not backend.satisfies(state, order)

    def test_produced_state_satisfies_itself(self, backend_cls):
        backend = backend_cls()
        backend.prepare(make_info())
        state = backend.produced_state(ordering("a"))
        assert backend.satisfies(state, ordering("a"))
        assert not backend.satisfies(state, ordering("b"))

    def test_apply_equation(self, backend_cls):
        backend = backend_cls()
        info = make_info()
        backend.prepare(info)
        state = backend.produced_state(ordering("a"))
        state = backend.apply(state, info.fdsets[0])
        assert backend.satisfies(state, ordering("b"))

    def test_constant_on_scan(self, backend_cls):
        backend = backend_cls()
        info = make_info()
        backend.prepare(info)
        state = backend.apply(backend.scan_state(), info.fdsets[1])
        assert backend.satisfies(state, ordering("x"))

    def test_sort_state_replays_held_fdsets(self, backend_cls):
        backend = backend_cls()
        info = make_info()
        backend.prepare(info)
        state = backend.sort_state(ordering("a"), [info.fdsets[0]])
        assert backend.satisfies(state, ordering("b"))

    def test_plan_keys_equal_for_equal_histories(self, backend_cls):
        backend = backend_cls()
        info = make_info()
        backend.prepare(info)
        s1 = backend.apply(backend.produced_state(ordering("a")), info.fdsets[0])
        s2 = backend.apply(backend.produced_state(ordering("a")), info.fdsets[0])
        assert backend.plan_key(s1) == backend.plan_key(s2)

    def test_state_bytes_positive(self, backend_cls):
        backend = backend_cls()
        info = make_info()
        backend.prepare(info)
        state = backend.produced_state(ordering("a"))
        assert backend.state_bytes(state) >= 4

    def test_dominates_default_false(self, backend_cls):
        backend = backend_cls()
        backend.prepare(make_info())
        s = backend.plan_key(backend.produced_state(ordering("a")))
        assert backend.dominates(s, s) is False


class TestFsmSpecifics:
    def test_unprepared_backend_raises(self):
        backend = FsmBackend()
        with pytest.raises(RuntimeError, match="not prepared"):
            backend.scan_state()

    def test_state_is_plain_int(self):
        backend = FsmBackend()
        backend.prepare(make_info())
        assert isinstance(backend.produced_state(ordering("a")), int)

    def test_state_bytes_constant(self):
        backend = FsmBackend()
        info = make_info()
        backend.prepare(info)
        s1 = backend.scan_state()
        s2 = backend.apply(backend.produced_state(ordering("a")), info.fdsets[0])
        assert backend.state_bytes(s1) == backend.state_bytes(s2) == 4

    def test_satisfies_unknown_order_is_false(self):
        backend = FsmBackend()
        backend.prepare(make_info())
        state = backend.produced_state(ordering("a"))
        assert not backend.satisfies(state, ordering("a", "b", "x"))

    def test_dominance_only_when_requested(self):
        info = make_info()
        plain = FsmBackend()
        plain.prepare(info)
        assert plain.dominates(0, 1) is False

        with_dominance = FsmBackend(use_dominance=True)
        with_dominance.prepare(info)
        s_a = with_dominance.produced_state(ordering("a"))
        merged = with_dominance.apply(s_a, info.fdsets[0])
        assert with_dominance.dominates(merged, s_a)


class TestSimmenSpecifics:
    def test_state_grows_with_fds(self):
        backend = SimmenBackend()
        info = make_info()
        backend.prepare(info)
        s0 = backend.produced_state(ordering("a"))
        s1 = backend.apply(s0, info.fdsets[0])
        s2 = backend.apply(s1, info.fdsets[1])
        assert backend.state_bytes(s0) < backend.state_bytes(s1) < backend.state_bytes(s2)

    def test_no_shared_bytes(self):
        backend = SimmenBackend()
        backend.prepare(make_info())
        assert backend.shared_bytes() == 0


class TestOracleSpecifics:
    def test_scan_state_is_empty_ordering_closure(self):
        backend = OracleBackend()
        backend.prepare(make_info())
        assert backend.scan_state() == frozenset({EMPTY_ORDERING})

    def test_state_is_explicit_set(self):
        backend = OracleBackend()
        info = make_info()
        backend.prepare(info)
        state = backend.apply(backend.produced_state(ordering("a")), info.fdsets[0])
        assert ordering("b", "a") in state
