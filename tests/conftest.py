"""Shared test configuration: golden-plan updating, hypothesis profiles.

``--update-golden`` rewrites the plan snapshots under ``tests/golden/``
instead of comparing against them (see
``tests/workloads/test_golden_plans.py``).

Hypothesis profiles: ``ci`` is fully deterministic (derandomized, no
deadline) so the CI property/differential job cannot flake on example
choice; select it with ``HYPOTHESIS_PROFILE=ci``.  The default profile
keeps hypothesis's usual randomized exploration for local runs.
"""

import os

import pytest
from hypothesis import settings

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden plan snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-golden")
