"""Unit tests for repro.core.attributes."""

import pytest

from repro.core.attributes import Attribute, attr, attrs, iter_unique


class TestAttribute:
    def test_value_equality(self):
        assert Attribute("a") == Attribute("a")
        assert Attribute("a", "t") == Attribute("a", "t")

    def test_inequality_on_relation(self):
        assert Attribute("a", "t") != Attribute("a", "u")
        assert Attribute("a", "t") != Attribute("a")

    def test_hashable(self):
        assert len({Attribute("a"), Attribute("a"), Attribute("b")}) == 2

    def test_qualified_name(self):
        assert Attribute("a").qualified_name == "a"
        assert Attribute("a", "t").qualified_name == "t.a"

    def test_str(self):
        assert str(Attribute("jobid", "persons")) == "persons.jobid"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_ordering_is_total(self):
        ordered = sorted([Attribute("b"), Attribute("a", "t"), Attribute("a")])
        assert ordered[0] == Attribute("a")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Attribute("a").name = "b"  # type: ignore[misc]


class TestParse:
    def test_parse_bare(self):
        assert attr("a") == Attribute("a")

    def test_parse_qualified(self):
        assert attr("t.a") == Attribute("a", "t")

    def test_parse_strips_whitespace(self):
        assert attr("  t.a ") == Attribute("a", "t")

    def test_parse_nested_qualifier_uses_last_dot(self):
        parsed = attr("schema.table.col")
        assert parsed.name == "col"
        assert parsed.relation == "schema.table"

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            attr("   ")

    def test_attrs_builds_many(self):
        a, b, c = attrs("a", "b", "t.c")
        assert (a.name, b.name, c.name) == ("a", "b", "c")
        assert c.relation == "t"


def test_iter_unique_preserves_first_occurrence():
    a, b = attrs("a", "b")
    assert list(iter_unique(iter([a, b, a, b, a]))) == [a, b]
