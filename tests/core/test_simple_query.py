"""Reproduction of the Section 6.1 simple query (Figures 11 and 12).

    select * from persons, jobs
    where persons.jobid = jobs.id and jobs.salary > 50000
    order by jobs.id, persons.name

Interesting orders: ``Q_I^P = {(id), (jobid), (id,name)}``,
``Q_I^T = {(salary)}``; FD set ``F = {{id = jobid}}``.

Figure 11 shows the NFSM *before* the Section 5.7 reductions, with all the
permutational artificial nodes; Figure 12 shows the DFSM in which these
permutations collapse into combined states.  The (salary) node stays
unreachable because no operator produces it.
"""

import pytest

from repro.core.attributes import attr
from repro.core.fd import Equation, FDSet
from repro.core.interesting import InterestingOrders
from repro.core.optimizer import BuilderOptions, OrderOptimizer
from repro.core.ordering import Ordering, ordering

ID = attr("id")
JOBID = attr("jobid")
NAME = attr("name")
SALARY = attr("salary")

F_EQ = FDSet.of(Equation(ID, JOBID))

INTERESTING = InterestingOrders.of(
    produced=[ordering("id"), ordering("jobid"), ordering("id", "name")],
    tested=[ordering("salary")],
)

UNPRUNED = BuilderOptions(include_empty_ordering=False).without_pruning()
PRUNED = BuilderOptions(include_empty_ordering=False)


@pytest.fixture(scope="module")
def unpruned():
    return OrderOptimizer.prepare(INTERESTING, [F_EQ], UNPRUNED)


@pytest.fixture(scope="module")
def pruned():
    return OrderOptimizer.prepare(INTERESTING, [F_EQ], PRUNED)


class TestFigure11NFSM:
    def test_figure_11_nodes(self, unpruned):
        nodes = {o for o in unpruned.nfsm.orderings if o is not None}
        expected = {
            ordering("id"),
            ordering("jobid"),
            ordering("salary"),
            ordering("id", "name"),
            ordering("jobid", "id"),
            ordering("id", "jobid"),
            ordering("id", "name", "jobid"),
            ordering("jobid", "name", "id"),
            ordering("id", "jobid", "name"),
            ordering("jobid", "id", "name"),
            ordering("jobid", "name"),
        }
        assert nodes == expected

    def test_equation_stronger_than_two_fds(self, unpruned):
        """The edge (id) --id=jobid--> (jobid) requires the substitution rule."""
        nfsm = unpruned.nfsm
        node_id = nfsm.node_of[ordering("id")]
        node_jobid = nfsm.node_of[ordering("jobid")]
        symbol = nfsm.fd_symbols.index(F_EQ)
        assert node_jobid in nfsm.targets(node_id, symbol)

    def test_salary_has_no_start_edge(self, unpruned):
        assert ordering("salary") not in unpruned.nfsm.producer_orders

    def test_id_reaches_both_two_attribute_permutations(self, unpruned):
        nfsm = unpruned.nfsm
        node_id = nfsm.node_of[ordering("id")]
        symbol = nfsm.fd_symbols.index(F_EQ)
        targets = {nfsm.orderings[t] for t in nfsm.targets(node_id, symbol)}
        assert ordering("id", "jobid") in targets
        assert ordering("jobid", "id") in targets


class TestFigure12DFSM:
    def test_salary_state_unreachable(self, unpruned):
        """Figure 12 has no (salary) state: nothing produces it."""
        for state in range(unpruned.dfsm.state_count):
            assert ordering("salary") not in unpruned.dfsm.state_orderings(state)

    def test_permutations_merged(self, unpruned):
        """After id=jobid, one DFSM state holds all permutations (Figure 12)."""
        opt = unpruned
        state = opt.state_for_produced(opt.producer_handle(ordering("id")))
        merged = opt.infer(state, opt.fdset_handle(F_EQ))
        orders = opt.dfsm.state_orderings(merged)
        assert ordering("id") in orders
        assert ordering("jobid") in orders
        assert ordering("id", "jobid") in orders
        assert ordering("jobid", "id") in orders

    def test_id_name_entry_state(self, unpruned):
        """Figure 12: start --(id,name)--> {(id), (id,name)}."""
        opt = unpruned
        state = opt.state_for_produced(opt.producer_handle(ordering("id", "name")))
        assert opt.dfsm.state_orderings(state) == frozenset(
            {ordering("id"), ordering("id", "name")}
        )

    def test_full_closure_state(self, unpruned):
        """Figure 12's largest state: sort on (id,name), then id = jobid."""
        opt = unpruned
        state = opt.state_for_produced(opt.producer_handle(ordering("id", "name")))
        closed = opt.infer(state, opt.fdset_handle(F_EQ))
        orders = opt.dfsm.state_orderings(closed)
        expected = {
            ordering("id"),
            ordering("id", "name"),
            ordering("jobid"),
            ordering("jobid", "id", "name"),
            ordering("jobid", "id"),
            ordering("id", "jobid"),
            ordering("jobid", "name"),
            ordering("id", "jobid", "name"),
            ordering("id", "name", "jobid"),
            ordering("jobid", "name", "id"),
        }
        assert orders == expected


class TestPrunedVariant:
    def test_pruning_shrinks_the_machine(self, unpruned, pruned):
        assert pruned.nfsm.node_count < unpruned.nfsm.node_count
        assert pruned.dfsm.state_count <= unpruned.dfsm.state_count

    def test_observable_behaviour_unchanged(self, unpruned, pruned):
        """Same contains answers for every produced order and FD sequence."""
        interesting = INTERESTING.all_orders
        for produced in INTERESTING.produced:
            st_u = unpruned.state_for_produced(unpruned.producer_handle(produced))
            st_p = pruned.state_for_produced(pruned.producer_handle(produced))
            for _ in range(3):  # applying the same symbol repeatedly is stable
                for order in interesting:
                    assert unpruned.contains(
                        st_u, unpruned.ordering_handle(order)
                    ) == pruned.contains(st_p, pruned.ordering_handle(order)), (
                        produced,
                        order,
                    )
                st_u = unpruned.infer(st_u, unpruned.fdset_handle(F_EQ))
                st_p = pruned.infer(st_p, pruned.fdset_handle(F_EQ))

    def test_jobid_name_satisfiable_after_equation(self, pruned):
        """(jobid) + id=jobid lets a merge join on (id) run without a sort."""
        opt = pruned
        state = opt.state_for_produced(opt.producer_handle(ordering("jobid")))
        assert not opt.contains(state, opt.ordering_handle(ordering("id")))
        state = opt.infer(state, opt.fdset_handle(F_EQ))
        assert opt.contains(state, opt.ordering_handle(ordering("id")))
