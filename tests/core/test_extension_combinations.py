"""Extension features combined end-to-end: minimized tables and dominance
inside the full plan generator, and groupings under hypothesis-driven data."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Attribute, attrs
from repro.core.fd import ConstantBinding, Equation, FDSet
from repro.core.grouping import Grouping, grouping_closure, prefix_groupings
from repro.core.optimizer import BuilderOptions
from repro.core.ordering import Ordering
from repro.exec.iterators import sort_rows
from repro.exec.verify import satisfies_grouping
from repro.plangen import FsmBackend, PlanGenConfig, PlanGenerator
from repro.workloads import GeneratorConfig, q8_query, random_join_query

A, B, X = attrs("a", "b", "x")


class TestMinimizedBackendInPlanGen:
    @pytest.mark.parametrize("seed", range(3))
    def test_minimized_tables_same_optimal_plan(self, seed):
        spec = random_join_query(GeneratorConfig(n_relations=5, n_edges=6, seed=seed))
        plain = PlanGenerator(spec, FsmBackend()).run()
        minimized = PlanGenerator(
            spec, FsmBackend(BuilderOptions(minimize_dfsm=True))
        ).run()
        assert plain.best_plan.cost == pytest.approx(minimized.best_plan.cost)
        assert minimized.stats.plans_created <= plain.stats.plans_created

    def test_minimized_plus_dominance_on_q8(self):
        spec = q8_query()
        plain = PlanGenerator(spec, FsmBackend()).run()
        stacked = PlanGenerator(
            spec,
            FsmBackend(BuilderOptions(minimize_dfsm=True), use_dominance=True),
            config=PlanGenConfig(cross_key_dominance=True),
        ).run()
        assert plain.best_plan.cost == pytest.approx(stacked.best_plan.cost)
        assert stacked.stats.plans_created <= plain.stats.plans_created

    def test_dominance_with_aggregation(self):
        spec = q8_query()
        result = PlanGenerator(
            spec,
            FsmBackend(use_dominance=True),
            config=PlanGenConfig(cross_key_dominance=True, enable_aggregation=True),
        ).run()
        assert result.best_plan.cost > 0


class TestGroupingSoundnessOnData:
    """Hypothesis: every grouping in the closure of a sorted, FD-restricted
    stream's prefix groupings holds physically."""

    @given(
        st.integers(0, 10_000),
        st.integers(0, 20),
        st.sampled_from(["equation", "constant"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_closure_groupings_hold(self, seed, n_rows, kind):
        rng = random.Random(seed)
        rows = [
            {A: rng.randrange(3), B: rng.randrange(3), X: rng.randrange(2)}
            for _ in range(n_rows)
        ]
        order = Ordering([A, B])
        if kind == "equation":
            item = Equation(A, B)
            rows = [r for r in rows if r[A] == r[B]]
        else:
            item = ConstantBinding(X)
            rows = [r for r in rows if r[X] == 0]
        stream = sort_rows(rows, order)
        seeds = prefix_groupings(order)
        for g in grouping_closure(seeds, [FDSet.of(item)]):
            assert satisfies_grouping(stream, g), (g, kind, stream)
