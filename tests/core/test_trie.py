"""Unit tests for repro.core.trie."""

from repro.core.attributes import attrs
from repro.core.trie import PrefixTrie

A, B, C, D = attrs("a", "b", "c", "d")


class TestPrefixTrie:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert trie.has_path([])
        assert not trie.has_path([A])
        assert trie.longest_path_length([A, B]) == 0

    def test_single_sequence(self):
        trie = PrefixTrie([[A, B, C]])
        assert len(trie) == 1
        assert trie.has_path([A])
        assert trie.has_path([A, B])
        assert trie.has_path([A, B, C])
        assert not trie.has_path([B])
        assert not trie.has_path([A, C])

    def test_longest_path_length(self):
        trie = PrefixTrie([[A, B, C]])
        assert trie.longest_path_length([A, B, D]) == 2
        assert trie.longest_path_length([A, B, C, D]) == 3
        assert trie.longest_path_length([D]) == 0

    def test_multiple_sequences_share_prefixes(self):
        trie = PrefixTrie([[A, B], [A, C]])
        assert len(trie) == 2
        assert trie.has_path([A, B])
        assert trie.has_path([A, C])
        assert not trie.has_path([A, B, C])

    def test_duplicate_insert_counted_once(self):
        trie = PrefixTrie()
        trie.insert([A, B])
        trie.insert([A, B])
        assert len(trie) == 1

    def test_repeated_elements_allowed(self):
        # Canonicalized orderings may repeat class representatives.
        trie = PrefixTrie([[A, A, B]])
        assert trie.has_path([A, A])
        assert trie.longest_path_length([A, A, C]) == 2

    def test_max_depth(self):
        trie = PrefixTrie([[A], [B, C, D]])
        assert trie.max_depth() == 3
        assert PrefixTrie().max_depth() == 0
