"""Unit tests for repro.core.equivalence."""

from repro.core.attributes import attrs
from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import Equation, FDSet
from repro.core.ordering import ordering

A, B, C, D, E = attrs("a", "b", "c", "d", "e")


class TestEquivalenceClasses:
    def test_singleton_by_default(self):
        classes = EquivalenceClasses()
        assert classes.representative(A) == A
        assert not classes.are_equivalent(A, B)

    def test_single_equation(self):
        classes = EquivalenceClasses([Equation(A, B)])
        assert classes.are_equivalent(A, B)
        assert classes.representative(B) == A

    def test_transitive_chain(self):
        classes = EquivalenceClasses([Equation(A, B), Equation(B, C)])
        assert classes.are_equivalent(A, C)
        assert classes.representative(C) == A

    def test_representative_is_deterministic_minimum(self):
        classes = EquivalenceClasses([Equation(C, B), Equation(B, D)])
        # the class is {b, c, d}; the minimum attribute is b
        for member in (B, C, D):
            assert classes.representative(member) == B

    def test_disjoint_classes(self):
        classes = EquivalenceClasses([Equation(A, B), Equation(C, D)])
        assert classes.are_equivalent(A, B)
        assert classes.are_equivalent(C, D)
        assert not classes.are_equivalent(A, C)

    def test_class_of(self):
        classes = EquivalenceClasses([Equation(A, B), Equation(B, C)])
        assert classes.class_of(B) == {A, B, C}
        assert classes.class_of(E) == {E}

    def test_from_fdsets_collects_equations(self):
        fdsets = [FDSet.of(Equation(A, B)), FDSet.of(Equation(C, D))]
        classes = EquivalenceClasses.from_fdsets(fdsets)
        assert classes.are_equivalent(A, B)
        assert classes.are_equivalent(C, D)

    def test_canonical_sequence(self):
        classes = EquivalenceClasses([Equation(A, B)])
        assert classes.canonical_sequence(ordering("b", "c")) == (A, C)

    def test_canonical_sequence_may_repeat_representatives(self):
        classes = EquivalenceClasses([Equation(A, B)])
        assert classes.canonical_sequence(ordering("a", "b")) == (A, A)

    def test_classes_listing(self):
        classes = EquivalenceClasses([Equation(A, B), Equation(C, D)])
        assert set(classes.classes()) == {frozenset({A, B}), frozenset({C, D})}

    def test_contains(self):
        classes = EquivalenceClasses([Equation(A, B)])
        assert A in classes
        assert E not in classes
