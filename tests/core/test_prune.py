"""Unit tests for repro.core.prune — Section 5.7 reduction techniques.

Also documents two findings about the paper's FD-pruning formula (see
DESIGN.md):

* applied literally (quantifier over ``O_I``), it *keeps* the dependency
  ``b → d`` that the paper's own running example prunes, and
* it is unsound for FDs whose left-hand side only occurs in derived
  orderings; quantifying over the whole universe repairs this.
"""

import pytest

from repro.core.attributes import attrs
from repro.core.fd import ConstantBinding, Equation, FDSet, FunctionalDependency
from repro.core.interesting import InterestingOrders
from repro.core.optimizer import BuilderOptions, OrderOptimizer
from repro.core.ordering import ordering
from repro.core.prune import (
    prune_fd_items,
    prune_items_formula,
    prune_items_relevance,
    relevant_attributes,
)

A, B, C, D, X = attrs("a", "b", "c", "d", "x")

FD_BC = FunctionalDependency(frozenset({B}), C)
FD_BD = FunctionalDependency(frozenset({B}), D)


def running_example():
    interesting = InterestingOrders.of(
        produced=[ordering("b"), ordering("a", "b")],
        tested=[ordering("a", "b", "c")],
    )
    fdsets = [FDSet.of(FD_BC), FDSet.of(FD_BD)]
    return interesting, fdsets


class TestRelevantAttributes:
    def test_seeded_with_interesting_attributes(self):
        interesting = InterestingOrders.of([ordering("a", "b")])
        assert relevant_attributes(interesting, []) == {A, B}

    def test_closed_under_equations(self):
        interesting = InterestingOrders.of([ordering("a"), ordering("c")])
        items = [Equation(A, B), Equation(B, C)]
        assert relevant_attributes(interesting, items) == {A, B, C}

    def test_unrelated_equation_ignored(self):
        interesting = InterestingOrders.of([ordering("a")])
        assert relevant_attributes(interesting, [Equation(X, D)]) == {A}


class TestRelevancePruning:
    def test_prunes_b_to_d(self):
        """The paper's running example: b → d goes, b → c stays."""
        interesting, fdsets = running_example()
        filtered, pruned = prune_items_relevance(fdsets, interesting)
        assert pruned == {FD_BD}
        assert filtered[0] == FDSet.of(FD_BC)
        assert filtered[1] == FDSet()

    def test_keeps_equation_chains(self):
        """a = b, b = c with interesting (a), (c): both equations needed."""
        interesting = InterestingOrders.of([ordering("a"), ordering("c")])
        fdsets = [FDSet.of(Equation(A, B)), FDSet.of(Equation(B, C))]
        _, pruned = prune_items_relevance(fdsets, interesting)
        assert pruned == frozenset()

    def test_prunes_irrelevant_constant(self):
        interesting = InterestingOrders.of([ordering("a")])
        fdsets = [FDSet.of(ConstantBinding(X))]
        _, pruned = prune_items_relevance(fdsets, interesting)
        assert pruned == {ConstantBinding(X)}

    def test_keeps_relevant_constant(self):
        interesting = InterestingOrders.of([ordering("x", "a")])
        fdsets = [FDSet.of(ConstantBinding(X))]
        _, pruned = prune_items_relevance(fdsets, interesting)
        assert pruned == frozenset()


class TestFormulaPruning:
    def test_paper_formula_keeps_b_to_d(self):
        """As printed, the formula contradicts the paper's own example:
        from (a,b), the FD b → d yields (a,b,d), from which b → c reaches
        (a,b,c,d) whose prefix (a,b,c) is interesting — so the formula
        refuses to prune b → d."""
        interesting, fdsets = running_example()
        _, pruned = prune_items_formula(
            fdsets, interesting, quantify_over_universe=False
        )
        assert FD_BD not in pruned

    def test_paper_formula_unsound_for_derived_lhs(self):
        """f = b → c is only applicable to *derived* orderings here, so the
        O_I-quantified formula prunes it although it is the sole path to the
        interesting order (b, c)."""
        interesting = InterestingOrders.of([ordering("a"), ordering("b", "c")])
        g = FDSet.of(ConstantBinding(B))
        f = FDSet.of(FunctionalDependency(frozenset({B}), C))
        _, pruned = prune_items_formula(
            [g, f], interesting, quantify_over_universe=False
        )
        assert FunctionalDependency(frozenset({B}), C) in pruned  # the flaw

        # The universe-quantified repair keeps it:
        _, pruned_repaired = prune_items_formula(
            [g, f], interesting, quantify_over_universe=True
        )
        assert FunctionalDependency(frozenset({B}), C) not in pruned_repaired

    def test_universe_formula_prunes_plainly_useless_fd(self):
        interesting = InterestingOrders.of([ordering("a")])
        fdsets = [FDSet.of(FunctionalDependency(frozenset({X}), D))]
        _, pruned = prune_items_formula(fdsets, interesting)
        assert pruned == {FunctionalDependency(frozenset({X}), D)}


class TestPruneDispatch:
    def test_off(self):
        interesting, fdsets = running_example()
        filtered, pruned = prune_fd_items(fdsets, interesting, "off")
        assert pruned == frozenset()
        assert tuple(filtered) == tuple(fdsets)

    def test_both_combines(self):
        interesting, fdsets = running_example()
        _, pruned = prune_fd_items(fdsets, interesting, "both")
        assert FD_BD in pruned

    def test_unknown_mode_rejected(self):
        interesting, fdsets = running_example()
        with pytest.raises(ValueError):
            prune_fd_items(fdsets, interesting, "bogus")  # type: ignore[arg-type]


class TestNodePruningPreservesBehaviour:
    """Pruned and unpruned machines must answer `contains` identically
    along every symbol path — exhaustively checked on small examples."""

    def check_equivalence(self, interesting, fdsets, depth=3):
        pruned = OrderOptimizer.prepare(interesting, fdsets, BuilderOptions())
        unpruned = OrderOptimizer.prepare(
            interesting, fdsets, BuilderOptions().without_pruning()
        )

        def walk(state_p, state_u, remaining):
            for order in interesting.all_orders:
                got_p = pruned.contains(state_p, pruned.ordering_handle(order))
                got_u = unpruned.contains(state_u, unpruned.ordering_handle(order))
                assert got_p == got_u, (order, state_p, state_u)
            if remaining == 0:
                return
            for fdset in fdsets:
                walk(
                    pruned.infer(state_p, pruned.fdset_handle(fdset)),
                    unpruned.infer(state_u, unpruned.fdset_handle(fdset)),
                    remaining - 1,
                )

        for produced in interesting.produced:
            walk(
                pruned.state_for_produced(pruned.producer_handle(produced)),
                unpruned.state_for_produced(unpruned.producer_handle(produced)),
                depth,
            )
        walk(pruned.scan_state(), unpruned.scan_state(), depth)

    def test_running_example(self):
        interesting, fdsets = running_example()
        self.check_equivalence(interesting, fdsets)

    def test_equation_chain(self):
        interesting = InterestingOrders.of(
            [ordering("a"), ordering("c")], [ordering("a", "c")]
        )
        fdsets = [FDSet.of(Equation(A, B)), FDSet.of(Equation(B, C))]
        self.check_equivalence(interesting, fdsets)

    def test_constants_and_compound_fds(self):
        interesting = InterestingOrders.of(
            [ordering("a", "b"), ordering("x")], [ordering("x", "a", "c")]
        )
        fdsets = [
            FDSet.of(ConstantBinding(X)),
            FDSet.of(FunctionalDependency(frozenset({A, B}), C)),
        ]
        self.check_equivalence(interesting, fdsets)

    def test_mixed_equation_and_constant_in_one_operator(self):
        interesting = InterestingOrders.of(
            [ordering("a"), ordering("b", "x")],
        )
        fdsets = [FDSet.of(Equation(A, B), ConstantBinding(X))]
        self.check_equivalence(interesting, fdsets)
