"""Reproduction of the paper's running example (Sections 4–5, Figures 1–10).

Input (Section 5.2):

* FD sets ``F = {{b → c}, {b → d}}``,
* interesting orders ``O_P = {(b), (a,b)}``, ``O_T = {(a,b,c)}``.

Expected pipeline outputs, straight from the paper:

* ``b → d`` is pruned (d occurs in no interesting order) — Figure 5 note;
* the artificial node ``(b, c)`` disappears — Figure 6;
* the final NFSM has nodes (a), (a,b), (a,b,c), (b) and one
  ``{b → c}`` edge from (a,b) to (a,b,c) — Figure 7;
* the DFSM has three states besides the start state — Figure 8;
* the contains matrix and transition table match Figures 9 and 10.
"""

import pytest

from repro.core.attributes import attrs
from repro.core.fd import FDSet, FunctionalDependency
from repro.core.interesting import InterestingOrders
from repro.core.optimizer import NO_PRUNING, BuilderOptions, OrderOptimizer
from repro.core.ordering import ordering

A, B, C, D = attrs("a", "b", "c", "d")

F_BC = FDSet.of(FunctionalDependency(frozenset({B}), C))
F_BD = FDSet.of(FunctionalDependency(frozenset({B}), D))

INTERESTING = InterestingOrders.of(
    produced=[ordering("b"), ordering("a", "b")],
    tested=[ordering("a", "b", "c")],
)

# The paper's figures have no explicit empty-ordering scan state.
PAPER_OPTIONS = BuilderOptions(include_empty_ordering=False)


@pytest.fixture(scope="module")
def optimizer():
    return OrderOptimizer.prepare(INTERESTING, [F_BC, F_BD], PAPER_OPTIONS)


class TestFigure7FinalNFSM:
    def test_nodes(self, optimizer):
        nodes = {o for o in optimizer.nfsm.orderings if o is not None}
        assert nodes == {
            ordering("a"),
            ordering("b"),
            ordering("a", "b"),
            ordering("a", "b", "c"),
        }

    def test_fd_b_to_d_pruned(self, optimizer):
        assert optimizer.stats.pruned_fd_items == 1
        remaining = {
            item for fdset in optimizer.nfsm.fd_symbols for item in fdset.items
        }
        assert remaining == {FunctionalDependency(frozenset({B}), C)}

    def test_artificial_bc_node_absent(self, optimizer):
        assert ordering("b", "c") not in optimizer.nfsm.node_of

    def test_single_fd_edge_from_ab(self, optimizer):
        nfsm = optimizer.nfsm
        ab = nfsm.node_of[ordering("a", "b")]
        abc = nfsm.node_of[ordering("a", "b", "c")]
        symbol = nfsm.fd_symbols.index(F_BC)
        assert abc in nfsm.targets(ab, symbol)

    def test_epsilon_edges_follow_prefixes(self, optimizer):
        nfsm = optimizer.nfsm
        abc = nfsm.node_of[ordering("a", "b", "c")]
        eps_orders = {nfsm.orderings[t] for t in nfsm.eps[abc]}
        assert eps_orders == {ordering("a"), ordering("a", "b")}

    def test_start_edges_only_for_produced(self, optimizer):
        assert set(optimizer.nfsm.producer_orders) == {
            ordering("b"),
            ordering("a", "b"),
        }


class TestFigure8DFSM:
    def test_state_count(self, optimizer):
        # start state plus the three states of Figure 8
        assert optimizer.dfsm.state_count == 4

    def test_state_contents(self, optimizer):
        contents = {
            frozenset(optimizer.dfsm.state_orderings(s))
            for s in range(optimizer.dfsm.state_count)
        }
        assert frozenset() in contents  # start
        assert frozenset({ordering("b")}) in contents
        assert frozenset({ordering("a"), ordering("a", "b")}) in contents
        assert (
            frozenset({ordering("a"), ordering("a", "b"), ordering("a", "b", "c")})
            in contents
        )

    def test_fd_transition_structure(self, optimizer):
        opt = optimizer
        state_ab = opt.state_for_produced(opt.producer_handle(ordering("a", "b")))
        state_b = opt.state_for_produced(opt.producer_handle(ordering("b")))
        bc = opt.fdset_handle(F_BC)
        # (a,b) --{b->c}--> the (a,b,c) state; (b) and the target are sinks
        target = opt.infer(state_ab, bc)
        assert target != state_ab
        assert opt.infer(target, bc) == target
        assert opt.infer(state_b, bc) == state_b

    def test_bd_symbol_is_identity_everywhere(self, optimizer):
        opt = optimizer
        bd = opt.fdset_handle(F_BD)  # symbol survives, but is empty after pruning
        for state in range(opt.dfsm.state_count):
            assert opt.infer(state, bd) == state


class TestFigure9ContainsMatrix:
    def test_matrix(self, optimizer):
        opt = optimizer
        state_b = opt.state_for_produced(opt.producer_handle(ordering("b")))
        state_ab = opt.state_for_produced(opt.producer_handle(ordering("a", "b")))
        state_abc = opt.infer(state_ab, opt.fdset_handle(F_BC))

        def row(state):
            return {
                name: opt.contains(state, opt.ordering_handle(order))
                for name, order in {
                    "(a)": ordering("a"),
                    "(a,b)": ordering("a", "b"),
                    "(a,b,c)": ordering("a", "b", "c"),
                    "(b)": ordering("b"),
                }.items()
            }

        # Figure 9, rows 1..3
        assert row(state_b) == {"(a)": False, "(a,b)": False, "(a,b,c)": False, "(b)": True}
        assert row(state_ab) == {"(a)": True, "(a,b)": True, "(a,b,c)": False, "(b)": False}
        assert row(state_abc) == {"(a)": True, "(a,b)": True, "(a,b,c)": True, "(b)": False}

    def test_start_state_satisfies_nothing(self, optimizer):
        opt = optimizer
        for order in (ordering("a"), ordering("b"), ordering("a", "b")):
            assert not opt.contains(opt.start_state, opt.ordering_handle(order))


class TestFigure10TransitionMatrix:
    def test_constructor_column(self, optimizer):
        opt = optimizer
        state_b = opt.state_for_produced(opt.producer_handle(ordering("b")))
        state_ab = opt.state_for_produced(opt.producer_handle(ordering("a", "b")))
        assert state_b != state_ab
        assert state_b != opt.start_state
        # Producer symbols are identity outside the start state (Figure 10
        # shows rows 1..3 mapping every ordering symbol to themselves).
        h_b = opt.producer_handle(ordering("b"))
        for state in (state_b, state_ab):
            assert opt.tables.transition(state, h_b) == state

    def test_full_walk_of_section_5_6(self, optimizer):
        """Sort by (a,b) -> node 2; apply {b->c} -> node 3 (paper text)."""
        opt = optimizer
        state = opt.state_for_produced(opt.producer_handle(ordering("a", "b")))
        assert opt.satisfied_orders(state) == {ordering("a"), ordering("a", "b")}
        state = opt.infer(state, opt.fdset_handle(F_BC))
        assert opt.satisfied_orders(state) == {
            ordering("a"),
            ordering("a", "b"),
            ordering("a", "b", "c"),
        }


class TestWithoutPruning:
    """Figure 1/5: the unpruned NFSM keeps (b,c), (a,b,d,c), (a,b,c,d), ..."""

    @pytest.fixture(scope="class")
    def unpruned(self):
        options = NO_PRUNING
        options = options.__class__(**{**options.__dict__, "include_empty_ordering": False})
        return OrderOptimizer.prepare(INTERESTING, [F_BC, F_BD], options)

    def test_d_orderings_present(self, unpruned):
        nodes = {o for o in unpruned.nfsm.orderings if o is not None}
        assert ordering("a", "b", "d") in nodes
        assert ordering("a", "b", "d", "c") in nodes
        assert ordering("a", "b", "c", "d") in nodes
        assert ordering("b", "c") in nodes

    def test_strictly_larger_than_pruned(self, unpruned, optimizer):
        assert unpruned.nfsm.node_count > optimizer.nfsm.node_count
        assert unpruned.dfsm.state_count >= optimizer.dfsm.state_count

    def test_same_contains_answers_for_interesting_orders(self, unpruned, optimizer):
        """Pruning must not change any observable behaviour."""
        for produced in INTERESTING.produced:
            state_p = optimizer.state_for_produced(optimizer.producer_handle(produced))
            state_u = unpruned.state_for_produced(unpruned.producer_handle(produced))
            for fdset in (F_BC, F_BD):
                next_p = optimizer.infer(state_p, optimizer.fdset_handle(fdset))
                next_u = unpruned.infer(state_u, unpruned.fdset_handle(fdset))
                for order in INTERESTING.all_orders:
                    assert optimizer.contains(
                        next_p, optimizer.ordering_handle(order)
                    ) == unpruned.contains(next_u, unpruned.ordering_handle(order))
