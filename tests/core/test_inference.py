"""Unit tests for repro.core.inference — the Ω(O, F) oracle of Section 2."""

import pytest

from repro.core.attributes import attrs
from repro.core.equivalence import EquivalenceClasses
from repro.core.fd import ConstantBinding, Equation, FDSet, FunctionalDependency
from repro.core.inference import (
    Bounds,
    Derivation,
    derive_item,
    omega,
    omega_new,
    prefix_closure,
    satisfies,
)
from repro.core.ordering import EMPTY_ORDERING, ordering

A, B, C, D, X = attrs("a", "b", "c", "d", "x")


def results(o, item):
    return {d.result for d in derive_item(o, item)}


class TestDeriveFunctionalDependency:
    def test_insert_after_lhs(self):
        fd = FunctionalDependency(frozenset({A}), B)
        assert results(ordering("a", "c"), fd) == {
            ordering("a", "b", "c"),
            ordering("a", "c", "b"),
        }

    def test_lhs_missing_no_derivation(self):
        fd = FunctionalDependency(frozenset({A}), B)
        assert results(ordering("c"), fd) == set()

    def test_rhs_already_present_no_derivation(self):
        fd = FunctionalDependency(frozenset({A}), B)
        assert results(ordering("b", "a"), fd) == set()

    def test_compound_lhs_requires_all(self):
        fd = FunctionalDependency(frozenset({A, B}), C)
        assert results(ordering("a"), fd) == set()
        assert results(ordering("a", "b"), fd) == {ordering("a", "b", "c")}
        # insertion only after *both* lhs attributes
        assert results(ordering("b", "x", "a"), fd) == {ordering("b", "x", "a", "c")}

    def test_positions_are_recorded(self):
        fd = FunctionalDependency(frozenset({A}), B)
        derivations = list(derive_item(ordering("a", "c"), fd))
        assert Derivation(ordering("a", "b", "c"), 1) in derivations
        assert Derivation(ordering("a", "c", "b"), 2) in derivations


class TestDeriveConstant:
    def test_insert_anywhere(self):
        const = ConstantBinding(X)
        assert results(ordering("a", "b"), const) == {
            ordering("x", "a", "b"),
            ordering("a", "x", "b"),
            ordering("a", "b", "x"),
        }

    def test_insert_into_empty(self):
        assert results(EMPTY_ORDERING, ConstantBinding(X)) == {ordering("x")}

    def test_already_present(self):
        assert results(ordering("x"), ConstantBinding(X)) == set()


class TestDeriveEquation:
    def test_introduction_example(self):
        """Intro example: stream ordered on (a), predicate a = b."""
        derived = results(ordering("a"), Equation(A, B))
        assert derived == {ordering("a", "b"), ordering("b", "a"), ordering("b")}

    def test_substitution_both_directions(self):
        eq = Equation(A, B)
        assert ordering("b", "c") in results(ordering("a", "c"), eq)
        assert ordering("a", "c") in results(ordering("b", "c"), eq)

    def test_insertion_at_source_position(self):
        """Section 5.7: for a = b, inserting at the position of a is allowed."""
        derived = results(ordering("c", "a"), Equation(A, B))
        assert ordering("c", "b", "a") in derived
        assert ordering("c", "a", "b") in derived

    def test_no_substitution_when_both_present(self):
        # Substituting would duplicate an attribute, so one-step derivation
        # yields nothing from (a, b) under a = b ...
        assert results(ordering("a", "b"), Equation(A, B)) == set()
        # ... but the closure still reaches (b, a) via the prefix (a):
        closure = omega([ordering("a", "b")], [FDSet.of(Equation(A, B))])
        assert ordering("b", "a") in closure

    def test_not_applicable(self):
        assert results(ordering("c"), Equation(A, B)) == set()


class TestPrefixClosure:
    def test_basic(self):
        closed = prefix_closure([ordering("a", "b", "c")])
        assert closed == {
            ordering("a"),
            ordering("a", "b"),
            ordering("a", "b", "c"),
        }

    def test_union(self):
        closed = prefix_closure([ordering("a", "b"), ordering("x")])
        assert closed == {ordering("a"), ordering("a", "b"), ordering("x")}


class TestOmega:
    def test_no_fds_is_prefix_closure(self):
        assert omega([ordering("a", "b")]) == {ordering("a"), ordering("a", "b")}

    def test_paper_intro_example(self):
        """sort(a,b) then select x = const (Section 2 example)."""
        fdset = FDSet.of(ConstantBinding(X))
        closure = omega([ordering("a", "b")], [fdset])
        expected = {
            ordering("x", "a", "b"),
            ordering("a", "x", "b"),
            ordering("a", "b", "x"),
            ordering("x", "a"),
            ordering("a", "x"),
            ordering("x"),
            ordering("a"),
            ordering("a", "b"),
        }
        assert closure == expected

    def test_interleaved_fixpoint(self):
        """Closure must chain FDs: a -> b then b -> c."""
        fdset = FDSet.of(
            FunctionalDependency(frozenset({A}), B),
            FunctionalDependency(frozenset({B}), C),
        )
        closure = omega([ordering("a")], [fdset])
        assert ordering("a", "b", "c") in closure
        assert ordering("a", "c") not in closure  # c needs b before it

    def test_accepts_bare_items(self):
        closure = omega([ordering("a")], [FunctionalDependency(frozenset({A}), B)])
        assert ordering("a", "b") in closure

    def test_monotone_in_fds(self):
        fd1 = FDSet.of(FunctionalDependency(frozenset({A}), B))
        fd2 = FDSet.of(FunctionalDependency(frozenset({B}), C))
        assert omega([ordering("a")], [fd1]) <= omega([ordering("a")], [fd1, fd2])

    def test_equation_permutations(self):
        """Equations generate all orderings over an equivalence class."""
        closure = omega([ordering("a")], [FDSet.of(Equation(A, B))])
        assert closure == {
            ordering("a"),
            ordering("b"),
            ordering("a", "b"),
            ordering("b", "a"),
        }

    def test_terminates_on_dense_equations(self):
        fdset = FDSet.of(Equation(A, B), Equation(B, C), Equation(C, D))
        closure = omega([ordering("a")], [fdset])
        # all non-empty permutations-without-repetition over {a,b,c,d}
        assert len(closure) == 4 + 12 + 24 + 24


class TestOmegaNew:
    def test_new_orderings_only(self):
        fdset = FDSet.of(FunctionalDependency(frozenset({B}), D))
        new = omega_new(ordering("a", "b"), fdset)
        assert new == {ordering("a", "b", "d")}

    def test_empty_when_inapplicable(self):
        fdset = FDSet.of(FunctionalDependency(frozenset({X}), D))
        assert omega_new(ordering("a", "b"), fdset) == frozenset()


class TestBounds:
    def make_bounds(self, interesting, equations=(), **kwargs):
        classes = EquivalenceClasses(equations)
        return Bounds(interesting, classes, **kwargs)

    def test_interesting_orders_kept_verbatim(self):
        bounds = self.make_bounds([ordering("a", "b")])
        derivation = Derivation(ordering("a", "b"), 1)
        assert bounds.filter(derivation, ordering("a")) == ordering("a", "b")

    def test_divergent_candidate_rejected(self):
        bounds = self.make_bounds([ordering("a", "b")])
        # (b, c): first element diverges from every interesting order
        derivation = Derivation(ordering("b", "c"), 1)
        assert bounds.filter(derivation, ordering("b")) is None

    def test_insertion_of_irrelevant_attribute_rejected(self):
        bounds = self.make_bounds([ordering("a")])
        # (a, d) is not a subsequence of any interesting order
        derivation = Derivation(ordering("a", "d"), 1)
        assert bounds.filter(derivation, ordering("a")) is None

    def test_gap_candidates_kept(self):
        """The repaired bound keeps (a, d) when (a, b, d) is interesting:
        a later FD can insert b between a and d (the unsoundness of the
        paper's prefix test, found by the property suite)."""
        bounds = self.make_bounds([ordering("a", "b", "d")])
        derivation = Derivation(ordering("a", "d"), 1)
        assert bounds.filter(derivation, ordering("a")) == ordering("a", "d")

    def test_paper_heuristic_counterexample_end_to_end(self):
        """(a) + {∅→d} + {a→b} must satisfy (a, b, d) even with pruning."""
        from repro.core.fd import ConstantBinding
        from repro.core.interesting import InterestingOrders
        from repro.core.optimizer import OrderOptimizer

        interesting = InterestingOrders.of(
            produced=[ordering("a")], tested=[ordering("a", "b", "d")]
        )
        f_d = FDSet.of(ConstantBinding(D))
        f_ab = FDSet.of(FunctionalDependency(frozenset({A}), B))
        optimizer = OrderOptimizer.prepare(interesting, [f_d, f_ab])
        state = optimizer.state_for_produced(optimizer.producer_handle(ordering("a")))
        state = optimizer.infer(state, optimizer.fdset_handle(f_d))
        state = optimizer.infer(state, optimizer.fdset_handle(f_ab))
        assert optimizer.contains(
            state, optimizer.ordering_handle(ordering("a", "b", "d"))
        )

    def test_truncation_to_matched_prefix(self):
        bounds = self.make_bounds([ordering("x", "a")])
        # (x, a, b): the prefix (x, a) matches, the b tail is irrelevant
        derivation = Derivation(ordering("x", "a", "b"), 0)
        assert bounds.filter(derivation, ordering("a", "b")) == ordering("x", "a")

    def test_truncation_recovers_prefix_interesting_order(self):
        """From (b) + ∅→a, the candidate (a, b) truncates to the
        interesting order (a) instead of being dropped (hypothesis-found
        counterexample #2)."""
        bounds = self.make_bounds([ordering("a"), ordering("b")])
        derivation = Derivation(ordering("a", "b"), 0)
        assert bounds.filter(derivation, ordering("b")) == ordering("a")

    def test_equivalence_respected_in_prefix_test(self):
        bounds = self.make_bounds([ordering("a", "c")], equations=[Equation(A, B)])
        # (b, c) canonicalizes to (a, c) which is interesting
        derivation = Derivation(ordering("b", "c"), None)
        assert bounds.filter(derivation, ordering("a", "c")) == ordering("b", "c")

    def test_length_bound_only(self):
        bounds = self.make_bounds(
            [ordering("a", "b")], use_prefix_bound=False, use_length_bound=True
        )
        derivation = Derivation(ordering("c", "d", "a"), 0)
        assert bounds.filter(derivation, ordering("d", "a")) == ordering("c", "d")

    def test_prefix_of_source_discarded(self):
        bounds = self.make_bounds([ordering("a", "b")])
        derivation = Derivation(ordering("a"), None)
        assert bounds.filter(derivation, ordering("a", "b")) is None

    def test_bounded_omega_still_finds_interesting_orders(self):
        interesting = [ordering("a", "b", "c")]
        bounds = self.make_bounds(interesting)
        fdset = FDSet.of(FunctionalDependency(frozenset({B}), C))
        closure = omega([ordering("a", "b")], [fdset], bounds)
        assert ordering("a", "b", "c") in closure


def test_satisfies_helper():
    closure = omega([ordering("a", "b")])
    assert satisfies(closure, ordering("a"))
    assert not satisfies(closure, ordering("b"))


def test_derive_item_rejects_unknown_type():
    with pytest.raises(TypeError):
        list(derive_item(ordering("a"), "nonsense"))  # type: ignore[arg-type]
