"""Structural tests for NFSM construction, subset construction, and tables."""

import pytest

from repro.core.attributes import attrs
from repro.core.fd import ConstantBinding, Equation, FDSet, FunctionalDependency
from repro.core.inference import omega
from repro.core.interesting import InterestingOrders
from repro.core.nfsm import START, build_universe, dedupe_fdsets
from repro.core.optimizer import BuilderOptions, OrderOptimizer
from repro.core.ordering import EMPTY_ORDERING, ordering

A, B, C, X = attrs("a", "b", "c", "x")


def prepare(produced, tested, fdsets, **option_kwargs):
    interesting = InterestingOrders.of(produced, tested)
    return OrderOptimizer.prepare(
        interesting, fdsets, BuilderOptions(**option_kwargs)
    )


class TestUniverse:
    def test_universe_layout_interesting_first(self):
        interesting = InterestingOrders.of([ordering("a", "b")], [ordering("x")])
        universe = build_universe(interesting, (), None, include_empty=False)
        assert universe[:2] == (ordering("a", "b"), ordering("x"))
        assert ordering("a") in universe  # prefix closure

    def test_universe_includes_empty_when_requested(self):
        interesting = InterestingOrders.of([ordering("a")])
        universe = build_universe(interesting, (), None, include_empty=True)
        assert EMPTY_ORDERING in universe

    def test_universe_matches_omega(self):
        interesting = InterestingOrders.of([ordering("a")])
        fdsets = (FDSet.of(Equation(A, B)),)
        universe = build_universe(interesting, fdsets, None, include_empty=False)
        assert set(universe) == set(omega([ordering("a")], fdsets))

    def test_dedupe_fdsets(self):
        s = FDSet.of(Equation(A, B))
        assert dedupe_fdsets((s, FDSet.of(Equation(B, A)), FDSet())) == (s, FDSet())


class TestNFSMStructure:
    def test_start_node_is_zero(self):
        opt = prepare([ordering("a")], [], [])
        assert opt.nfsm.orderings[START] is None

    def test_fd_targets_include_self(self):
        opt = prepare([ordering("a")], [], [FDSet.of(Equation(A, B))])
        nfsm = opt.nfsm
        node = nfsm.node_of[ordering("a")]
        assert node in nfsm.targets(node, 0)

    def test_targets_default_to_self(self):
        opt = prepare([ordering("a")], [], [FDSet.of(Equation(B, C))])
        nfsm = opt.nfsm
        node = nfsm.node_of[ordering("a")]
        # b = c never applies to (a)
        assert nfsm.targets(node, 0) == frozenset((node,))

    def test_describe_mentions_nodes(self):
        opt = prepare([ordering("a")], [], [])
        text = opt.nfsm.describe()
        assert "(a)" in text
        assert "q0" in text

    def test_edge_count_positive(self):
        opt = prepare([ordering("a", "b")], [], [FDSet.of(Equation(A, B))])
        assert opt.nfsm.edge_count > 0


class TestDFSMProperties:
    def test_states_are_eps_closed(self):
        opt = prepare(
            [ordering("a", "b", "c")], [], [FDSet.of(ConstantBinding(X))]
        )
        for nodes in opt.dfsm.states:
            for node in nodes:
                if node == START:
                    continue
                assert opt.nfsm.eps_closure(node) <= nodes

    def test_transitions_are_monotone(self):
        """Applying an FD set never loses logical orderings."""
        opt = prepare(
            [ordering("a"), ordering("b")],
            [ordering("a", "b")],
            [FDSet.of(Equation(A, B))],
        )
        dfsm = opt.dfsm
        for state in range(dfsm.state_count):
            nodes = dfsm.states[state]
            if START in nodes:
                continue
            for symbol in range(len(opt.nfsm.fd_symbols)):
                target = dfsm.fd_transitions[state][symbol]
                assert nodes <= dfsm.states[target]

    def test_repeated_application_is_idempotent(self):
        opt = prepare([ordering("a")], [], [FDSet.of(Equation(A, B))])
        handle = opt.fdset_handle(FDSet.of(Equation(A, B)))
        state = opt.state_for_produced(opt.producer_handle(ordering("a")))
        once = opt.infer(state, handle)
        assert opt.infer(once, handle) == once

    def test_describe_runs(self):
        opt = prepare([ordering("a")], [], [])
        assert "DFSM" in opt.dfsm.describe()

    def test_dfsm_state_matches_oracle(self):
        """The state reached after applying f must represent Ω({o}, f)
        restricted to testable orders (the observable part)."""
        fdset = FDSet.of(Equation(A, B), ConstantBinding(X))
        opt = prepare(
            [ordering("a")],
            [ordering("x", "a"), ordering("b", "x")],
            [fdset],
        )
        state = opt.state_for_produced(opt.producer_handle(ordering("a")))
        state = opt.infer(state, opt.fdset_handle(fdset))
        oracle = omega([ordering("a")], [fdset])
        for order in opt.tables.testable_orders:
            assert opt.contains(state, opt.ordering_handle(order)) == (
                order in oracle
            ), order


class TestTables:
    def test_transition_matrix_shape(self):
        opt = prepare([ordering("a")], [], [FDSet.of(Equation(A, B))])
        tables = opt.tables
        assert len(tables.transitions) == tables.state_count
        for row in tables.transitions:
            assert len(row) == tables.symbol_count

    def test_byte_accounting(self):
        opt = prepare([ordering("a")], [], [FDSet.of(Equation(A, B))])
        tables = opt.tables
        assert tables.contains_bytes == tables.state_count * (
            (len(tables.testable_orders) + 7) // 8
        )
        assert tables.transition_bytes == (
            2 * tables.symbol_count * tables.state_count
        )
        assert tables.total_bytes == tables.contains_bytes + tables.transition_bytes

    def test_contains_table_matches_contains(self):
        opt = prepare([ordering("a", "b")], [], [])
        matrix = opt.tables.contains_table()
        for state in range(opt.tables.state_count):
            for handle in range(len(opt.tables.testable_orders)):
                assert bool(matrix[state][handle]) == opt.contains(state, handle)


class TestOptimizerAPI:
    def test_scan_state_satisfies_nothing_initially(self):
        opt = prepare([ordering("x")], [], [FDSet.of(ConstantBinding(X))])
        assert opt.satisfied_orders(opt.scan_state()) == frozenset()

    def test_scan_state_gains_constant_orderings(self):
        """A constant predicate makes an unsorted stream sorted on (x)."""
        fdset = FDSet.of(ConstantBinding(X))
        opt = prepare([ordering("x")], [], [fdset])
        state = opt.infer(opt.scan_state(), opt.fdset_handle(fdset))
        assert opt.contains(state, opt.ordering_handle(ordering("x")))

    def test_scan_state_without_empty_ordering_is_start(self):
        opt = prepare(
            [ordering("a")], [], [], include_empty_ordering=False
        )
        assert opt.scan_state() == opt.start_state

    def test_state_after_sort_replays_fdsets(self):
        fdset = FDSet.of(Equation(A, B))
        opt = prepare([ordering("a")], [ordering("b")], [fdset])
        handle = opt.producer_handle(ordering("a"))
        plain = opt.state_after_sort(handle)
        replayed = opt.state_after_sort(handle, [opt.fdset_handle(fdset)])
        assert not opt.contains(plain, opt.ordering_handle(ordering("b")))
        assert opt.contains(replayed, opt.ordering_handle(ordering("b")))

    def test_unknown_ordering_handle_raises(self):
        opt = prepare([ordering("a")], [], [])
        with pytest.raises(KeyError, match="testable"):
            opt.ordering_handle(ordering("zzz"))

    def test_unknown_fdset_raises(self):
        opt = prepare([ordering("a")], [], [])
        with pytest.raises(KeyError, match="registered"):
            opt.fdset_handle(FDSet.of(Equation(A, B)))

    def test_tested_only_order_not_producible(self):
        opt = prepare([ordering("a")], [ordering("b")], [])
        with pytest.raises(KeyError, match="produced"):
            opt.producer_handle(ordering("b"))

    def test_has_helpers(self):
        opt = prepare([ordering("a")], [], [FDSet()])
        assert opt.has_ordering(ordering("a"))
        assert not opt.has_ordering(ordering("b"))
        assert opt.has_fdset(FDSet())

    def test_empty_fdset_symbol_is_identity(self):
        opt = prepare([ordering("a")], [], [FDSet()])
        state = opt.state_for_produced(opt.producer_handle(ordering("a")))
        assert opt.infer(state, opt.fdset_handle(FDSet())) == state

    def test_stats_populated(self):
        opt = prepare([ordering("a")], [], [FDSet.of(Equation(A, B))])
        stats = opt.stats
        assert stats.nfsm_nodes >= 1
        assert stats.dfsm_states >= 2
        assert stats.preparation_ms >= 0.0
        assert stats.precomputed_bytes > 0
        assert stats.interesting_order_count == 1

    def test_partial_prune_configurations(self):
        fdsets = [FDSet.of(Equation(A, B))]
        interesting = InterestingOrders.of([ordering("a")], [ordering("b")])
        full = OrderOptimizer.prepare(interesting, fdsets, BuilderOptions())
        merge_only = OrderOptimizer.prepare(
            interesting, fdsets, BuilderOptions(delete_eps_nodes=False)
        )
        delete_only = OrderOptimizer.prepare(
            interesting, fdsets, BuilderOptions(merge_nodes=False)
        )
        for opt in (full, merge_only, delete_only):
            state = opt.state_for_produced(opt.producer_handle(ordering("a")))
            state = opt.infer(state, opt.fdset_handle(fdsets[0]))
            assert opt.contains(state, opt.ordering_handle(ordering("b")))
