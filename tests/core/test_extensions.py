"""Tests for the two extensions beyond the paper: DFSM minimization and
simulation dominance (both documented in DESIGN.md)."""

import pytest

from repro.core.attributes import attrs
from repro.core.dominance import simulation_dominance
from repro.core.fd import ConstantBinding, Equation, FDSet
from repro.core.interesting import InterestingOrders
from repro.core.optimizer import BuilderOptions, OrderOptimizer
from repro.core.ordering import ordering
from repro.core.tables import minimize_tables
from repro.plangen import FsmBackend, PlanGenConfig, PlanGenerator
from repro.workloads import GeneratorConfig, q8_order_info, random_join_query

A, B, C = attrs("a", "b", "c")


class TestMinimization:
    def test_unpruned_q8_tables_shrink(self):
        """Without NFSM pruning the subset construction leaves behaviourally
        equal states; minimization collapses them."""
        info = q8_order_info()
        unpruned = OrderOptimizer.prepare(
            info.interesting, info.fdsets, BuilderOptions().without_pruning()
        )
        minimized = minimize_tables(unpruned.tables)
        assert minimized.state_count < unpruned.tables.state_count

    def test_minimization_close_to_pruned_size(self):
        """Minimizing the unpruned machine approaches the pruned machine:
        NFSM reduction and DFSM minimization remove the same redundancy."""
        info = q8_order_info()
        pruned = OrderOptimizer.prepare(info.interesting, info.fdsets)
        unpruned = OrderOptimizer.prepare(
            info.interesting, info.fdsets, BuilderOptions().without_pruning()
        )
        minimized = minimize_tables(unpruned.tables)
        assert minimized.state_count <= pruned.tables.state_count + 2

    def test_behaviour_preserved(self):
        info = q8_order_info()
        plain = OrderOptimizer.prepare(info.interesting, info.fdsets)
        mini = OrderOptimizer.prepare(
            info.interesting, info.fdsets, BuilderOptions(minimize_dfsm=True)
        )
        for produced in info.interesting.produced:
            s_plain = plain.state_for_produced(plain.producer_handle(produced))
            s_mini = mini.state_for_produced(mini.producer_handle(produced))
            for fdset in info.fdsets:
                n_plain = plain.infer(s_plain, plain.fdset_handle(fdset))
                n_mini = mini.infer(s_mini, mini.fdset_handle(fdset))
                for order in info.interesting.all_orders:
                    assert plain.contains(
                        n_plain, plain.ordering_handle(order)
                    ) == mini.contains(n_mini, mini.ordering_handle(order))

    def test_already_minimal_is_identity(self):
        info = q8_order_info()
        prepared = OrderOptimizer.prepare(info.interesting, info.fdsets)
        assert minimize_tables(prepared.tables) is prepared.tables


class TestSimulationDominance:
    def prepared(self):
        interesting = InterestingOrders.of(
            [ordering("a"), ordering("b")], [ordering("c")]
        )
        fdsets = [FDSet.of(Equation(A, B)), FDSet.of(ConstantBinding(C))]
        return OrderOptimizer.prepare(interesting, fdsets), fdsets

    def test_reflexive_pairs_excluded(self):
        optimizer, _ = self.prepared()
        dominance = simulation_dominance(optimizer.tables)
        for state, dominated in enumerate(dominance):
            assert state not in dominated

    def test_merged_state_dominates_entry_states(self):
        """After a = b, the combined state dominates both entry states."""
        optimizer, fdsets = self.prepared()
        dominance = simulation_dominance(optimizer.tables)
        state_a = optimizer.state_for_produced(
            optimizer.producer_handle(ordering("a"))
        )
        merged = optimizer.infer(state_a, optimizer.fdset_handle(fdsets[0]))
        assert state_a in dominance[merged]

    def test_dominance_implies_contains_superset(self):
        optimizer, _ = self.prepared()
        tables = optimizer.tables
        dominance = simulation_dominance(tables)
        for s1, dominated in enumerate(dominance):
            for s2 in dominated:
                assert tables.contains_rows[s1] & tables.contains_rows[s2] == (
                    tables.contains_rows[s2]
                )

    def test_dominance_is_transitive(self):
        optimizer, _ = self.prepared()
        dominance = simulation_dominance(optimizer.tables)
        for s1, dominated in enumerate(dominance):
            for s2 in dominated:
                assert dominance[s2] <= dominated | {s1, s2}


class TestDominancePlanPruning:
    @pytest.mark.parametrize("seed", range(5))
    def test_optimality_preserved_with_fewer_plans(self, seed):
        spec = random_join_query(
            GeneratorConfig(n_relations=5, n_edges=6, seed=seed)
        )
        base = PlanGenerator(spec, FsmBackend()).run()
        dominant = PlanGenerator(
            spec,
            FsmBackend(use_dominance=True),
            config=PlanGenConfig(cross_key_dominance=True),
        ).run()
        assert abs(base.best_plan.cost - dominant.best_plan.cost) < 1e-6
        assert dominant.stats.plans_created <= base.stats.plans_created
        assert dominant.stats.plans_retained <= base.stats.plans_retained

    def test_dominance_actually_fires(self):
        spec = random_join_query(GeneratorConfig(n_relations=6, n_edges=7, seed=1))
        base = PlanGenerator(spec, FsmBackend()).run()
        dominant = PlanGenerator(
            spec,
            FsmBackend(use_dominance=True),
            config=PlanGenConfig(cross_key_dominance=True),
        ).run()
        assert dominant.stats.plans_created < base.stats.plans_created
