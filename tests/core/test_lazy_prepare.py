"""Unit tests: lazy determinization, growable tables, staged preparation.

The property suites (``tests/property/test_props_lazy_prepare.py``,
``tests/property/test_props_differential.py``) establish observational
equivalence statistically; this file pins the mechanics — what materializes
when, the state-cap fallback, stage timing, and the mode registry.
"""

from __future__ import annotations

import pytest

from repro.core.attributes import attrs
from repro.core.dfsm import LazyDFSM, StateCapExceeded, subset_construction
from repro.core.fd import Equation, FDSet
from repro.core.interesting import InterestingOrders
from repro.core.optimizer import (
    PREPARATION_MODES,
    BuilderOptions,
    OrderOptimizer,
    PreparationPlan,
    PreparationStage,
    PreparationStatistics,
    PreparationStats,
    preparation_fingerprint,
    resolve_preparation_mode,
)
from repro.core.ordering import Ordering
from repro.core.tables import LazyTables


def small_instance():
    """(a,b) produced plus an a=c equation: a 4-state pruned machine."""
    a, b, c = attrs("a", "b", "c")
    interesting = InterestingOrders.of(
        [Ordering([a, b])], [Ordering([c, b])]
    )
    fdsets = (FDSet(frozenset({Equation(a, c)})),)
    return interesting, fdsets


class TestLazyDFSM:
    def test_construction_materializes_only_the_start_state(self):
        opt = OrderOptimizer.prepare(*small_instance(), mode="lazy")
        assert isinstance(opt.dfsm, LazyDFSM)
        assert opt.dfsm.state_count == 1
        assert opt.tables.states_materialized == 1
        assert opt.stats.dfsm_states == 1

    def test_producer_transitions_memoize(self):
        interesting, fdsets = small_instance()
        opt = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        order = interesting.produced[0]
        first = opt.dfsm.producer_transition(order)
        count = opt.dfsm.state_count
        assert opt.dfsm.producer_transition(order) == first
        assert opt.dfsm.state_count == count  # no re-interning

    def test_transition_cells_fill_once(self):
        interesting, fdsets = small_instance()
        opt = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        state = opt.state_for_produced(opt.producer_handle(interesting.produced[0]))
        filled = opt.dfsm.transitions_filled
        target = opt.infer(state, opt.fdset_handle(fdsets[0]))
        assert opt.dfsm.transitions_filled > filled
        filled = opt.dfsm.transitions_filled
        assert opt.infer(state, opt.fdset_handle(fdsets[0])) == target
        assert opt.dfsm.transitions_filled == filled  # cached, not recomputed

    def test_materialize_all_reaches_the_eager_power_set(self):
        interesting, fdsets = small_instance()
        eager = OrderOptimizer.prepare(interesting, fdsets)
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        assert lazy.tables.materialize_all() == eager.tables.states_total
        # and the materialized state sets are exactly the eager ones
        assert set(lazy.dfsm.states) == set(eager.dfsm.states)

    def test_state_orderings_match_eager(self):
        interesting, fdsets = small_instance()
        eager = OrderOptimizer.prepare(interesting, fdsets)
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        order = interesting.produced[0]
        se = eager.state_for_produced(eager.producer_handle(order))
        sl = lazy.state_for_produced(lazy.producer_handle(order))
        assert eager.dfsm.state_orderings(se) == lazy.dfsm.state_orderings(sl)


class TestStateCap:
    def test_subset_construction_raises_past_the_cap(self):
        interesting, fdsets = small_instance()
        opt = OrderOptimizer.prepare(interesting, fdsets)
        full = opt.tables.states_total
        with pytest.raises(StateCapExceeded) as err:
            subset_construction(opt.nfsm, state_cap=full - 1)
        assert err.value.cap == full - 1
        # at the exact size the construction completes
        assert subset_construction(opt.nfsm, state_cap=full).state_count == full

    def test_prepare_falls_back_to_lazy(self):
        interesting, fdsets = small_instance()
        opt = OrderOptimizer.prepare(
            interesting, fdsets, BuilderOptions(eager_state_cap=2)
        )
        assert opt.stats.eager_fallback
        assert opt.stats.mode == "lazy"
        assert opt.mode == "lazy"
        assert isinstance(opt.tables, LazyTables)
        # the fingerprint keys the *requested* mode: cache lookups must not
        # depend on whether the build happened to fall back
        assert opt.fingerprint.mode == "eager"

    def test_no_fallback_within_the_cap(self):
        interesting, fdsets = small_instance()
        opt = OrderOptimizer.prepare(
            interesting, fdsets, BuilderOptions(eager_state_cap=1000)
        )
        assert not opt.stats.eager_fallback
        assert opt.mode == "eager"


class TestLazyTables:
    def test_lookup_parity_with_eager_tables(self):
        interesting, fdsets = small_instance()
        eager = OrderOptimizer.prepare(interesting, fdsets)
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        frozen = lazy.tables.freeze()
        # freeze preserves the lazy numbering, so the dense tables must
        # agree with the live lazy tables cell by cell
        for state in range(frozen.state_count):
            for symbol in range(frozen.symbol_count):
                assert frozen.transition(state, symbol) == lazy.tables.transition(
                    state, symbol
                )
            for handle in range(len(frozen.testable_orders)):
                assert frozen.contains(state, handle) == lazy.tables.contains(
                    state, handle
                )
        assert frozen.state_count == eager.tables.state_count

    def test_producer_symbols_self_transition_off_the_start(self):
        interesting, fdsets = small_instance()
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        handle = lazy.producer_handle(interesting.produced[0])
        state = lazy.state_for_produced(handle)
        assert state != lazy.start_state
        assert lazy.tables.transition(state, handle) == state

    def test_byte_accounting_grows_with_materialization(self):
        interesting, fdsets = small_instance()
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        before = lazy.tables.total_bytes
        lazy.state_for_produced(lazy.producer_handle(interesting.produced[0]))
        assert lazy.tables.total_bytes > before

    def test_states_total_is_unknown_until_forced(self):
        lazy = OrderOptimizer.prepare(*small_instance(), mode="lazy")
        assert lazy.tables.states_total is None
        lazy.tables.materialize_all()
        assert lazy.tables.states_total is None  # lazily honest forever
        assert lazy.tables.states_materialized >= 2

    def test_debug_dumps_force_materialization(self):
        interesting, fdsets = small_instance()
        eager = OrderOptimizer.prepare(interesting, fdsets)
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        assert len(lazy.tables.contains_table()) == eager.tables.state_count
        assert len(lazy.tables.transition_table()) == eager.tables.state_count

    def test_fresh_tables_over_a_driven_machine(self):
        """LazyTables syncs to whatever the machine already materialized."""
        lazy = OrderOptimizer.prepare(*small_instance(), mode="lazy")
        lazy.state_for_produced(lazy.producer_handle(lazy.interesting.produced[0]))
        rebuilt = LazyTables(lazy.dfsm)
        assert rebuilt.state_count == lazy.tables.state_count >= 2


class TestLazyExtensions:
    def test_minimize_under_lazy_freezes_dense_tables(self):
        interesting, fdsets = small_instance()
        opt = OrderOptimizer.prepare(
            interesting, fdsets, BuilderOptions(minimize_dfsm=True), mode="lazy"
        )
        # minimization is whole-machine, so the lazy mode hands back dense
        # (and known-total) tables
        assert opt.tables.states_total == opt.tables.state_count

    def test_dominance_forces_the_lazy_machine(self):
        interesting, fdsets = small_instance()
        eager = OrderOptimizer.prepare(interesting, fdsets)
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        relation = lazy.simulation_dominance_relation()
        assert lazy.tables.states_materialized == eager.tables.states_total
        assert len(relation) == eager.tables.states_total
        assert lazy.simulation_dominance_relation() is relation  # memoized


class TestPreparationPlan:
    def test_standard_stages_are_timed(self):
        opt = OrderOptimizer.prepare(*small_instance())
        assert list(opt.stats.stage_ms) == [
            "inputs",
            "nfsm",
            "prune",
            "determinize",
            "tables",
        ]
        assert all(ms >= 0.0 for ms in opt.stats.stage_ms.values())
        assert sum(opt.stats.stage_ms.values()) <= opt.stats.preparation_ms

    def test_custom_plan_with_an_extra_stage(self):
        seen = []
        standard = PreparationPlan.standard()
        plan = PreparationPlan(
            (*standard.stages, PreparationStage("audit", lambda ctx: seen.append(ctx.tables)))
        )
        opt = OrderOptimizer.prepare(*small_instance(), plan=plan)
        assert seen == [opt.tables]
        assert "audit" in opt.stats.stage_ms

    def test_statistics_alias(self):
        assert PreparationStatistics is PreparationStats


class TestModeRegistry:
    def test_registry_contents(self):
        assert set(PREPARATION_MODES) == {"eager", "lazy"}

    def test_resolve_by_name_and_instance(self):
        eager = resolve_preparation_mode("eager")
        assert resolve_preparation_mode(eager) is eager
        with pytest.raises(ValueError, match="unknown preparation mode"):
            resolve_preparation_mode("sloppy")

    def test_unknown_mode_rejected_by_prepare(self):
        with pytest.raises(ValueError, match="unknown preparation mode"):
            OrderOptimizer.prepare(*small_instance(), mode="sloppy")

    def test_fingerprint_discriminates_modes(self):
        interesting, fdsets = small_instance()
        eager_fp = preparation_fingerprint(interesting, fdsets)
        lazy_fp = preparation_fingerprint(interesting, fdsets, mode="lazy")
        assert eager_fp != lazy_fp
        assert eager_fp.digest() != lazy_fp.digest()


class TestEagerUnchanged:
    def test_eager_tables_report_full_materialization(self):
        opt = OrderOptimizer.prepare(*small_instance())
        tables = opt.tables
        assert tables.states_materialized == tables.state_count
        assert tables.states_total == tables.state_count
        assert opt.mode == "eager"

    def test_eager_and_lazy_build_the_same_nfsm(self):
        interesting, fdsets = small_instance()
        eager = OrderOptimizer.prepare(interesting, fdsets)
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        assert eager.nfsm.orderings == lazy.nfsm.orderings
        assert eager.nfsm.fd_symbols == lazy.nfsm.fd_symbols
        assert eager.nfsm.fd_targets == lazy.nfsm.fd_targets
