"""Unit tests: the binary codec for prepared tables and optimizers.

The artifact-level behavior (headers, self-invalidation, sessions) lives in
``tests/service/test_artifacts.py``; this file pins the codec mechanics —
what a round trip preserves, which malformed blobs are rejected, and the
eager/lazy/minimized encoding variants.
"""

from __future__ import annotations

from array import array

import pytest

from repro.core.attributes import attrs
from repro.core.dfsm import DFSM, LazyDFSM
from repro.core.fd import Equation, FDSet
from repro.core.interesting import InterestingOrders
from repro.core.optimizer import BuilderOptions, OrderOptimizer
from repro.core.ordering import Ordering
from repro.core.serialize import (
    SerializationError,
    decode_optimizer,
    decode_tables,
    encode_optimizer,
    encode_tables,
)
from repro.core.tables import LazyTables, PreparedTables


def small_instance():
    a, b, c = attrs("a", "b", "c")
    interesting = InterestingOrders.of([Ordering([a, b])], [Ordering([c, b])])
    fdsets = (FDSet(frozenset({Equation(a, c)})),)
    return interesting, fdsets


def assert_tables_identical(left: PreparedTables, right: PreparedTables) -> None:
    """Bit-identical lookup behavior: every row, every cell, every symbol."""
    assert left.start_state == right.start_state
    assert left.testable_orders == right.testable_orders
    assert left.fd_symbols == right.fd_symbols
    assert left.producer_orders == right.producer_orders
    assert tuple(left.contains_rows) == tuple(right.contains_rows)
    assert [list(row) for row in left.transitions] == [
        list(row) for row in right.transitions
    ]


class TestTableCodec:
    def test_round_trip_is_bit_identical(self):
        opt = OrderOptimizer.prepare(*small_instance())
        meta, blob = encode_tables(opt.tables)
        decoded = decode_tables(
            meta,
            blob,
            testable_orders=opt.tables.testable_orders,
            fd_symbols=opt.tables.fd_symbols,
            producer_orders=opt.tables.producer_orders,
        )
        assert_tables_identical(opt.tables, decoded)

    def test_decoded_rows_are_arrays_not_python_lists(self):
        # The warm path must land in the same array-backed representation
        # the cold path builds — per-state rows sliced off one flat blob.
        opt = OrderOptimizer.prepare(*small_instance())
        meta, blob = encode_tables(opt.tables)
        decoded = decode_tables(
            meta,
            blob,
            testable_orders=opt.tables.testable_orders,
            fd_symbols=opt.tables.fd_symbols,
            producer_orders=opt.tables.producer_orders,
        )
        assert all(isinstance(row, array) for row in decoded.transitions)

    def test_reencoding_a_decoded_table_is_stable(self):
        # decode -> encode must reproduce the identical blob ('q' rows take
        # the element-wise path only when widths differ; here they memcpy).
        opt = OrderOptimizer.prepare(*small_instance())
        meta, blob = encode_tables(opt.tables)
        decoded = decode_tables(
            meta,
            blob,
            testable_orders=opt.tables.testable_orders,
            fd_symbols=opt.tables.fd_symbols,
            producer_orders=opt.tables.producer_orders,
        )
        meta2, blob2 = encode_tables(decoded)
        assert meta2 == meta
        assert blob2 == blob

    def test_codec_version_mismatch_rejected(self):
        opt = OrderOptimizer.prepare(*small_instance())
        meta, blob = encode_tables(opt.tables)
        with pytest.raises(SerializationError, match="codec"):
            decode_tables(
                {**meta, "codec": 999},
                blob,
                testable_orders=opt.tables.testable_orders,
                fd_symbols=opt.tables.fd_symbols,
                producer_orders=opt.tables.producer_orders,
            )

    def test_truncated_blob_rejected(self):
        opt = OrderOptimizer.prepare(*small_instance())
        meta, blob = encode_tables(opt.tables)
        with pytest.raises(SerializationError, match="byte"):
            decode_tables(
                meta,
                blob[:-1],
                testable_orders=opt.tables.testable_orders,
                fd_symbols=opt.tables.fd_symbols,
                producer_orders=opt.tables.producer_orders,
            )

    def test_symbol_shape_mismatch_rejected(self):
        opt = OrderOptimizer.prepare(*small_instance())
        meta, blob = encode_tables(opt.tables)
        with pytest.raises(SerializationError, match="symbolic"):
            decode_tables(
                meta,
                blob,
                testable_orders=opt.tables.testable_orders,
                fd_symbols=(),
                producer_orders=opt.tables.producer_orders,
            )


def drive_everywhere(optimizer: OrderOptimizer, interesting, fdsets):
    """Exhaustively observe a component: every entry state, every testable
    order, every FD transition from every reachable state."""
    fd_handles = [optimizer.fdset_handle(f) for f in fdsets]
    testable = range(len(optimizer.tables.testable_orders))
    seen = {}
    frontier = [optimizer.scan_state()]
    for order in interesting.produced:
        frontier.append(
            optimizer.state_for_produced(optimizer.producer_handle(order))
        )
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        answers = tuple(optimizer.contains(state, h) for h in testable)
        successors = tuple(optimizer.infer(state, h) for h in fd_handles)
        seen[state] = (answers, successors)
        frontier.extend(successors)
    return seen


class TestOptimizerCodec:
    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    def test_round_trip_answers_identically(self, mode):
        interesting, fdsets = small_instance()
        original = OrderOptimizer.prepare(interesting, fdsets, mode=mode)
        # Drive the original BEFORE encoding (a lazy machine grows) and
        # freeze-encode afterwards: answers must agree regardless.
        before = drive_everywhere(original, interesting, fdsets)
        decoded = decode_optimizer(*encode_optimizer(original))
        assert drive_everywhere(decoded, interesting, fdsets) == before
        assert drive_everywhere(original, interesting, fdsets) == before

    def test_lazy_component_is_frozen_dense_on_encode(self):
        interesting, fdsets = small_instance()
        lazy = OrderOptimizer.prepare(interesting, fdsets, mode="lazy")
        decoded = decode_optimizer(*encode_optimizer(lazy))
        assert isinstance(decoded.tables, PreparedTables)
        assert not isinstance(decoded.tables, LazyTables)
        # The artifact holds the complete machine, not the visited subset.
        eager = OrderOptimizer.prepare(interesting, fdsets)
        assert decoded.tables.state_count == eager.tables.states_total

    def test_round_trip_preserves_metadata(self):
        interesting, fdsets = small_instance()
        original = OrderOptimizer.prepare(interesting, fdsets)
        decoded = decode_optimizer(*encode_optimizer(original))
        assert decoded.fingerprint == original.fingerprint
        assert decoded.options == original.options
        assert decoded.mode == original.mode
        assert decoded.stats.dfsm_states == original.stats.dfsm_states
        assert tuple(decoded.dfsm.states) == tuple(original.dfsm.states)
        assert decoded.dfsm.fd_transitions == original.dfsm.fd_transitions
        assert decoded.dfsm.producer_transitions == original.dfsm.producer_transitions

    def test_decoded_stats_are_independent(self):
        # The store stamps stage_ms["artifact_load"] on loaded components;
        # that must never leak into the encoded blob's source object.
        original = OrderOptimizer.prepare(*small_instance())
        decoded = decode_optimizer(*encode_optimizer(original))
        decoded.stats.stage_ms["artifact_load"] = 1.0
        assert "artifact_load" not in original.stats.stage_ms

    def test_minimized_tables_round_trip(self):
        interesting, fdsets = small_instance()
        options = BuilderOptions(minimize_dfsm=True)
        original = OrderOptimizer.prepare(interesting, fdsets, options)
        # Minimization can shrink the tables below the unminimized machine;
        # the codec must keep both views consistent either way.
        decoded = decode_optimizer(*encode_optimizer(original))
        assert drive_everywhere(
            decoded, interesting, fdsets
        ) == drive_everywhere(original, interesting, fdsets)
        assert tuple(decoded.dfsm.states) == tuple(original.dfsm.states)

    def test_garbage_pickle_section_rejected(self):
        original = OrderOptimizer.prepare(*small_instance())
        meta, _, table_blob = encode_optimizer(original)
        with pytest.raises(SerializationError, match="symbolic"):
            decode_optimizer(meta, b"not a pickle", table_blob)

    def test_wrong_shaped_pickle_section_rejected(self):
        import pickle

        original = OrderOptimizer.prepare(*small_instance())
        meta, _, table_blob = encode_optimizer(original)
        with pytest.raises(SerializationError, match="shape"):
            decode_optimizer(meta, pickle.dumps(["wrong"]), table_blob)
