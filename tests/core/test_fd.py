"""Unit tests for repro.core.fd."""

import pytest

from repro.core.attributes import attrs
from repro.core.fd import (
    ConstantBinding,
    Equation,
    FDSet,
    FunctionalDependency,
    flatten_items,
    normalize_fd,
)

A, B, C, D = attrs("a", "b", "c", "d")


class TestFunctionalDependency:
    def test_basic(self):
        fd = FunctionalDependency(frozenset({A, B}), C)
        assert fd.lhs == {A, B}
        assert fd.rhs == C

    def test_trivial_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependency(frozenset({A}), A)

    def test_attributes(self):
        fd = FunctionalDependency(frozenset({A}), B)
        assert fd.attributes == {A, B}

    def test_str(self):
        assert str(FunctionalDependency(frozenset({A}), B)) == "{a} -> b"

    def test_equality(self):
        assert FunctionalDependency(frozenset({A}), B) == FunctionalDependency(
            frozenset({A}), B
        )


class TestEquation:
    def test_canonical_order(self):
        assert Equation(B, A) == Equation(A, B)
        assert Equation(B, A).left == A

    def test_trivial_rejected(self):
        with pytest.raises(ValueError):
            Equation(A, A)

    def test_implied_fds(self):
        fd_ab, fd_ba = Equation(A, B).implied_fds()
        assert fd_ab == FunctionalDependency(frozenset({A}), B)
        assert fd_ba == FunctionalDependency(frozenset({B}), A)

    def test_other(self):
        eq = Equation(A, B)
        assert eq.other(A) == B
        assert eq.other(B) == A
        with pytest.raises(ValueError):
            eq.other(C)


class TestConstantBinding:
    def test_attributes(self):
        assert ConstantBinding(A).attributes == {A}

    def test_equality(self):
        assert ConstantBinding(A) == ConstantBinding(A)
        assert ConstantBinding(A) != ConstantBinding(B)


class TestNormalizeFD:
    def test_compound_rhs_split(self):
        items = normalize_fd([A], [B, C])
        assert set(items) == {
            FunctionalDependency(frozenset({A}), B),
            FunctionalDependency(frozenset({A}), C),
        }

    def test_empty_lhs_gives_constants(self):
        items = normalize_fd([], [A, B])
        assert set(items) == {ConstantBinding(A), ConstantBinding(B)}

    def test_rhs_attribute_in_lhs_skipped(self):
        items = normalize_fd([A, B], [B, C])
        assert set(items) == {FunctionalDependency(frozenset({A, B}), C)}


class TestFDSet:
    def test_of(self):
        fdset = FDSet.of(Equation(A, B), ConstantBinding(C))
        assert len(fdset) == 2
        assert Equation(A, B) in fdset

    def test_empty(self):
        assert not FDSet()
        assert len(FDSet()) == 0

    def test_typed_views(self):
        fdset = FDSet.of(
            Equation(A, B),
            ConstantBinding(C),
            FunctionalDependency(frozenset({A}), D),
        )
        assert fdset.equations == (Equation(A, B),)
        assert fdset.constants == (ConstantBinding(C),)
        assert fdset.plain_fds == (FunctionalDependency(frozenset({A}), D),)

    def test_attributes(self):
        fdset = FDSet.of(Equation(A, B), ConstantBinding(C))
        assert fdset.attributes == {A, B, C}

    def test_union_and_without(self):
        fdset = FDSet.of(Equation(A, B))
        merged = fdset.union(FDSet.of(ConstantBinding(C)))
        assert len(merged) == 2
        assert merged.without([Equation(A, B)]) == FDSet.of(ConstantBinding(C))

    def test_hashable_value_semantics(self):
        assert FDSet.of(Equation(A, B)) == FDSet.of(Equation(B, A))
        assert len({FDSet.of(Equation(A, B)), FDSet.of(Equation(B, A))}) == 1

    def test_iter_is_deterministic(self):
        fdset = FDSet.of(ConstantBinding(C), Equation(A, B))
        assert list(fdset) == sorted(fdset.items, key=str)

    def test_rejects_non_items(self):
        with pytest.raises(TypeError):
            FDSet(frozenset({"not an item"}))  # type: ignore[arg-type]


def test_flatten_items():
    s1 = FDSet.of(Equation(A, B))
    s2 = FDSet.of(Equation(A, B), ConstantBinding(C))
    assert flatten_items([s1, s2]) == frozenset({Equation(A, B), ConstantBinding(C)})
