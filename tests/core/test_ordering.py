"""Unit tests for repro.core.ordering."""

import pytest

from repro.core.attributes import attr, attrs
from repro.core.ordering import EMPTY_ORDERING, Ordering, ordering


class TestConstruction:
    def test_from_names(self):
        o = ordering("a", "b")
        assert len(o) == 2
        assert [x.name for x in o] == ["a", "b"]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ordering("a", "a")

    def test_non_attribute_rejected(self):
        with pytest.raises(TypeError):
            Ordering(["a"])  # type: ignore[list-item]

    def test_empty_is_falsy(self):
        assert not EMPTY_ORDERING
        assert ordering("a")

    def test_equality_and_hash(self):
        assert ordering("a", "b") == ordering("a", "b")
        assert ordering("a", "b") != ordering("b", "a")
        assert hash(ordering("a", "b")) == hash(ordering("a", "b"))

    def test_repr(self):
        assert repr(ordering("a", "b")) == "(a, b)"
        assert repr(EMPTY_ORDERING) == "()"


class TestAccess:
    def test_getitem_int(self):
        assert ordering("a", "b")[1] == attr("b")

    def test_getitem_slice_returns_ordering(self):
        sliced = ordering("a", "b", "c")[:2]
        assert isinstance(sliced, Ordering)
        assert sliced == ordering("a", "b")

    def test_contains(self):
        assert attr("a") in ordering("a", "b")
        assert attr("c") not in ordering("a", "b")

    def test_index(self):
        assert ordering("a", "b", "c").index(attr("c")) == 2

    def test_attribute_set(self):
        assert ordering("a", "b").attribute_set == frozenset(attrs("a", "b"))


class TestPrefixes:
    def test_proper_prefixes(self):
        o = ordering("a", "b", "c")
        assert list(o.prefixes()) == [ordering("a"), ordering("a", "b")]

    def test_prefixes_including_self(self):
        o = ordering("a", "b")
        assert list(o.prefixes(proper=False)) == [ordering("a"), ordering("a", "b")]

    def test_prefixes_including_empty(self):
        o = ordering("a")
        assert list(o.prefixes(include_empty=True)) == [EMPTY_ORDERING]

    def test_empty_has_no_proper_prefixes(self):
        assert list(EMPTY_ORDERING.prefixes()) == []

    def test_is_prefix_of(self):
        assert ordering("a").is_prefix_of(ordering("a", "b"))
        assert ordering("a", "b").is_prefix_of(ordering("a", "b"))
        assert not ordering("b").is_prefix_of(ordering("a", "b"))
        assert EMPTY_ORDERING.is_prefix_of(ordering("a"))

    def test_startswith(self):
        assert ordering("a", "b").startswith(ordering("a"))
        assert not ordering("a", "b").startswith(ordering("b"))


class TestDerivationHelpers:
    def test_insert_positions(self):
        o = ordering("a", "c")
        assert o.insert(1, attr("b")) == ordering("a", "b", "c")
        assert o.insert(0, attr("b")) == ordering("b", "a", "c")
        assert o.insert(2, attr("b")) == ordering("a", "c", "b")

    def test_insert_out_of_range(self):
        with pytest.raises(IndexError):
            ordering("a").insert(5, attr("b"))

    def test_replace(self):
        assert ordering("a", "b").replace(0, attr("x")) == ordering("x", "b")

    def test_replace_out_of_range(self):
        with pytest.raises(IndexError):
            ordering("a").replace(1, attr("x"))

    def test_truncate(self):
        o = ordering("a", "b", "c")
        assert o.truncate(2) == ordering("a", "b")
        assert o.truncate(0) == EMPTY_ORDERING
        assert o.truncate(9) is o

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            ordering("a").truncate(-1)

    def test_concat_skips_duplicates(self):
        assert ordering("a", "b").concat(ordering("b", "c")) == ordering("a", "b", "c")
